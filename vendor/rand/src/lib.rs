//! Minimal, offline-compatible subset of the `rand` crate API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the tiny slice of `rand` it actually uses: the [`RngCore`] object-safe
//! generator trait and the blanket [`Rng`] extension trait. Generators
//! themselves (xoshiro256++ in `flexpipe-sim`) live outside this crate; all
//! sampling algorithms live in the sibling `rand_distr` stub.
//!
//! The API surface intentionally mirrors `rand 0.8` so the workspace can be
//! pointed back at the real crate without source changes.

#![warn(missing_docs)]

/// The core trait every random number generator implements.
///
/// Mirrors `rand::RngCore` (0.8): 32-bit and 64-bit output plus byte-slice
/// filling. Implementors only need these three; everything else layers on
/// top via [`Rng`].
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience extension methods over [`RngCore`], blanket-implemented for
/// every generator (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)` using the standard 53-bit conversion.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)` via Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder namespace mirroring `rand::rngs`.
    //!
    //! The real crate's `SmallRng` is intentionally *not* provided: its
    //! algorithm is unstable across releases, which is exactly why the
    //! simulator pins its own xoshiro256++ implementation.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a finalizer: crude but uniform enough
            // for the trait-level tests below.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_unbiased_enough() {
        let mut r = Counter(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.gen_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut r = Counter(3);
        let dynr: &mut dyn RngCore = &mut r;
        let _ = dynr.next_u32();
        let mut buf = [0u8; 5];
        dynr.fill_bytes(&mut buf);
    }
}
