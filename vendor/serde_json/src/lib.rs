//! Minimal, offline-compatible `serde_json` replacement.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses
//! JSON text back, exposing the familiar entry points: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`] and [`from_value`].
//!
//! Output is deterministic: map entries emit in `Value::Map` order (which
//! the vendored serde keeps insertion-ordered, with hash maps pre-sorted by
//! key), floats print via Rust's shortest-round-trip formatting, and
//! non-finite floats emit `null` exactly as the real `serde_json` does.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Error from JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` into its [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats visually float-typed ("2.0", not "2") so a
        // parse → serialize cycle is stable.
        out.push_str(&format!("{x:.1}"));
    } else {
        // Shortest round-trip representation.
        out.push_str(&format!("{x}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(n * (depth + 1)));
                }
                write_value(out, x, indent, depth + 1);
            }
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(n * depth));
            }
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(n * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1);
            }
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(n * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's artifacts; reject rather than
                            // silently corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            s.push(c);
                        }
                        c => {
                            return Err(self.err(&format!("bad escape `\\{}`", c as char)));
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "\"hi\\nthere\"",
        ] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn containers_round_trip() {
        let json = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":[]}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_print_is_stable() {
        let v = parse_value(r#"{"a":1,"b":[true,false]}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}";
        assert_eq!(out, expected);
        // Pretty output parses back to the same tree.
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, 2.0, -3.25];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn integral_floats_stay_float_typed() {
        let json = to_string(&vec![2.0f64]).unwrap();
        assert_eq!(json, "[2.0]");
        let reparsed: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(to_string(&reparsed).unwrap(), json);
    }

    #[test]
    fn errors_carry_position() {
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
        assert!(parse_value("[1] garbage").is_err());
    }
}
