//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` facade.
//!
//! Implemented directly against `proc_macro` — the offline build
//! environment has neither `syn` nor `quote` — so the input is parsed with
//! a small hand-rolled token walker and the output is assembled as source
//! text. The supported shape is exactly what this workspace uses:
//!
//! - structs with named fields, tuple structs (newtype-transparent when
//!   single-field), unit structs;
//! - enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation);
//! - the `#[serde(skip)]` field attribute (omit on serialize, fill with
//!   `Default::default()` on deserialize);
//! - no generic parameters (none of the workspace's serialized types are
//!   generic; deriving on a generic type fails with a clear message).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a named-field struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// The field layout of a struct or an enum variant.
enum Fields {
    Named(Vec<Field>),
    /// Tuple fields; the payload is the field count.
    Tuple(usize),
    Unit,
}

/// A parsed derive input.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Returns whether an attribute token group (the `[...]` after `#`) is
/// `serde(skip)` (or a `serde(...)` list containing `skip`).
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut iter = group.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes from `iter`, reporting whether any was
/// `#[serde(skip)]`.
fn eat_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if attr_is_serde_skip(&g) {
                            skip = true;
                        }
                    }
                    other => panic!("expected [...] after # in attribute, got {other:?}"),
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Consumes tokens of a type (or expression) until a top-level `,`,
/// tracking `<...>` nesting so generic-argument commas don't terminate.
fn eat_until_comma(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle: i32 = 0;
    while let Some(t) = iter.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        iter.next();
    }
}

/// Parses `name: Type, ...` named-field lists (struct bodies and struct
/// variants).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut iter);
        eat_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        eat_until_comma(&mut iter);
        // Consume the separating comma, if present.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    while iter.peek().is_some() {
        eat_attrs(&mut iter);
        eat_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        eat_until_comma(&mut iter);
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        count += 1;
    }
    count
}

/// Parses the variant list of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional explicit discriminant, then the comma.
        eat_until_comma(&mut iter);
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push((name, fields));
    }
    variants
}

/// Parses a full derive input (struct or enum item).
fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    // Item-level attributes and visibility.
    eat_attrs(&mut iter);
    eat_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported by the vendored serde facade");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        kw => panic!("derive target must be a struct or enum, got `{kw}`"),
    };
    Input { name, kind }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(x0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut fm: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fs.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "fm.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {inner} ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(fm))]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_named_field_reads(ty: &str, fields: &[Field], map_var: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{0}: match ::serde::value_get({map_var}, \"{0}\") {{\n\
                 ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x).map_err(|e| e.in_field(\"{ty}.{0}\"))?,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(::serde::DeError::missing(\"{ty}\", \"{0}\")),\n\
                 }},\n",
                f.name
            ));
        }
    }
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let reads = gen_named_field_reads(name, fields, "m");
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{reads}}})"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v).map_err(|e| e.in_field(\"{name}\"))?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                .collect();
            format!(
                "let xs = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}\", v))?;\n\
                 if xs.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError(format!(\"expected {n} elements for {name}, found {{}}\", xs.len()))); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                reads.join(", ")
            )
        }
        Kind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => str_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner).map_err(|e| e.in_field(\"{name}::{vname}\"))?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let xs = inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{vname}\", inner))?;\n\
                             if xs.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError(format!(\"expected {n} elements for {name}::{vname}, found {{}}\", xs.len()))); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }},\n",
                            reads.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let reads =
                            gen_named_field_reads(&format!("{name}::{vname}"), fs, "fm");
                        map_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let fm = inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vname}\", inner))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{reads}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {str_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 match tag.as_str() {{\n\
                 {map_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"variant\", \"{name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derives `serde::Serialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
