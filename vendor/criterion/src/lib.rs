//! Minimal, offline-compatible subset of the `criterion` benchmarking
//! crate.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], [`black_box`],
//! [`BenchmarkId`], benchmark groups with `bench_function` /
//! `bench_with_input` — backed by a simple measure-and-print harness
//! instead of criterion's statistical machinery: each benchmark is warmed
//! up briefly, then timed over enough iterations to fill a short
//! measurement window, and the mean per-iteration time is printed.
//!
//! Good enough to (a) keep the bench targets compiling and running, and
//! (b) give directionally useful numbers offline. Swap the manifest back
//! to crates.io criterion for publication-grade statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    /// Measured mean per-iteration time, filled by `iter`.
    mean: Duration,
    iters: u64,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring for the
    /// configured window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that fills the
        // measurement window without timing each call individually.
        let calib_start = Instant::now();
        black_box(routine());
        let one = calib_start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (self.measurement_time.as_nanos() / one.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iters = per_batch;
        self.mean = total / u32::try_from(per_batch.max(1)).unwrap_or(u32::MAX);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, measurement_time: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        iters: 0,
        measurement_time,
    };
    f(&mut b);
    println!(
        "bench {label:<50} {:>12}/iter ({} iters)",
        fmt_duration(b.mean),
        b.iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the simple
    /// harness sizes itself from the measurement window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value under this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: these run in CI and under `cargo test`.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.measurement_time, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs final reporting (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags; a plain
            // `--test` invocation must not actually burn benchmark time.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                if args.iter().any(|a| a == "--list") {
                    println!("0 tests, 0 benchmarks");
                }
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("addition", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        bench_addition(&mut c);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        g.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
