//! Minimal, offline-compatible subset of the `rand_distr` crate.
//!
//! Provides exactly the samplers the FlexPipe workspace consumes — [`Exp`],
//! [`Gamma`], [`Normal`] and [`LogNormal`] — behind the same constructor
//! and [`Distribution`] interfaces as `rand_distr 0.4`, so the workspace
//! can be re-pointed at the real crate without source changes.
//!
//! Sampling algorithms are the standard exact ones (inverse CDF for the
//! exponential, Box-Muller for the normal, Marsaglia-Tsang with the
//! small-shape boost for the gamma), so distribution moments match the
//! textbook values — the simulator's statistical tests (target mean/CV
//! within a few percent over 10^5 draws) hold.

#![warn(missing_docs)]

use rand::Rng;

/// A distribution that can produce values of type `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Uniform `f64` in `(0, 1]` — never zero, safe under `ln`.
fn uniform_open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 1 - [0,1) maps to (0,1]; the largest representable draw stays < 1,
    // so the subtraction never rounds to 0.
    1.0 - rng.gen_f64()
}

/// The exponential distribution `Exp(λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<T> {
    lambda: T,
}

impl Exp<f64> {
    /// Builds an exponential with rate `lambda` (mean `1/λ`).
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError("Exp: lambda must be finite and positive"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -uniform_open01(rng).ln() / self.lambda
    }
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Builds a normal with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError(
                "Normal: mean/std_dev must be finite, std_dev >= 0",
            ));
        }
        Ok(Normal { mean, std_dev })
    }
}

/// One standard-normal draw via Box-Muller.
///
/// The pair's second output is discarded: one extra uniform per draw is a
/// trivial cost here and keeps every sampler stateless (as `rand_distr`'s
/// `StandardNormal` effectively is from the caller's perspective).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = uniform_open01(rng);
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    norm: Normal<T>,
}

impl LogNormal<f64> {
    /// Builds a log-normal whose logarithm is `N(mu, sigma²)`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError("LogNormal: mu/sigma must be finite, sigma >= 0"));
        }
        Ok(LogNormal {
            norm: Normal {
                mean: mu,
                std_dev: sigma,
            },
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// The gamma distribution `Gamma(shape k, scale θ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma<T> {
    shape: T,
    scale: T,
}

impl Gamma<f64> {
    /// Builds a gamma with the given shape and scale (mean `k·θ`).
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(ParamError("Gamma: shape must be finite and positive"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ParamError("Gamma: scale must be finite and positive"));
        }
        Ok(Gamma { shape, scale })
    }

    /// Marsaglia-Tsang (2000) for `shape >= 1`.
    fn sample_shape_ge1<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u = uniform_open01(rng);
            let x2 = x * x;
            // Cheap squeeze first, exact log test second.
            if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng)
        } else {
            // Boost trick: Gamma(k) = Gamma(k+1) · U^(1/k) for k < 1.
            let g = Self::sample_shape_ge1(self.shape + 1.0, rng);
            g * uniform_open01(rng).powf(1.0 / self.shape)
        };
        unit * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64: full-period, passes the statistical needs here.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(4.0).unwrap();
        let mut rng = TestRng(1);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
        assert!((var - 0.0625).abs() < 0.005, "var {var}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = TestRng(2);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn gamma_large_shape_moments() {
        // Gamma(4, 0.5): mean 2, var 1.
        let d = Gamma::new(4.0, 0.5).unwrap();
        let mut rng = TestRng(3);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gamma_small_shape_moments() {
        // Gamma(1/16, 0.8): the CV=4 regime used by the workload sweeps.
        let shape = 1.0 / 16.0;
        let scale = 0.8;
        let d = Gamma::new(shape, scale).unwrap();
        let mut rng = TestRng(4);
        let xs: Vec<f64> = (0..400_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        let want_mean = shape * scale;
        let want_var = shape * scale * scale;
        assert!((mean - want_mean).abs() / want_mean < 0.03, "mean {mean}");
        assert!((var - want_var).abs() / want_var < 0.05, "var {var}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::new(1500.0f64.ln(), 0.8).unwrap();
        let mut rng = TestRng(5);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 1500.0).abs() / 1500.0 < 0.03, "median {med}");
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
