//! Minimal, offline-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute;
//! - numeric range strategies (`0u32..82`, `1u32..=16`, `1.0f64..400.0`),
//!   tuples of strategies, [`prop::collection::vec`] and
//!   [`prop::collection::btree_set`], and [`any`] for `bool` and the
//!   primitive integers;
//! - [`prop_assert!`] / [`prop_assert_eq!`] with formatted messages.
//!
//! Failing cases shrink minimally before reporting: the runner greedily
//! walks [`Strategy::shrink`] candidates (integers toward the range
//! start, vectors toward fewer/smaller elements) one binding at a time
//! and panics with the simplest input that still fails. Strategies
//! without a `shrink` override report the originally sampled input. Case
//! generation is deterministic per test (seeded from the test's name), so
//! failures reproduce exactly across runs — which this repo values more
//! than cross-run case diversity.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test-identifying string.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name; stable across platforms.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift; the tiny modulo bias is irrelevant for test-case
        // generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of random test inputs of type `Value`.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates for a failing `value`, most aggressive first.
    ///
    /// The `proptest!` runner greedily adopts the first candidate that
    /// still fails and repeats until no candidate does, so candidates
    /// should be ordered biggest-jump-first (e.g. range start, then the
    /// midpoint, then one step down) for binary-search-like descent. The
    /// default is no candidates, i.e. no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Shrink candidates for an integer at distance `v - lo` from its range
/// start: the start itself, the midpoint, one step down — deduplicated,
/// most aggressive first (see [`Strategy::shrink`] on ordering).
fn int_shrink_toward(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2;
        if mid != lo {
            out.push(mid);
        }
        if v - 1 != lo && v - 1 != lo + (v - lo) / 2 {
            out.push(v - 1);
        }
    }
    out
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Strategy producing a constant value (mirrors `proptest`'s `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value as i128;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0i128, v / 2, if v > 0 { v - 1 } else { v + 1 }];
                out.dedup();
                out.retain(|&x| x != v);
                out.into_iter().map(|x| x as $t).collect()
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// A failed test case (mirrors `proptest::test_runner::TestCaseError`).
///
/// Returned from test bodies via `?`; the `proptest!` runner renders it
/// with the sampled inputs attached.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }

    /// Alias of [`TestCaseError::fail`] matching real proptest's
    /// `reject`/`fail` pair closely enough for simple callers.
    pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<TestCaseError> for String {
    fn from(e: TestCaseError) -> String {
        e.0
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> TestCaseError {
        TestCaseError(s)
    }
}

/// Run-count configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! Strategy combinators namespace (mirrors `proptest::strategy`).

    pub use crate::{Just, Strategy};
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::*;

    /// Size specification for collection strategies: anything convertible
    /// to a `(min, max_exclusive)` length range.
    pub trait SizeRange {
        /// The inclusive minimum and exclusive maximum length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural candidates first: truncate to the minimum
            // length, then drop one element at each position.
            if value.len() > self.min {
                out.push(value[..self.min].to_vec());
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    if shorter.len() >= self.min {
                        out.push(shorter);
                    }
                }
            }
            // Then element-wise: each position replaced by its own
            // shrink candidates, one at a time.
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut simpler = value.clone();
                    simpler[i] = cand;
                    out.push(simpler);
                }
            }
            out
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `BTreeSet` strategy with target sizes drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range");
        BTreeSetStrategy { element, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.min + rng.below((self.max - self.min) as u64) as usize;
            let mut set = BTreeSet::new();
            // Bounded attempts: if the element domain is smaller than the
            // target size the set simply comes out smaller, as in real
            // proptest.
            for _ in 0..(target.max(1) * 50) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

pub mod prop {
    //! The `prop::` namespace used inside test bodies.

    pub use crate::collection;
}

/// The prelude every property test imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the current case
/// with the sampled inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let mut $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                // Run the body on owned clones so it may consume its
                // bindings; the originals stay available for shrinking.
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    $(let $arg = ::std::clone::Clone::clone(&$arg);)*
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(mut msg) = outcome {
                    // Greedy shrink: adopt the first simpler input that
                    // still fails, one binding at a time, until no
                    // candidate fails (or the probe budget runs out).
                    let mut budget = 1024usize;
                    let mut improved = true;
                    while improved && budget > 0 {
                        improved = false;
                        $crate::proptest!(
                            @shrink (msg, improved, budget, $body), ($($arg),*);
                            $(($arg, $strat))*
                        );
                    }
                    let inputs = format!(
                        concat!("case {} of {}: ", $(stringify!($arg), " = {:?}, ",)* ""),
                        case + 1,
                        config.cases,
                        $(&$arg),*
                    );
                    panic!("proptest case failed (after shrinking) [{inputs}]: {msg}");
                }
            }
        }
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);) => {};
    // One shrink pass for one binding: try its candidates against the
    // current values of *all* bindings (the tt-muncher carries the full
    // list, which a nested `$arg` repetition cannot express).
    (@shrink ($msg:ident, $improved:ident, $budget:ident, $body:block), ($($all:ident),*); ($arg:ident, $strat:expr) $($rest:tt)*) => {
        if !$improved {
            for cand in $crate::Strategy::shrink(&($strat), &$arg) {
                if $budget == 0 {
                    break;
                }
                $budget -= 1;
                let prev = ::std::mem::replace(&mut $arg, cand);
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    $(let $all = ::std::clone::Clone::clone(&$all);)*
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::std::result::Result::Err(m) => {
                        $msg = m;
                        $improved = true;
                        break;
                    }
                    ::std::result::Result::Ok(()) => {
                        $arg = prev;
                    }
                }
            }
        }
        $crate::proptest!(@shrink ($msg, $improved, $budget, $body), ($($all),*); $($rest)*);
    };
    (@shrink ($msg:ident, $improved:ident, $budget:ident, $body:block), ($($all:ident),*);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..10_000 {
            let x = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::sample(&(1u32..=4), &mut rng);
            assert!((1..=4).contains(&y));
            let f = Strategy::sample(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::from_name("collections");
        for _ in 0..1_000 {
            let v = Strategy::sample(&prop::collection::vec(0u32..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let s = Strategy::sample(&prop::collection::btree_set(0u32..100, 1..5), &mut rng);
            assert!(!s.is_empty() && s.len() < 5);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuples, collections, assertions.
        #[test]
        fn macro_smoke(x in 1u32..10, pair in (0u64..5, 0.0f64..1.0), b in any::<bool>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5, "pair.0 was {}", pair.0);
            prop_assert_eq!(b, b);
            prop_assert_ne!(x, 0);
        }
    }

    // Deliberately failing properties, run via catch_unwind (note: no
    // `#[test]` attribute on the generated fns) to observe the shrunk
    // inputs in the panic message.
    proptest! {
        fn int_shrink_probe(x in 0u32..1000) {
            prop_assert!(x < 10);
        }

        fn vec_shrink_probe(v in prop::collection::vec(0u32..100, 0..8)) {
            prop_assert!(v.len() < 3);
        }
    }

    fn failure_message(f: fn()) -> String {
        let err = std::panic::catch_unwind(f).expect_err("probe property must fail");
        err.downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the formatted failure")
    }

    /// `x < 10` over `0..1000` must shrink to exactly the boundary: 10.
    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        let msg = failure_message(int_shrink_probe);
        assert!(msg.contains("x = 10,"), "{msg}");
    }

    /// `len < 3` must shrink to the shortest failing vector of the
    /// simplest elements: `[0, 0, 0]`.
    #[test]
    fn vec_failures_shrink_structurally_and_elementwise() {
        let msg = failure_message(vec_shrink_probe);
        assert!(msg.contains("v = [0, 0, 0],"), "{msg}");
    }

    #[test]
    fn int_shrink_candidates_descend_toward_the_start() {
        use crate::Strategy;
        assert_eq!((0u32..1000).shrink(&7), vec![0, 3, 6]);
        assert_eq!((5u32..=20).shrink(&5), Vec::<u32>::new());
        assert_eq!((5u32..=20).shrink(&6), vec![5]);
        assert_eq!((-8i32..9).shrink(&4), vec![-8, -2, 3]);
    }
}
