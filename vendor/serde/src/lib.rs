//! Minimal, offline-compatible `serde` facade.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a compact serialization framework under the `serde` name. It keeps the
//! parts of the real API the workspace relies on — the `Serialize` /
//! `Deserialize` trait names, `#[derive(Serialize, Deserialize)]`, and the
//! `#[serde(skip)]` field attribute — while replacing serde's
//! visitor-driven data model with a simple owned [`Value`] tree.
//!
//! Design points that matter to the experiments built on top:
//!
//! - **Deterministic output.** [`Value::Map`] preserves insertion order and
//!   the impls for `HashMap`/`BTreeMap` sort by key, so a serialized
//!   artifact is byte-stable across runs and platforms — the property the
//!   fleet's reproducibility gate depends on.
//! - **Lossless integers.** `u64`/`i64` stay integral end-to-end instead of
//!   routing through `f64`.
//! - **Swap-back compatibility.** Types annotate themselves exactly as they
//!   would for real serde, so restoring the crates.io dependency is a
//!   manifest change, not a source change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned, ordered tree of serialized data (the data model every
/// [`Serialize`]/[`Deserialize`] impl converts through).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative integral numbers).
    Int(i64),
    /// An unsigned integer (non-negative integral numbers).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A one-word description of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] impl expects.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X for T, found Y" construction helper.
    pub fn expected(what: &str, ty: &str, found: &Value) -> DeError {
        DeError(format!("expected {what} for {ty}, found {}", found.kind()))
    }

    /// Missing-field error.
    pub fn missing(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` of {ty}"))
    }

    /// Wraps the error with the location it occurred at.
    pub fn in_field(self, loc: &str) -> DeError {
        DeError(format!("{loc}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Map-entry lookup used by generated code.
pub fn value_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x: u64 = match v {
                    Value::UInt(x) => *x,
                    Value::Int(x) if *x >= 0 => *x as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(x).map_err(|_| {
                    DeError(format!("{x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::UInt(x as u64)
                } else {
                    Value::Int(x)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x: i64 = match v {
                    Value::Int(x) => *x,
                    Value::UInt(x) if *x <= i64::MAX as u64 => *x as i64,
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= i64::MIN as f64
                            && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(x).map_err(|_| {
                    DeError(format!("{x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = f64::from(*self);
                if x.is_finite() {
                    Value::Float(x)
                } else {
                    // JSON has no NaN/Inf; mirror serde_json's `null`.
                    Value::Null
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(x) => Ok(*x as $t),
                    Value::UInt(x) => Ok(*x as $t),
                    // Round-trip of non-finite floats (serialized as null).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let xs = v
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "array", v))?;
        if xs.len() != N {
            return Err(DeError(format!(
                "expected {N} elements, found {}",
                xs.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, x) in out.iter_mut().zip(xs) {
            *slot = T::from_value(x)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let xs = v
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple", v))?;
                let want = [$($i,)+].len();
                if xs.len() != want {
                    return Err(DeError(format!(
                        "expected {want}-tuple, found {} elements",
                        xs.len()
                    )));
                }
                Ok(($($t::from_value(&xs[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Key conversion for string-keyed map serialization.
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;

    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_num {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| {
                    DeError(format!("bad {} map key: {s:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_map_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_map {
    ($name:ident, $($bound:tt)+) => {
        impl<K: MapKey + Ord + Clone, V: Serialize> Serialize for std::collections::$name<K, V> {
            fn to_value(&self) -> Value {
                // Sorted by key: hash iteration order must never leak into
                // serialized artifacts (byte-stable output is a contract).
                let mut entries: Vec<(&K, &V)> = self.iter().collect();
                entries.sort_by(|a, b| a.0.cmp(b.0));
                Value::Map(
                    entries
                        .into_iter()
                        .map(|(k, v)| (k.to_key(), v.to_value()))
                        .collect(),
                )
            }
        }

        impl<K: MapKey + $($bound)+, V: Deserialize> Deserialize
            for std::collections::$name<K, V>
        {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let m = v
                    .as_map()
                    .ok_or_else(|| DeError::expected("map", stringify!($name), v))?;
                m.iter()
                    .map(|(k, x)| Ok((K::from_key(k)?, V::from_value(x)?)))
                    .collect()
            }
        }
    };
}

impl_map!(HashMap, Ord + std::hash::Hash + Eq);
impl_map!(BTreeMap, Ord);

macro_rules! impl_set {
    ($name:ident, $($bound:tt)+) => {
        impl<T: Serialize + Ord + Clone> Serialize for std::collections::$name<T> {
            fn to_value(&self) -> Value {
                let mut xs: Vec<&T> = self.iter().collect();
                xs.sort();
                Value::Seq(xs.into_iter().map(Serialize::to_value).collect())
            }
        }

        impl<T: Deserialize + $($bound)+> Deserialize for std::collections::$name<T> {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
                    other => Err(DeError::expected("sequence", stringify!($name), other)),
                }
            }
        }
    };
}

impl_set!(HashSet, std::hash::Hash + Eq);
impl_set!(BTreeSet, Ord);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let got: Vec<(u64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(got, v);

        let arr = [1.0f64, 2.0, 3.0, 4.0];
        let got: [f64; 4] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(got, arr);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let got: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = std::collections::HashMap::new();
        m.insert(30u32, 3.0f64);
        m.insert(10, 1.0);
        m.insert(20, 2.0);
        let v = m.to_value();
        let keys: Vec<&str> = v
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["10", "20", "30"]);
        let back: std::collections::HashMap<u32, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn range_errors_are_caught() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
