//! The high-rate admission fast path's two contracts, tested head-on:
//!
//! 1. **Equivalence** — the indexed path picks exactly the instances the
//!    retained naive reference scan picks, under randomized churn
//!    (admissions, completions, instances entering and leaving the
//!    admissible set — the structure-level shadow of arrivals and
//!    disruptions). Property-based; the engine-level twin lives in
//!    `crates/fleet/tests/admission_equivalence.rs`.
//! 2. **Speed** — at fleet scale the index is measurably faster than the
//!    O(instances) rescan. The margin asserted here is deliberately
//!    generous (naive must cost at least 2× the indexed path at 1500
//!    instances; the typical ratio is an order of magnitude or more) so a
//!    loaded CI machine cannot flake the test, while a regression that
//!    quietly reverts admission to a linear scan still fails it.

use std::time::Instant;

use flexpipe_serving::{churn, AdmissionMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Indexed and naive admission agree decision-for-decision across
    /// random fleet sizes and op-sequence lengths (the churn driver flips
    /// slots in and out of admissibility and frees capacity as it goes).
    #[test]
    fn indexed_matches_naive_under_random_churn(
        n in 1usize..160,
        ops in 1usize..4000,
    ) {
        prop_assert_eq!(
            churn(n, ops, AdmissionMode::Indexed),
            churn(n, ops, AdmissionMode::NaiveScan),
            "assignment divergence at n={}, ops={}", n, ops
        );
    }
}

#[test]
fn indexed_admission_outpaces_naive_scan_at_fleet_scale() {
    // 1500 instances × 120k admission decisions: the regime the ROADMAP's
    // "millions of users" north star implies. Warm both paths once so
    // allocator effects don't pollute the measured passes.
    const N: usize = 1500;
    const OPS: usize = 120_000;
    let warm_indexed = churn(N, OPS / 10, AdmissionMode::Indexed);
    let warm_naive = churn(N, OPS / 10, AdmissionMode::NaiveScan);
    assert_eq!(warm_indexed, warm_naive, "warmup divergence");

    let t = Instant::now();
    let a = churn(N, OPS, AdmissionMode::Indexed);
    let indexed_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let b = churn(N, OPS, AdmissionMode::NaiveScan);
    let naive_secs = t.elapsed().as_secs_f64();

    assert_eq!(a, b, "the two paths must make identical decisions");
    eprintln!(
        "admission path at {N} instances x {OPS} ops: indexed {indexed_secs:.3}s, \
         naive {naive_secs:.3}s ({:.1}x)",
        naive_secs / indexed_secs
    );
    assert!(
        naive_secs > 2.0 * indexed_secs,
        "indexed admission should be measurably faster than the naive scan: \
         indexed {indexed_secs:.3}s vs naive {naive_secs:.3}s"
    );
}
