//! Engine-level integration tests: a minimal static policy exercising the
//! full spawn → serve → refactor → retire lifecycle on the simulated
//! cluster.

use std::sync::Arc;

use flexpipe_cluster::{BackgroundProfile, ClusterSpec, TierConfig};
use flexpipe_model::{zoo, CostModel};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};
use flexpipe_serving::{
    ControlPolicy, Ctx, Engine, EngineConfig, Placement, RefactorPlan, Scenario, StageAssign,
};
use flexpipe_sim::{SimDuration, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};

/// Deploys `replicas` instances at a fixed granularity and never adapts.
struct StaticPolicy {
    stages: u32,
    replicas: u32,
}

impl ControlPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static-test"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let all: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .collect();
        ctx.set_always_on(all);
        for _ in 0..self.replicas {
            ctx.spawn(self.stages, Placement::FirstFit)
                .expect("spawn must succeed on an empty cluster");
        }
    }
}

/// Refactors the single instance once at a fixed time.
struct RefactorOnce {
    to_stages: u32,
    at: SimTime,
    fired: bool,
}

impl ControlPolicy for RefactorOnce {
    fn name(&self) -> &'static str {
        "refactor-once"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let all: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .collect();
        ctx.set_always_on(all);
        ctx.spawn(2, Placement::FirstFit).expect("initial spawn");
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.fired || ctx.now() < self.at {
            return;
        }
        let insts = ctx.instances();
        let Some(inst) = insts.iter().find(|i| {
            i.state == flexpipe_serving::InstanceState::Serving && i.stages != self.to_stages
        }) else {
            return;
        };
        // Build a plan: keep old devices for the first `old` stages, take
        // fresh first-fit GPUs for the rest.
        let lattice = ctx.state.lattice();
        let new_ranges = lattice
            .level(self.to_stages)
            .expect("level exists")
            .ranges
            .clone();
        let mut assignments = Vec::new();
        let in_use = ctx.state.gpus_in_use().clone();
        let mut fresh_pool: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .filter(|g| !in_use.contains(g))
            .collect();
        for i in 0..new_ranges.len() {
            if i < inst.stages as usize {
                assignments.push(StageAssign::Reuse {
                    old_index: i as u32,
                });
            } else {
                assignments.push(StageAssign::Fresh {
                    gpu: fresh_pool.remove(0),
                });
            }
        }
        let plan = RefactorPlan {
            new_ranges,
            assignments,
            prepare: SimDuration::from_secs(3),
            pause: SimDuration::from_millis(9),
        };
        ctx.refactor(inst.id, plan).expect("refactor accepted");
        self.fired = true;
    }
}

fn scenario(cv: f64, rate: f64, horizon_secs: f64, seed: u64) -> Scenario {
    let spec = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate, cv },
        lengths: LengthProfile::fixed(256, 16),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::ZERO,
        horizon_secs,
    };
    let workload = spec.generate(&mut flexpipe_sim::SimRng::seed(seed));
    Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::none(),
        tier: TierConfig::default(),
        cost: CostModel::default(),
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs_f64(horizon_secs + 30.0),
        seed,
    }
}

fn llama_artifacts() -> (Arc<flexpipe_model::ModelGraph>, Arc<GranularityLattice>) {
    let graph = zoo::llama2_7b();
    let cm = CostModel::default();
    let p = Partitioner::new(PartitionParams::default(), cm);
    let lattice = GranularityLattice::build(&p, &graph, 8, &[1, 2, 4, 8], &cm).unwrap();
    (Arc::new(graph), Arc::new(lattice))
}

#[test]
fn static_policy_serves_all_requests() {
    let (graph, lattice) = llama_artifacts();
    let sc = scenario(1.0, 4.0, 60.0, 1);
    let engine = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 2,
            replicas: 1,
        }),
    );
    let report = engine.run();
    assert!(report.arrived > 150, "arrived {}", report.arrived);
    assert!(
        report.completion_rate() > 0.98,
        "completion {} of {}",
        report.completed(),
        report.arrived
    );
    // Low-load latency: a handful of decode passes, well under a second.
    assert!(
        report.summary.p50_latency < 1.0,
        "p50 {}",
        report.summary.p50_latency
    );
    // Cold start: the instance loads ~13 GiB from storage (~10 s), so the
    // earliest requests violate the SLO — exactly the §7 motivation. The
    // steady-state window must be clean.
    assert!(report.summary.goodput_rate > 0.75);
    let mut steady = report
        .outcomes
        .latency_digest_in(SimTime::from_secs(30), SimTime::from_secs(90));
    assert!(steady.count() > 50);
    assert!(
        steady.quantile(0.99) < 2.0,
        "steady p99 {}",
        steady.quantile(0.99)
    );
    assert!(report.events > 1000);
}

#[test]
fn deeper_pipelines_cost_latency_at_low_load() {
    let (graph, lattice) = llama_artifacts();
    let mut p50 = Vec::new();
    for stages in [1, 8] {
        let sc = scenario(1.0, 2.0, 60.0, 2);
        let report = Engine::new(
            sc,
            graph.clone(),
            lattice.clone(),
            Box::new(StaticPolicy {
                stages,
                replicas: 1,
            }),
        )
        .run();
        assert!(report.completion_rate() > 0.95, "stages {stages}");
        p50.push(report.summary.p50_latency);
    }
    // 8 stages add ~7 hop+overhead units per decode token: latency must
    // rise measurably (the Fig. 4 low-CV effect). The margin is modest for
    // LLAMA2-7B because the single-stage weight-read floor (13.5 GB/pass)
    // already dominates its decode time.
    assert!(
        p50[1] > p50[0] * 1.15,
        "1-stage p50 {} vs 8-stage p50 {}",
        p50[0],
        p50[1]
    );
}

#[test]
fn inflight_refactor_preserves_service() {
    let (graph, lattice) = llama_artifacts();
    let sc = scenario(1.0, 4.0, 90.0, 3);
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(RefactorOnce {
            to_stages: 4,
            at: SimTime::from_secs(30),
            fired: false,
        }),
    )
    .run();
    assert_eq!(report.refactors, 1, "exactly one refactor");
    assert!(
        report.completion_rate() > 0.97,
        "rate {}",
        report.completion_rate()
    );
    // The pause was 9 ms — total pause accounting must reflect it.
    assert!((report.refactor_pause_secs - 0.009).abs() < 1e-9);
}

#[test]
fn retire_then_respawn_hits_host_cache() {
    let (graph, lattice) = llama_artifacts();

    struct CyclePolicy {
        phase: u32,
    }
    impl ControlPolicy for CyclePolicy {
        fn name(&self) -> &'static str {
            "cycle"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let all: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .collect();
            ctx.set_always_on(all);
            ctx.spawn(2, Placement::FirstFit).unwrap();
        }
        fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
            let now = ctx.now();
            if self.phase == 0 && now >= SimTime::from_secs(20) {
                let id = ctx.instances()[0].id;
                ctx.retire(id);
                self.phase = 1;
            } else if self.phase == 1 && now >= SimTime::from_secs(25) {
                ctx.spawn(2, Placement::FirstFit).unwrap();
                self.phase = 2;
            }
        }
    }

    let sc = scenario(1.0, 1.0, 60.0, 4);
    let report = Engine::new(sc, graph, lattice, Box::new(CyclePolicy { phase: 0 })).run();
    assert_eq!(report.spawns, 2);
    // The second spawn's two stages find parameters in host memory.
    assert!(report.warm_loads >= 2, "warm {}", report.warm_loads);
    assert!(report.warm_load_fraction() > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let (graph, lattice) = llama_artifacts();
    let run = |seed| {
        Engine::new(
            scenario(2.0, 4.0, 45.0, seed),
            graph.clone(),
            lattice.clone(),
            Box::new(StaticPolicy {
                stages: 2,
                replicas: 1,
            }),
        )
        .run()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.completed(), b.completed());
    assert_eq!(a.events, b.events);
    assert!((a.summary.mean_latency - b.summary.mean_latency).abs() < 1e-12);
    let c = run(8);
    assert_ne!(a.events, c.events);
}

#[test]
fn overload_builds_queue_and_violates_slo() {
    let (graph, lattice) = llama_artifacts();
    // One 1-stage replica at high request rate with a tight SLO.
    let mut sc = scenario(1.0, 60.0, 40.0, 5);
    for r in &mut sc.workload.requests {
        r.slo = SimDuration::from_millis(800);
    }
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 1,
            replicas: 1,
        }),
    )
    .run();
    // Queue time should dominate and goodput degrade.
    assert!(
        report.summary.mean_queue > report.summary.mean_execution,
        "queue {} exec {}",
        report.summary.mean_queue,
        report.summary.mean_execution
    );
    assert!(
        report.summary.goodput_rate < 0.9,
        "goodput {}",
        report.summary.goodput_rate
    );
}

#[test]
fn utilization_ledger_tracks_gpus() {
    let (graph, lattice) = llama_artifacts();
    let sc = scenario(1.0, 4.0, 60.0, 6);
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 4,
            replicas: 1,
        }),
    )
    .run();
    assert_eq!(report.peak_gpus_held(), 4);
    assert!(report.held_utilization() > 0.0);
    assert!(report.held_utilization() <= 1.0);
}

#[test]
fn prewarmed_spawns_are_ready_instantly() {
    struct Prewarmed;
    impl ControlPolicy for Prewarmed {
        fn name(&self) -> &'static str {
            "prewarmed"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let all: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .collect();
            ctx.set_always_on(all);
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
        }
    }
    let (graph, lattice) = llama_artifacts();
    let sc = scenario(1.0, 4.0, 30.0, 41);
    let report = Engine::new(sc, graph, lattice, Box::new(Prewarmed)).run();
    // No elastic init latency was recorded, and the very first requests
    // complete promptly (no cold-load backlog).
    assert_eq!(report.mean_init_secs, 0.0);
    let first = report.outcomes.outcomes().first().expect("completions");
    assert!(
        first.latency().as_secs_f64() < 2.0,
        "first completion latency {}",
        first.latency()
    );
    assert!(report.completion_rate() > 0.98);
}

#[test]
fn admission_hold_blocks_and_releases() {
    struct Holder {
        phase: u8,
    }
    impl ControlPolicy for Holder {
        fn name(&self) -> &'static str {
            "holder"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let all: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .collect();
            ctx.set_always_on(all);
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
        }
        fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
            let now = ctx.now().as_secs_f64();
            let id = ctx.instances()[0].id;
            if self.phase == 0 && now >= 10.0 {
                ctx.set_admit_hold(id, true);
                self.phase = 1;
            } else if self.phase == 1 && now >= 25.0 {
                ctx.set_admit_hold(id, false);
                self.phase = 2;
            }
        }
    }
    let (graph, lattice) = llama_artifacts();
    let sc = scenario(1.0, 6.0, 60.0, 43);
    let report = Engine::new(sc, graph, lattice, Box::new(Holder { phase: 0 })).run();
    // During the hold the gateway queue must have built up...
    let held_max = report
        .queue_timeline
        .max_in(SimTime::from_secs(12), SimTime::from_secs(25));
    assert!(held_max > 10.0, "queue never built during hold: {held_max}");
    // ...and everything still completes after release.
    assert!(
        report.completion_rate() > 0.97,
        "{}",
        report.completion_rate()
    );
}

#[test]
fn long_prompts_are_chunked_and_complete() {
    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 2.0, 60.0, 44);
    for r in &mut sc.workload.requests {
        r.prompt_tokens = 7000; // ~7 chunks at the 1024-token cap
        r.slo = SimDuration::from_secs(30);
    }
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 2,
            replicas: 1,
        }),
    )
    .run();
    assert!(
        report.completion_rate() > 0.95,
        "{}",
        report.completion_rate()
    );
    // Prefill covers every chunk: it must be several times one chunk pass.
    let mean_prefill = report.summary.mean_prefill;
    assert!(
        mean_prefill > 0.02,
        "prefill {mean_prefill}s too small for 7 chunks"
    );
}

#[test]
fn draining_instance_finishes_active_work_before_release() {
    struct RetireEarly {
        done: bool,
    }
    impl ControlPolicy for RetireEarly {
        fn name(&self) -> &'static str {
            "retire-early"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let all: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .collect();
            ctx.set_always_on(all);
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
        }
        fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
            if !self.done && ctx.now() >= SimTime::from_secs(20) {
                let id = ctx.instances()[0].id;
                ctx.retire(id);
                self.done = true;
            }
        }
    }
    let (graph, lattice) = llama_artifacts();
    let sc = scenario(1.0, 6.0, 80.0, 45);
    let report = Engine::new(sc, graph, lattice, Box::new(RetireEarly { done: false })).run();
    // Nothing is dropped by the retirement.
    assert!(
        report.completion_rate() > 0.97,
        "{}",
        report.completion_rate()
    );
    // The retired instance's GPUs were released (ledger balances out).
    assert!(report.ledger.mean_allocated(SimTime::from_secs(110)) < 4.0);
}

#[test]
fn hot_server_preempt_cripples_then_default_policy_cold_respawns() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 6.0, 60.0, 9);
    sc.disruptions = DisruptionScript {
        name: "preempt".into(),
        events: vec![DisruptionEvent {
            at_secs: 30.0,
            kind: Disruption::HotServerPreempt {
                rank: 0,
                grace_secs: 0.0,
            },
        }],
    };
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 2,
            replicas: 1,
        }),
    )
    .run();
    let d = &report.disruptions;
    assert_eq!(d.revocation_events, 1);
    assert!(d.gpus_revoked >= 1);
    // The busiest server hosted a stage: in-flight work died and replayed.
    assert!(d.requests_aborted > 0, "nothing was in flight at t=30");
    assert_eq!(d.requests_aborted, d.requests_replayed);
    assert!(d.tokens_lost > 0);
    // Default recovery is a cold respawn: a second (elastic) spawn.
    assert_eq!(report.spawns, 2);
    // Recovery took real time (provisioning + parameter load).
    assert!(
        d.mean_time_to_recover() > 0.5,
        "{}",
        d.mean_time_to_recover()
    );
    assert_eq!(d.unrecovered, 0, "replacement never came up");
    // Replayed requests complete after the recovery.
    assert!(
        report.completion_rate() > 0.95,
        "completion {}",
        report.completion_rate()
    );
}

#[test]
fn revoked_capacity_returns_on_capacity_return() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 2.0, 60.0, 10);
    sc.disruptions = DisruptionScript {
        name: "fail-restore".into(),
        events: vec![
            DisruptionEvent {
                at_secs: 20.0,
                kind: Disruption::GpuFail { gpu: 70 },
            },
            DisruptionEvent {
                at_secs: 21.0,
                kind: Disruption::GpuFail { gpu: 71 },
            },
            DisruptionEvent {
                at_secs: 40.0,
                kind: Disruption::CapacityReturn {
                    gpus: vec![70, 71],
                    servers: Vec::new(),
                },
            },
        ],
    };
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 2,
            replicas: 1,
        }),
    )
    .run();
    let d = &report.disruptions;
    // GPUs 70/71 are idle corners of the 82-GPU testbed: no instance is
    // wounded, so the fleet recovers instantly, and both devices return.
    assert_eq!(d.revocation_events, 2);
    assert_eq!(d.gpus_revoked, 2);
    assert_eq!(d.gpus_restored, 2);
    assert_eq!(d.requests_aborted, 0);
    assert!(report.completion_rate() > 0.97);
}

/// Rebuilds any crippled instance inflight: reuse survivors, land the
/// dead stages on fresh devices, with a visible multi-second prepare.
struct RebuildOnWound {
    prepare_secs: u64,
}

impl ControlPolicy for RebuildOnWound {
    fn name(&self) -> &'static str {
        "rebuild-on-wound"
    }
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let all: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .collect();
        ctx.set_always_on(all);
        ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
    }
    fn on_disruption(&mut self, ctx: &mut Ctx<'_>, notice: &flexpipe_serving::DisruptionNotice) {
        for c in &notice.crippled {
            let survivors = ctx.state.stage_placement(c.id).unwrap_or_default();
            let new_ranges = ctx
                .state
                .lattice()
                .level(c.original_stages)
                .expect("level exists")
                .ranges
                .clone();
            let in_use = ctx.state.gpus_in_use().clone();
            let revoked = ctx.revoked_gpus();
            let mut pool: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .filter(|g| !in_use.contains(g) && !revoked.contains(g))
                .collect();
            let assignments = new_ranges
                .iter()
                .map(|&r| match survivors.iter().position(|&(sr, _)| sr == r) {
                    Some(i) => StageAssign::Reuse {
                        old_index: i as u32,
                    },
                    None => StageAssign::Fresh {
                        gpu: pool.remove(0),
                    },
                })
                .collect();
            ctx.refactor(
                c.id,
                RefactorPlan {
                    new_ranges,
                    assignments,
                    prepare: SimDuration::from_secs(self.prepare_secs),
                    pause: SimDuration::from_millis(10),
                },
            )
            .expect("rebuild accepted");
        }
    }
}

#[test]
fn crippled_rebuild_blocks_admission_until_commit() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 4.0, 60.0, 15);
    // GPU 0 hosts stage 0 of the only instance; it fails at t=20 with no
    // grace, and the rebuild takes 5 s of preparation.
    sc.disruptions = DisruptionScript {
        name: "fail-then-rebuild".into(),
        events: vec![DisruptionEvent {
            at_secs: 20.0,
            kind: Disruption::GpuFail { gpu: 0 },
        }],
    };
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(RebuildOnWound { prepare_secs: 5 }),
    )
    .run();
    assert_eq!(report.disruptions.revocation_events, 1);
    assert_eq!(report.refactors, 1);
    assert_eq!(report.spawns, 1, "rebuild must not respawn");
    // A half-pipeline must not serve: nothing completes between the
    // revocation and the rebuild's commit (~t=25).
    let premature = report
        .outcomes
        .outcomes()
        .iter()
        .filter(|o| {
            let t = o.completion.as_secs_f64();
            t > 20.0 && t < 24.9
        })
        .count();
    assert_eq!(
        premature, 0,
        "{premature} requests served by an incomplete pipeline"
    );
    // Afterwards service resumes and the backlog drains.
    assert!(
        report.completion_rate() > 0.97,
        "{}",
        report.completion_rate()
    );
    // Time-to-recover is the rebuild duration.
    let ttr = report.disruptions.mean_time_to_recover();
    assert!((4.5..6.0).contains(&ttr), "ttr {ttr}");
}

#[test]
fn failed_crippled_rebuild_never_resurrects_a_partial_pipeline() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 2.0, 50.0, 16);
    // GPU 0 dies at t=20, crippling the instance; the rebuild targets the
    // first free device (GPU 2), which dies mid-prepare at t=22. That
    // voids the rebuild's plan, so the engine cancels it and releases the
    // instance (this policy never retries) — under no circumstance may a
    // pipeline with missing layers come back as Serving.
    sc.disruptions = DisruptionScript {
        name: "double-fail".into(),
        events: vec![
            DisruptionEvent {
                at_secs: 20.0,
                kind: Disruption::GpuFail { gpu: 0 },
            },
            DisruptionEvent {
                at_secs: 22.0,
                kind: Disruption::GpuFail { gpu: 2 },
            },
        ],
    };
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(RebuildOnWound { prepare_secs: 5 }),
    )
    .run();
    assert_eq!(report.disruptions.revocation_events, 2);
    // No complete pipeline ever returns: nothing may complete after the
    // first revocation.
    let resurrected = report
        .outcomes
        .outcomes()
        .iter()
        .filter(|o| o.completion.as_secs_f64() > 20.5)
        .count();
    assert_eq!(
        resurrected, 0,
        "{resurrected} requests served by a resurrected partial pipeline"
    );
    // Both recovery windows stay open to the horizon.
    assert_eq!(report.disruptions.unrecovered, 2);
}

#[test]
fn wounding_a_loading_instance_releases_it_instead_of_crippling() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 2.0, 40.0, 13);
    // StaticPolicy spawns elastically at t=0: parameters stream from
    // storage for several seconds, so the instance is still Loading when
    // one of its devices (best-fit picks GPU 0 first) fails at t=2.
    sc.disruptions = DisruptionScript {
        name: "fail-during-load".into(),
        events: vec![DisruptionEvent {
            at_secs: 2.0,
            kind: Disruption::GpuFail { gpu: 0 },
        }],
    };
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(StaticPolicy {
            stages: 2,
            replicas: 1,
        }),
    )
    .run();
    let d = &report.disruptions;
    assert_eq!(d.revocation_events, 1);
    // Nothing was admitted yet, so nothing aborts; and a half-loaded
    // instance must not be "rebuilt" into existence — it is a total loss
    // (the default policy never respawns, so no second spawn appears).
    assert_eq!(d.requests_aborted, 0);
    assert_eq!(report.spawns, 1);
    // The surviving device was released: by the end nothing is held.
    assert!(
        report.ledger.mean_allocated(SimTime::from_secs(70)) < 1.0,
        "held {}",
        report.ledger.mean_allocated(SimTime::from_secs(70))
    );
}

#[test]
fn wounding_a_draining_instance_finishes_the_retirement() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};

    struct RetireThenWatch {
        done: bool,
    }
    impl ControlPolicy for RetireThenWatch {
        fn name(&self) -> &'static str {
            "retire-then-watch"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let all: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .collect();
            ctx.set_always_on(all);
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
        }
        fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
            if !self.done && ctx.now() >= SimTime::from_secs(20) {
                let id = ctx.instances()[0].id;
                ctx.retire(id);
                self.done = true;
            }
        }
    }

    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 6.0, 60.0, 14);
    // GPU 0 hosts a stage of the first (retired-at-20s) instance; it
    // fails a moment into the drain. The revocation must *finish* the
    // retirement — not resurrect capacity the policy just shed via the
    // default cold-respawn path.
    sc.disruptions = DisruptionScript {
        name: "fail-during-drain".into(),
        events: vec![DisruptionEvent {
            at_secs: 20.2,
            kind: Disruption::GpuFail { gpu: 0 },
        }],
    };
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(RetireThenWatch { done: false }),
    )
    .run();
    assert_eq!(report.disruptions.revocation_events, 1);
    assert_eq!(
        report.spawns, 2,
        "a draining instance must not be respawned"
    );
    // Requests caught mid-drain replay on the surviving instance.
    assert!(
        report.completion_rate() > 0.97,
        "{}",
        report.completion_rate()
    );
}

#[test]
fn graced_preemption_gives_policies_a_migration_window() {
    use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
    use flexpipe_cluster::GpuId;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc as StdArc;

    // A policy that migrates off doomed devices during the grace window
    // by refactoring to the same depth on fresh GPUs.
    struct Migrator {
        noticed: StdArc<AtomicBool>,
    }
    impl ControlPolicy for Migrator {
        fn name(&self) -> &'static str {
            "migrator"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            let all: Vec<_> = ctx
                .state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .collect();
            ctx.set_always_on(all);
            ctx.spawn_prewarmed(2, Placement::FirstFit).unwrap();
        }
        fn on_revoke_notice(&mut self, ctx: &mut Ctx<'_>, gpus: &[GpuId], _deadline: SimTime) {
            self.noticed.store(true, Ordering::SeqCst);
            let doomed: Vec<GpuId> = gpus.to_vec();
            let insts = ctx.instances();
            for inst in insts {
                let Some(placement) = ctx.state.stage_placement(inst.id) else {
                    continue;
                };
                if !placement.iter().any(|(_, g)| doomed.contains(g)) {
                    continue;
                }
                let in_use = ctx.state.gpus_in_use().clone();
                let mut fresh: Vec<GpuId> = ctx
                    .state
                    .cluster()
                    .topology()
                    .gpus()
                    .iter()
                    .map(|g| g.id)
                    .filter(|g| !in_use.contains(g) && !doomed.contains(g))
                    .collect();
                let mut assignments = Vec::new();
                let mut new_ranges = Vec::new();
                for (i, &(range, gpu)) in placement.iter().enumerate() {
                    new_ranges.push(range);
                    if doomed.contains(&gpu) {
                        assignments.push(StageAssign::Fresh {
                            gpu: fresh.remove(0),
                        });
                    } else {
                        assignments.push(StageAssign::Reuse {
                            old_index: i as u32,
                        });
                    }
                }
                let plan = RefactorPlan {
                    new_ranges,
                    assignments,
                    prepare: SimDuration::from_secs(3),
                    pause: SimDuration::from_millis(20),
                };
                ctx.refactor(inst.id, plan).expect("rescue refactor");
            }
        }
    }

    let (graph, lattice) = llama_artifacts();
    let mut sc = scenario(1.0, 4.0, 60.0, 12);
    sc.disruptions = DisruptionScript {
        name: "graced".into(),
        events: vec![DisruptionEvent {
            at_secs: 25.0,
            kind: Disruption::HotServerPreempt {
                rank: 0,
                grace_secs: 10.0,
            },
        }],
    };
    let noticed = StdArc::new(AtomicBool::new(false));
    let report = Engine::new(
        sc,
        graph,
        lattice,
        Box::new(Migrator {
            noticed: noticed.clone(),
        }),
    )
    .run();
    assert!(noticed.load(Ordering::SeqCst), "notice never delivered");
    let d = &report.disruptions;
    assert_eq!(d.revocation_events, 1);
    // The migration finished inside the grace window: nothing was in
    // flight on the dead server, so no request was aborted and recovery
    // is instantaneous.
    assert_eq!(d.requests_aborted, 0, "migration failed to beat the grace");
    assert!(d.mean_time_to_recover() < 1e-9);
    assert_eq!(report.refactors, 1);
    assert_eq!(report.spawns, 1, "no respawn needed");
    assert!(report.completion_rate() > 0.97);
}

#[test]
fn batch_scaling_compresses_hop_traffic() {
    // Eq. (3) opt-in: sub-linear activation growth must reduce the
    // communication share without changing completions.
    let (graph, lattice) = llama_artifacts();
    let run = |scaling| {
        let mut sc = scenario(1.0, 6.0, 60.0, 47);
        sc.config.batch_scaling = scaling;
        Engine::new(
            sc,
            graph.clone(),
            lattice.clone(),
            Box::new(StaticPolicy {
                stages: 4,
                replicas: 1,
            }),
        )
        .run()
    };
    let linear = run(None);
    let scaled = run(Some(flexpipe_model::BatchScaling {
        alpha: 0.85,
        b_base: 8.0,
    }));
    assert_eq!(linear.completed(), scaled.completed());
    assert!(
        scaled.summary.mean_communication < linear.summary.mean_communication,
        "scaled comm {} !< linear comm {}",
        scaled.summary.mean_communication,
        linear.summary.mean_communication
    );
}
