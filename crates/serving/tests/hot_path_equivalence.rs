//! PR 5's two new incremental hot paths, held to the same two contracts
//! the admission index established (`admission_fast_path.rs`):
//!
//! 1. **Equivalence** — the decode-slot tracker and the server-load
//!    ranking make bit-identical decisions to their retained naive
//!    reference scans under randomized churn (launches, dissolutions,
//!    revocation kills; lease churn, GPU revoke/restore).
//! 2. **Speed** — at the ≥1000-instance/server tier the indexed paths
//!    beat the naive scans by a wide margin; ≥2× *combined* is asserted
//!    (deliberately generous so a loaded CI machine cannot flake it,
//!    while a silent revert to the linear scans still fails).

use std::time::Instant;

use flexpipe_serving::{decode_slot_churn, server_load_churn, EngineMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The decode-slot tracker agrees with the micro-batch-list recount
    /// decision-for-decision across random fleet sizes and op counts.
    #[test]
    fn decode_slot_tracker_matches_recount_under_random_churn(
        n in 1usize..96,
        ops in 1usize..4000,
    ) {
        prop_assert_eq!(
            decode_slot_churn(n, ops, EngineMode::Indexed),
            decode_slot_churn(n, ops, EngineMode::NaiveScan),
            "decode-slot divergence at n={}, ops={}", n, ops
        );
    }

    /// The cluster's server-load ranking agrees with the rebuild-and-sort
    /// reference across random cluster sizes and op counts.
    #[test]
    fn server_load_index_matches_rebuild_under_random_churn(
        servers in 1usize..48,
        ops in 1usize..1500,
    ) {
        prop_assert_eq!(
            server_load_churn(servers, ops, EngineMode::Indexed),
            server_load_churn(servers, ops, EngineMode::NaiveScan),
            "server-load divergence at servers={}, ops={}", servers, ops
        );
    }
}

#[test]
fn indexed_hot_paths_outpace_naive_scans_at_fleet_scale() {
    // 1500 instances/servers — the ≥1000 tier of the acceptance bar. The
    // server harness runs fewer ops because its naive pass is
    // O(servers × GPUs) *per query* and would otherwise dominate the
    // suite's runtime.
    const N: usize = 1500;
    const SLOT_OPS: usize = 120_000;
    const LOAD_OPS: usize = 6_000;

    // Warm both paths once (allocator effects) and pin equivalence.
    assert_eq!(
        decode_slot_churn(N, SLOT_OPS / 10, EngineMode::Indexed),
        decode_slot_churn(N, SLOT_OPS / 10, EngineMode::NaiveScan),
        "decode-slot warmup divergence"
    );
    assert_eq!(
        server_load_churn(N, LOAD_OPS / 10, EngineMode::Indexed),
        server_load_churn(N, LOAD_OPS / 10, EngineMode::NaiveScan),
        "server-load warmup divergence"
    );

    let t = Instant::now();
    let slot_i = decode_slot_churn(N, SLOT_OPS, EngineMode::Indexed);
    let load_i = server_load_churn(N, LOAD_OPS, EngineMode::Indexed);
    let indexed_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let slot_n = decode_slot_churn(N, SLOT_OPS, EngineMode::NaiveScan);
    let load_n = server_load_churn(N, LOAD_OPS, EngineMode::NaiveScan);
    let naive_secs = t.elapsed().as_secs_f64();

    assert_eq!(slot_i, slot_n, "decode-slot paths must decide identically");
    assert_eq!(load_i, load_n, "server-load paths must rank identically");
    eprintln!(
        "hot paths at {N} instances/servers: indexed {indexed_secs:.3}s, \
         naive {naive_secs:.3}s ({:.1}x combined)",
        naive_secs / indexed_secs
    );
    assert!(
        naive_secs > 2.0 * indexed_secs,
        "indexed decode-slot + hottest-server should be measurably faster \
         combined: indexed {indexed_secs:.3}s vs naive {naive_secs:.3}s"
    );
}
