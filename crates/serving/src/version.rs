//! The engine semantics fingerprint: a stable string that changes
//! whenever the simulation's observable behaviour changes, exported so
//! content-addressed result caches (the fleet's per-cell campaign cache)
//! can salt their keys with it.
//!
//! Two ingredients:
//!
//! - [`ENGINE_SEMANTICS_VERSION`], a manually maintained counter. **Bump
//!   it in the same commit as any change that can alter a deterministic
//!   run's metrics** — event ordering, cost-model hookup, admission
//!   semantics, refactor mechanics, disruption accounting. Pure
//!   optimizations proven byte-identical (e.g. the indexed admission
//!   path) do *not* bump it; that equivalence is what the fleet's
//!   admission tests pin down.
//! - a structural hash of [`EngineConfig::default`], so silently retuned
//!   defaults (ubatch size, prefill caps, interference coefficient…)
//!   invalidate cached results without anyone remembering the counter.
//!
//! The fingerprint deliberately does not hash source files: the build
//! environment has no content-hashing toolchain dependency, and source
//! churn that provably does not change semantics (refactors, comments)
//! should keep caches warm.

use serde::{Serialize, Value};

use crate::config::EngineConfig;

/// Manually maintained engine-semantics counter (see the module docs for
/// the bump rule).
///
/// v2: report outcome lists canonicalize to request-id order before
/// summarizing (completion order was a schedule artifact; summary means
/// now sum in id order, which can move cached metrics by float-ULPs).
///
/// v3: the characterized-bug fixes. The cost model's cold-storage load
/// time gained a layout-aware setup + capped-gain term (Table 2
/// calibration), which moves every non-prewarmed spawn's load duration;
/// the FlexPipe control plane's replica cap now scales with observed
/// demand (the 200 QPS saturation fix), changing scale-out decisions at
/// high rates.
pub const ENGINE_SEMANTICS_VERSION: u32 = 3;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Structural FNV-1a over a serialized value tree. Tags every node with a
/// kind byte so `[1]` and `"1"` and `{"1": null}` hash apart; floats hash
/// by bit pattern (the same bits that make artifacts byte-stable);
/// strings and map keys are length-prefixed so the encoding is injective
/// (adjacent strings cannot re-segment into the same byte stream).
fn hash_value(v: &Value, h: u64) -> u64 {
    let str_bytes = |h: u64, s: &str| fnv(fnv(h, &(s.len() as u64).to_le_bytes()), s.as_bytes());
    match v {
        Value::Null => fnv(h, b"n"),
        Value::Bool(b) => fnv(h, if *b { b"t" } else { b"f" }),
        Value::Int(x) => fnv(fnv(h, b"i"), &x.to_le_bytes()),
        Value::UInt(x) => fnv(fnv(h, b"u"), &x.to_le_bytes()),
        Value::Float(x) => fnv(fnv(h, b"d"), &x.to_bits().to_le_bytes()),
        Value::Str(s) => str_bytes(fnv(h, b"s"), s),
        Value::Seq(xs) => {
            let mut h = fnv(h, b"[");
            for x in xs {
                h = hash_value(x, h);
            }
            fnv(h, b"]")
        }
        Value::Map(m) => {
            let mut h = fnv(h, b"{");
            for (k, x) in m {
                h = str_bytes(fnv(h, b"k"), k);
                h = hash_value(x, h);
            }
            fnv(h, b"}")
        }
    }
}

/// The engine semantics fingerprint, e.g. `engine-v1-a3f09c…`. Stable
/// across runs, platforms and thread counts; changes when
/// [`ENGINE_SEMANTICS_VERSION`] is bumped or any [`EngineConfig`] default
/// moves.
pub fn engine_fingerprint() -> String {
    let defaults = hash_value(&EngineConfig::default().to_value(), FNV_OFFSET);
    format!("engine-v{ENGINE_SEMANTICS_VERSION}-{defaults:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        let a = engine_fingerprint();
        assert_eq!(a, engine_fingerprint());
        assert!(a.starts_with(&format!("engine-v{ENGINE_SEMANTICS_VERSION}-")));
    }

    /// The fingerprint pinned to its exact committed value: the live test
    /// of the content-address contract. A *pure* refactor or optimization
    /// (PR 5's engine split and index work, for instance) must leave this
    /// string — and therefore every warm campaign cache — untouched. If
    /// this test fails, either a config default silently moved (find it)
    /// or engine semantics genuinely changed (bump
    /// [`ENGINE_SEMANTICS_VERSION`] and re-pin).
    #[test]
    fn fingerprint_matches_the_committed_value() {
        assert_eq!(engine_fingerprint(), "engine-v3-eed038b42aeaa8e3");
    }

    #[test]
    fn fingerprint_tracks_config_defaults() {
        // A retuned default must move the hash component: emulate one by
        // hashing a doctored config and comparing against the default's.
        let base = hash_value(&EngineConfig::default().to_value(), FNV_OFFSET);
        let mut retuned = EngineConfig::default();
        retuned.ubatch_size += 1;
        assert_ne!(base, hash_value(&retuned.to_value(), FNV_OFFSET));
        let mut retuned = EngineConfig::default();
        retuned.interference_coeff += 0.1;
        assert_ne!(base, hash_value(&retuned.to_value(), FNV_OFFSET));
    }

    #[test]
    fn structural_hash_distinguishes_kinds() {
        let h = |v: &Value| hash_value(v, FNV_OFFSET);
        assert_ne!(h(&Value::UInt(1)), h(&Value::Str("1".into())));
        assert_ne!(
            h(&Value::Seq(vec![Value::Null])),
            h(&Value::Map(vec![("".into(), Value::Null)]))
        );
        // Adjacent strings must not re-segment ambiguously — including
        // when one string contains another's tag byte.
        let ab = Value::Seq(vec![Value::Str("ab".into()), Value::Str("".into())]);
        let a_b = Value::Seq(vec![Value::Str("a".into()), Value::Str("b".into())]);
        assert_ne!(h(&ab), h(&a_b));
        let as_b = Value::Seq(vec![Value::Str("as".into()), Value::Str("b".into())]);
        let a_sb = Value::Seq(vec![Value::Str("a".into()), Value::Str("sb".into())]);
        assert_ne!(h(&as_b), h(&a_sb));
    }
}
