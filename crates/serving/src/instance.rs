//! Pipeline instances: a set of stages on distinct GPUs serving one model
//! replica, executing recirculating micro-batches.
//!
//! Execution model: requests are grouped into micro-batches. A micro-batch
//! makes *passes* through the stage tandem — one prefill pass first, then
//! one decode pass per generated token — re-entering stage 0 after each
//! pass (autoregressive dependency). Distinct micro-batches overlap inside
//! the pipeline, which is what keeps deep pipelines busy; a single
//! micro-batch alone experiences the full `S·(τ+δ)` per-token latency the
//! paper's Fig. 4 shows for fine-grained pipelines under low load.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use flexpipe_cluster::{GpuId, LeaseId};
use flexpipe_model::OpRange;
use flexpipe_sim::SimTime;
use flexpipe_workload::RequestId;

use crate::engine::indexes::DecodeSlotTracker;

/// Identifier of a pipeline instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

/// Identifier of a micro-batch within the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UbatchId(pub u64);

/// Execution phase of a micro-batch pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// First pass: processing all prompt tokens.
    Prefill,
    /// Steady state: one token per member per pass.
    Decode,
}

/// A micro-batch of requests moving through the pipeline together.
#[derive(Debug, Clone)]
pub struct MicroBatch {
    /// This micro-batch's id.
    pub id: UbatchId,
    /// Member requests still active.
    pub members: Vec<RequestId>,
    /// Current pass phase.
    pub phase: Phase,
    /// Tokens processed per pass (prompt chunk for prefill, member count
    /// for decode); refreshed when membership changes.
    pub pass_tokens: u64,
    /// Prompt tokens still to prefill after the current pass (chunked
    /// prefill); 0 for decode micro-batches.
    pub prefill_remaining: u64,
    /// When the current pass entered stage 0 (for latency attribution).
    pub pass_started: SimTime,
    /// Accumulated compute time of the current pass.
    pub pass_compute_secs: f64,
    /// Accumulated communication time of the current pass.
    pub pass_comm_secs: f64,
}

/// One pipeline stage's runtime state.
///
/// Two input classes keep token generation responsive without starving
/// prompt processing: decode passes are preferred, but after
/// `DECODE_STREAK_LIMIT` consecutive decode passes a waiting prefill chunk
/// runs (weighted round-robin, as production schedulers do).
#[derive(Debug, Clone)]
pub struct StageRuntime {
    /// Operator range this stage executes.
    pub range: OpRange,
    /// Hosting GPU.
    pub gpu: GpuId,
    /// Device-memory lease backing parameters + KV budget.
    pub lease: LeaseId,
    /// Whether the stage is currently computing a pass.
    pub busy: bool,
    /// Decode micro-batches waiting to enter this stage.
    pub input_decode: VecDeque<UbatchId>,
    /// Prefill micro-batches waiting to enter this stage.
    pub input_prefill: VecDeque<UbatchId>,
    /// Consecutive decode passes since the last prefill pass.
    pub decode_streak: u8,
}

/// Consecutive decode passes a stage runs before yielding to prefill.
pub const DECODE_STREAK_LIMIT: u8 = 2;

impl StageRuntime {
    /// Picks the next micro-batch to run under the two-class policy.
    pub fn pop_next(&mut self) -> Option<(UbatchId, Phase)> {
        let prefer_prefill =
            self.decode_streak >= DECODE_STREAK_LIMIT && !self.input_prefill.is_empty();
        if prefer_prefill || self.input_decode.is_empty() {
            if let Some(ub) = self.input_prefill.pop_front() {
                self.decode_streak = 0;
                return Some((ub, Phase::Prefill));
            }
        }
        if let Some(ub) = self.input_decode.pop_front() {
            self.decode_streak = self.decode_streak.saturating_add(1);
            return Some((ub, Phase::Decode));
        }
        None
    }

    /// Total queued micro-batches.
    pub fn queued(&self) -> usize {
        self.input_decode.len() + self.input_prefill.len()
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// GPUs acquired, parameters loading; not serving yet.
    Loading,
    /// Serving traffic.
    Serving,
    /// Serving while a refactor prepares in the background (§6: inflight —
    /// the old topology keeps serving during preparation).
    Preparing,
    /// Brief switchover pause: passes in flight complete, none start.
    Paused,
    /// No longer admitting; draining active requests before release.
    Draining,
    /// A capacity revocation destroyed one or more stages: the surviving
    /// stages hold their devices (and warm parameters) but the pipeline
    /// cannot serve. A policy either refactors the instance back to a full
    /// topology inflight (FlexPipe) or retires it and cold-respawns.
    Crippled,
}

/// A pipeline instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// This instance's id.
    pub id: InstanceId,
    /// Stage runtimes in pipeline order.
    pub stages: Vec<StageRuntime>,
    /// Lifecycle state.
    pub state: InstanceState,
    /// Maximum admitted requests (memory bound, Table 2's max batch).
    pub batch_cap: u32,
    /// Requests currently admitted (in any micro-batch).
    pub active_requests: u32,
    /// In-flight micro-batches owned by this instance.
    pub ubatches: Vec<UbatchId>,
    /// Requests that finished a pass and await the next decode launch —
    /// the continuous-batching pool that coalesces small batches.
    pub decode_ready: VecDeque<RequestId>,
    /// Incremental count of in-flight decode micro-batches (O(1) decode
    /// dispatch instead of rescanning `ubatches`); maintained on launch /
    /// dissolve / revocation kill, validated against the naive recount in
    /// debug builds on every launch decision.
    pub decode_slots: DecodeSlotTracker,
    /// Policy-requested admission hold (e.g. draining toward a
    /// consolidation whose target capacity is below the live load).
    pub admit_hold: bool,
    /// Compute multiplier from policy-level multiplexing (MuxServe-style
    /// sharing); 1.0 = exclusive.
    pub compute_multiplier: f64,
    /// When the instance was spawned.
    pub spawned_at: SimTime,
    /// When the instance became ready (metrics: initialisation latency).
    pub ready_at: Option<SimTime>,
    /// Generation counter, bumped on refactor (stale events are dropped).
    pub epoch: u64,
}

/// A read-only snapshot handed to policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Instance id.
    pub id: InstanceId,
    /// Stage count.
    pub stages: u32,
    /// Lifecycle state.
    pub state: InstanceState,
    /// Admission capacity.
    pub batch_cap: u32,
    /// Admitted requests.
    pub active_requests: u32,
    /// Live micro-batches.
    pub ubatches: u32,
    /// Ready time if ready.
    pub ready_at: Option<SimTime>,
}

impl Instance {
    /// Stage count.
    pub fn stage_count(&self) -> u32 {
        self.stages.len() as u32
    }

    /// Whether the instance can admit another request right now.
    pub fn can_admit(&self) -> bool {
        matches!(
            self.state,
            InstanceState::Serving | InstanceState::Preparing
        ) && !self.admit_hold
            && self.active_requests < self.batch_cap
    }

    /// Free admission slots.
    pub fn free_slots(&self) -> u32 {
        self.batch_cap.saturating_sub(self.active_requests)
    }

    /// Admission-index key: the load factor's bit pattern when the
    /// instance can admit, `None` otherwise. Non-negative f64 bits order
    /// exactly like the values, so the index's `(key, id)` ordering
    /// reproduces the naive `(load_factor, id)` scan bit for bit.
    pub fn admit_key(&self) -> Option<u64> {
        if self.can_admit() {
            Some(self.load_factor().to_bits())
        } else {
            None
        }
    }

    /// Load factor (admitted / capacity).
    pub fn load_factor(&self) -> f64 {
        if self.batch_cap == 0 {
            1.0
        } else {
            f64::from(self.active_requests) / f64::from(self.batch_cap)
        }
    }

    /// Builds the policy-facing snapshot.
    pub fn snapshot(&self) -> InstanceSnapshot {
        InstanceSnapshot {
            id: self.id,
            stages: self.stage_count(),
            state: self.state,
            batch_cap: self.batch_cap,
            active_requests: self.active_requests,
            ubatches: self.ubatches.len() as u32,
            ready_at: self.ready_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(state: InstanceState, cap: u32, active: u32) -> Instance {
        Instance {
            id: InstanceId(1),
            stages: Vec::new(),
            state,
            batch_cap: cap,
            active_requests: active,
            ubatches: Vec::new(),
            decode_ready: VecDeque::new(),
            decode_slots: DecodeSlotTracker::new(),
            admit_hold: false,
            compute_multiplier: 1.0,
            spawned_at: SimTime::ZERO,
            ready_at: None,
            epoch: 0,
        }
    }

    #[test]
    fn admission_rules() {
        assert!(instance(InstanceState::Serving, 4, 3).can_admit());
        assert!(!instance(InstanceState::Serving, 4, 4).can_admit());
        assert!(!instance(InstanceState::Loading, 4, 0).can_admit());
        assert!(!instance(InstanceState::Draining, 4, 0).can_admit());
        assert!(instance(InstanceState::Preparing, 4, 0).can_admit());
        assert!(!instance(InstanceState::Paused, 4, 0).can_admit());
        assert!(!instance(InstanceState::Crippled, 4, 0).can_admit());
    }

    #[test]
    fn admit_key_tracks_admissibility() {
        assert_eq!(
            instance(InstanceState::Serving, 8, 2).admit_key(),
            Some(0.25f64.to_bits())
        );
        assert_eq!(instance(InstanceState::Serving, 4, 4).admit_key(), None);
        assert_eq!(instance(InstanceState::Paused, 4, 0).admit_key(), None);
    }

    #[test]
    fn load_factor_and_slots() {
        let i = instance(InstanceState::Serving, 8, 2);
        assert_eq!(i.free_slots(), 6);
        assert!((i.load_factor() - 0.25).abs() < 1e-9);
        let z = instance(InstanceState::Serving, 0, 0);
        assert_eq!(z.load_factor(), 1.0);
    }
}
