//! The serving engine: a discrete-event world executing pipelined LLM
//! inference over the simulated cluster under a pluggable control policy.
//!
//! Mechanism lives here (micro-batch passes, admission, instance
//! lifecycle, refactor execution, host-memory parameter cache); decisions
//! live in [`crate::policy::ControlPolicy`] implementations.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use flexpipe_chaos::{Disruption, DisruptionScript};
use flexpipe_cluster::{
    BackgroundProfile, BackgroundTenants, Cluster, ClusterSpec, Endpoint, GpuId, LeaseId,
    Provisioner, Route, ServerId, TierConfig, TransferEngine,
};
use flexpipe_metrics::{DisruptionLedger, OutcomeLog, RequestOutcome, Timeline, UtilizationLedger};
use flexpipe_model::{CostModel, ModelGraph, OpId, OpRange};
use flexpipe_partition::GranularityLattice;
use flexpipe_sim::{EventQueue, RunOutcome, SimDuration, SimRng, SimTime, World};
use flexpipe_workload::{CvEstimator, Request, RequestId, Workload};

use crate::admission::{AdmissionIndex, AdmissionMode};
use crate::config::EngineConfig;
use crate::instance::{
    Instance, InstanceId, InstanceSnapshot, InstanceState, MicroBatch, Phase, StageRuntime,
    UbatchId,
};
use crate::policy::{
    ActionError, ControlPolicy, CrippledInstance, DisruptionNotice, Placement, RefactorPlan,
    StageAssign,
};
use crate::report::RunReport;

/// Events routed through the simulation queue.
#[derive(Debug, Clone)]
pub enum Event {
    /// Request `workload[i]` arrives at the gateway.
    Arrival(u32),
    /// Periodic control-loop invocation.
    ControlTick,
    /// Background fragmentation churn step.
    Churn,
    /// An instance finished loading parameters.
    InstanceReady {
        /// Target instance.
        id: InstanceId,
        /// Epoch the event belongs to.
        epoch: u64,
    },
    /// A micro-batch reaches a stage's input queue.
    StageArrive {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
        /// Stage index.
        stage: u16,
        /// The micro-batch.
        ub: UbatchId,
    },
    /// A stage finishes computing a micro-batch pass.
    StageDone {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
        /// Stage index.
        stage: u16,
        /// The micro-batch.
        ub: UbatchId,
    },
    /// A refactor's background preparation completes (switchover begins).
    PrepareDone {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
    },
    /// A refactor's switchover pause completes (new topology live).
    PauseDone {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
    },
    /// A scripted disruption fires (index into the scenario's script).
    Disruption(u32),
    /// A preemption's grace expired (or a failure had none): the listed
    /// devices are revoked *now*.
    Revoke {
        /// Devices leaving the cluster.
        gpus: Vec<GpuId>,
    },
    /// Previously revoked capacity returns to the pool.
    Restore {
        /// Devices re-entering the cluster.
        gpus: Vec<GpuId>,
    },
}

/// Scenario description bundling everything an engine run needs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Engine tunables.
    pub config: EngineConfig,
    /// Cluster to simulate.
    pub cluster: ClusterSpec,
    /// Background fragmentation profile.
    pub background: BackgroundProfile,
    /// Dual-tier provisioning parameters.
    pub tier: TierConfig,
    /// Calibrated cost model.
    pub cost: CostModel,
    /// The request stream.
    pub workload: Workload,
    /// Timed cluster disruptions (preemptions, failures, restores). Rate
    /// surges are a workload-generation concern and are ignored here; use
    /// [`flexpipe_chaos::warp_arrivals`] on the workload instead.
    pub disruptions: DisruptionScript,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Root random seed.
    pub seed: u64,
}

struct ReqRuntime {
    req: Request,
    admitted: Option<SimTime>,
    prefill_done: Option<SimTime>,
    generated: u32,
    exec_secs: f64,
    comm_secs: f64,
    done: bool,
}

struct HostCacheEntry {
    server: ServerId,
    lease: LeaseId,
    expires: SimTime,
}

struct PendingRefactor {
    plan: RefactorPlan,
    fresh_acquired: Vec<GpuId>,
    /// Whether the refactor entered from `Crippled` (a post-revocation
    /// rebuild): the "old topology" is incomplete, so the instance must
    /// not admit during preparation, and an abort must return it to
    /// `Crippled` rather than resurrect a partial pipeline as `Serving`.
    from_crippled: bool,
}

/// All mutable engine state (separated from the policy for borrow hygiene).
pub struct EngineState {
    pub(crate) config: EngineConfig,
    pub(crate) graph: Arc<ModelGraph>,
    pub(crate) cost: CostModel,
    pub(crate) lattice: Arc<GranularityLattice>,
    pub(crate) cluster: Cluster,
    pub(crate) transfer: TransferEngine,
    pub(crate) provisioner: Provisioner,
    pub(crate) tier: TierConfig,
    bg: BackgroundTenants,
    workload: Arc<Vec<Request>>,
    gateway: VecDeque<RequestId>,
    reqs: Vec<ReqRuntime>,
    instances: BTreeMap<InstanceId, Instance>,
    /// Incrementally maintained index over admissible instances (the
    /// high-rate fast path). Every mutation of an instance's state,
    /// capacity, live-request count or admit hold re-keys it via
    /// [`EngineState::reindex`]; [`EngineState::drain_gateway`] selects
    /// from it in O(log instances) instead of rescanning.
    admission: AdmissionIndex,
    ubatches: HashMap<UbatchId, MicroBatch>,
    pending_refactors: HashMap<InstanceId, PendingRefactor>,
    host_cache: HashMap<(u32, u32), HostCacheEntry>,
    gpus_in_use: std::collections::HashSet<GpuId>,
    script: DisruptionScript,
    pending_revocations: BTreeMap<GpuId, SimTime>,
    next_instance: u64,
    next_ubatch: u64,
    horizon: SimTime,
    // Metrics.
    disruptions: DisruptionLedger,
    outcomes: OutcomeLog,
    ledger: UtilizationLedger,
    queue_timeline: Timeline,
    inflight_timeline: Timeline,
    cv_est: CvEstimator,
    refactors: u32,
    refactor_pause_secs: f64,
    spawns: u32,
    init_latencies: Vec<f64>,
    warm_loads: u32,
    cold_loads: u32,
}

impl EngineState {
    /// Current gateway queue length.
    pub fn queue_len(&self) -> usize {
        self.gateway.len()
    }

    /// The model graph.
    pub fn graph(&self) -> &ModelGraph {
        &self.graph
    }

    /// The granularity lattice.
    pub fn lattice(&self) -> &GranularityLattice {
        &self.lattice
    }

    /// The cluster (read-only access for policies).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshots of all instances.
    pub fn snapshots(&self) -> Vec<InstanceSnapshot> {
        self.instances.values().map(|i| i.snapshot()).collect()
    }

    /// Re-keys `id` in the admission index from its current state (or
    /// removes it when gone / not admissible). Must be called after every
    /// mutation that can change `Instance::admit_key` — state changes,
    /// `active_requests`, `batch_cap`, `admit_hold`, removal.
    fn reindex(&mut self, id: InstanceId) {
        let key = self.instances.get(&id).and_then(Instance::admit_key);
        self.admission.apply(id, key);
    }

    /// Debug-build invariant: the index holds exactly the admissible
    /// instances under their current keys. Catches any mutation site that
    /// forgot to [`EngineState::reindex`] the moment admission runs, in
    /// every test (the test profile keeps debug assertions on).
    #[cfg(debug_assertions)]
    fn debug_validate_admission_index(&self) {
        let expected: Vec<(InstanceId, u64)> = self
            .instances
            .values()
            .filter_map(|i| i.admit_key().map(|k| (i.id, k)))
            .collect();
        let mut indexed: Vec<(InstanceId, u64)> = self.admission.entries().collect();
        indexed.sort_by_key(|&(id, _)| id);
        let mut want = expected;
        want.sort_by_key(|&(id, _)| id);
        debug_assert_eq!(
            indexed, want,
            "admission index diverged from instance state"
        );
    }

    fn new_instance_id(&mut self) -> InstanceId {
        self.next_instance += 1;
        InstanceId(self.next_instance)
    }

    fn new_ubatch_id(&mut self) -> UbatchId {
        self.next_ubatch += 1;
        UbatchId(self.next_ubatch)
    }

    fn load_route(&self, range: OpRange, gpu: GpuId) -> Route {
        let key = (range.start, range.end);
        match self.host_cache.get(&key) {
            Some(entry) => {
                if self.cluster.topology().gpu(gpu).server == entry.server {
                    Route::PcieHost
                } else {
                    Route::Rdma
                }
            }
            None => Route::Storage,
        }
    }

    /// Load duration of `range` onto `gpu`, using the host cache if warm.
    pub fn load_duration(&self, range: OpRange, gpu: GpuId) -> SimDuration {
        let bytes = self.graph.range_param_bytes(range);
        self.transfer
            .duration_on(self.load_route(range, gpu), bytes)
    }

    /// Whether `range` is warm in some server's host cache.
    pub fn is_cached(&self, range: OpRange) -> Option<ServerId> {
        self.host_cache
            .get(&(range.start, range.end))
            .map(|e| e.server)
    }

    /// GPUs currently holding stages of our instances.
    pub fn gpus_in_use(&self) -> &std::collections::HashSet<GpuId> {
        &self.gpus_in_use
    }

    /// Devices under an outstanding preemption notice, with their
    /// revocation deadlines. Placement-aware policies exclude these.
    pub fn doomed_gpus(&self) -> Vec<(GpuId, SimTime)> {
        self.pending_revocations
            .iter()
            .map(|(&g, &t)| (g, t))
            .collect()
    }

    /// Control-plane readiness delay of acquiring `gpu` at `now`.
    pub fn provisioning_delay(&self, gpu: GpuId, now: SimTime) -> SimDuration {
        if self.provisioner.is_instant(gpu, now) {
            SimDuration::ZERO
        } else {
            self.tier.elastic_delay
        }
    }

    /// Per-stage (range, gpu) placement of an instance.
    pub fn stage_placement(&self, id: InstanceId) -> Option<Vec<(OpRange, GpuId)>> {
        self.instances
            .get(&id)
            .map(|i| i.stages.iter().map(|s| (s.range, s.gpu)).collect())
    }

    /// Pre-stages the parameters of `range` into `server`'s host memory
    /// (ServerlessLLM-style checkpoint placement). Subsequent loads of the
    /// range onto GPUs of that server run at PCIe speed. Returns whether
    /// host memory could be reserved; refreshing an existing entry always
    /// succeeds.
    pub fn prewarm_host_cache(&mut self, now: SimTime, range: OpRange, server: ServerId) -> bool {
        let key = (range.start, range.end);
        let expires = now + self.config.host_cache_ttl;
        if let Some(entry) = self.host_cache.get_mut(&key) {
            entry.expires = expires;
            return true;
        }
        let bytes = self.graph.range_param_bytes(range);
        match self.cluster.reserve_host(server, bytes) {
            Ok(lease) => {
                self.host_cache.insert(
                    key,
                    HostCacheEntry {
                        server,
                        lease,
                        expires,
                    },
                );
                true
            }
            Err(_) => false,
        }
    }

    fn select_gpus(
        &self,
        ranges: &[OpRange],
        placement: &Placement,
    ) -> Result<Vec<GpuId>, ActionError> {
        match placement {
            Placement::Explicit(gpus) => {
                if gpus.len() != ranges.len() {
                    return Err(ActionError::BadPlan(format!(
                        "{} gpus for {} stages",
                        gpus.len(),
                        ranges.len()
                    )));
                }
                let mut seen = std::collections::HashSet::new();
                for (&g, &r) in gpus.iter().zip(ranges) {
                    if self.gpus_in_use.contains(&g) || !seen.insert(g) {
                        return Err(ActionError::NoCapacity(format!("gpu {g:?} already in use")));
                    }
                    let need = self.cost.stage_mem_bytes(&self.graph, r, 1);
                    if self.cluster.free_mem(g) < need {
                        return Err(ActionError::NoCapacity(format!(
                            "gpu {g:?} lacks {need} bytes"
                        )));
                    }
                }
                Ok(gpus.clone())
            }
            Placement::FirstFit => {
                // Greedy best-fit: each stage takes the feasible GPU with
                // the most free memory. Picking barely-fitting devices
                // would collapse the joint batch capacity (Table 2's max
                // batch is memory-bound), starving admission.
                let mut chosen: Vec<GpuId> = Vec::with_capacity(ranges.len());
                for &r in ranges {
                    let need = self.cost.stage_mem_bytes(&self.graph, r, 1);
                    let found = self
                        .cluster
                        .topology()
                        .gpus()
                        .iter()
                        .map(|g| g.id)
                        .filter(|g| !self.gpus_in_use.contains(g) && !chosen.contains(g))
                        .filter(|&g| self.cluster.free_mem(g) >= need)
                        .max_by_key(|&g| (self.cluster.free_mem(g), std::cmp::Reverse(g.0)))
                        .ok_or_else(|| {
                            ActionError::NoCapacity(format!(
                                "no gpu with {} MiB free for stage",
                                need >> 20
                            ))
                        })?;
                    chosen.push(found);
                }
                Ok(chosen)
            }
        }
    }

    /// Spawns an instance at lattice level `stages`; returns its id.
    ///
    /// `prewarmed` instances come up instantly — they model the standing
    /// deployment that exists before measurement starts (static systems
    /// are always-on; only *elastic* scale-outs pay provisioning and
    /// parameter-loading delays).
    pub fn spawn(
        &mut self,
        queue: &mut EventQueue<Event>,
        stages: u32,
        placement: Placement,
        prewarmed: bool,
    ) -> Result<InstanceId, ActionError> {
        let now = queue.now();
        let ranges: Vec<OpRange> = self
            .lattice
            .level(stages)
            .ok_or(ActionError::UnknownLevel(stages))?
            .ranges
            .clone();
        let gpus = self.select_gpus(&ranges, &placement)?;

        // Joint batch capacity over all stages given each device's memory.
        let batch_cap = ranges
            .iter()
            .zip(&gpus)
            .map(|(&r, &g)| {
                self.cost
                    .max_batch(&self.graph, r, self.cluster.free_mem(g))
            })
            .min()
            .unwrap_or(0);
        if batch_cap == 0 {
            return Err(ActionError::NoCapacity(
                "batch capacity would be zero".into(),
            ));
        }

        let mut stage_runtimes = Vec::with_capacity(ranges.len());
        let mut ready = now;
        for (&r, &g) in ranges.iter().zip(&gpus) {
            let bytes = self.cost.stage_mem_bytes(&self.graph, r, batch_cap);
            let lease = self
                .cluster
                .reserve_gpu(g, bytes)
                .map_err(|e| ActionError::NoCapacity(e.to_string()))?;
            let acq = self.provisioner.acquire(g, now);
            self.ledger.record_acquire(now);
            self.gpus_in_use.insert(g);
            if !prewarmed {
                let route = self.load_route(r, g);
                if route == Route::Storage {
                    self.cold_loads += 1;
                } else {
                    self.warm_loads += 1;
                }
                let load = self
                    .transfer
                    .duration_on(route, self.graph.range_param_bytes(r));
                ready = ready.max(acq.ready_at + load);
            }
            stage_runtimes.push(StageRuntime {
                range: r,
                gpu: g,
                lease,
                busy: false,
                input_decode: VecDeque::new(),
                input_prefill: VecDeque::new(),
                decode_streak: 0,
            });
        }

        let id = self.new_instance_id();
        self.instances.insert(
            id,
            Instance {
                id,
                stages: stage_runtimes,
                state: InstanceState::Loading,
                batch_cap,
                active_requests: 0,
                ubatches: Vec::new(),
                decode_ready: VecDeque::new(),
                admit_hold: false,
                compute_multiplier: 1.0,
                spawned_at: now,
                ready_at: None,
                epoch: 0,
            },
        );
        self.reindex(id);
        self.spawns += 1;
        if !prewarmed {
            self.init_latencies
                .push(ready.saturating_since(now).as_secs_f64());
        }
        queue
            .schedule(ready, Event::InstanceReady { id, epoch: 0 })
            .expect("ready time is in the future");
        Ok(id)
    }

    /// Marks an instance draining; it is released once empty.
    pub fn retire(&mut self, queue: &mut EventQueue<Event>, id: InstanceId) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if matches!(inst.state, InstanceState::Draining) {
            return;
        }
        inst.state = InstanceState::Draining;
        let empty = inst.active_requests == 0;
        self.reindex(id);
        if empty {
            self.release_instance(queue.now(), id);
        }
    }

    fn release_instance(&mut self, now: SimTime, id: InstanceId) {
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        self.admission.apply(id, None);
        for stage in inst.stages {
            self.release_stage_device(now, stage.gpu, stage.lease, stage.range);
        }
    }

    /// Releases one stage's device: frees the lease, parks parameters in
    /// the host cache (memory permitting) and returns the GPU to the
    /// provisioner's warm pool.
    fn release_stage_device(&mut self, now: SimTime, gpu: GpuId, lease: LeaseId, range: OpRange) {
        let _ = self.cluster.release(lease);
        let server = self.cluster.topology().gpu(gpu).server;
        let bytes = self.graph.range_param_bytes(range);
        let key = (range.start, range.end);
        // Refresh or install the host-cache entry (memory permitting).
        let expires = now + self.config.host_cache_ttl;
        if let Some(entry) = self.host_cache.get_mut(&key) {
            entry.expires = expires;
        } else if let Ok(host_lease) = self.cluster.reserve_host(server, bytes) {
            self.host_cache.insert(
                key,
                HostCacheEntry {
                    server,
                    lease: host_lease,
                    expires,
                },
            );
        }
        self.provisioner.release(gpu, now);
        self.ledger.record_release(now);
        self.gpus_in_use.remove(&gpu);
    }

    fn expire_host_cache(&mut self, now: SimTime) {
        let expired: Vec<(u32, u32)> = self
            .host_cache
            .iter()
            .filter(|(_, e)| e.expires <= now)
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            if let Some(e) = self.host_cache.remove(&key) {
                let _ = self.cluster.release(e.lease);
            }
        }
    }

    /// Initiates an inflight refactor of `id` toward `plan`.
    ///
    /// The old topology keeps serving during `plan.prepare`; the switchover
    /// pauses the instance for `plan.pause`; afterwards the new topology is
    /// live with KV preserved.
    pub fn refactor(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        plan: RefactorPlan,
    ) -> Result<(), ActionError> {
        let now = queue.now();
        let inst = self
            .instances
            .get(&id)
            .ok_or(ActionError::BadInstance(id))?;
        // Crippled instances refactor too: that is the inflight recovery
        // path — surviving stages are reused, dead ones land on fresh
        // devices, and no cold respawn happens.
        if !matches!(inst.state, InstanceState::Serving | InstanceState::Crippled) {
            return Err(ActionError::BadInstance(id));
        }
        if plan.new_ranges.len() != plan.assignments.len() {
            return Err(ActionError::BadPlan(
                "assignment/range length mismatch".into(),
            ));
        }
        // Validate assignments: reuse indices in range and unique; fresh
        // GPUs unused and not duplicated.
        let mut reuse_seen = std::collections::HashSet::new();
        let mut fresh_seen = std::collections::HashSet::new();
        for a in &plan.assignments {
            match *a {
                StageAssign::Reuse { old_index } => {
                    if old_index as usize >= inst.stages.len() || !reuse_seen.insert(old_index) {
                        return Err(ActionError::BadPlan(format!("bad reuse {old_index}")));
                    }
                }
                StageAssign::Fresh { gpu } => {
                    if self.gpus_in_use.contains(&gpu)
                        || self.cluster.is_revoked(gpu)
                        || !fresh_seen.insert(gpu)
                    {
                        return Err(ActionError::NoCapacity(format!("gpu {gpu:?} unavailable")));
                    }
                }
            }
        }
        // Acquire fresh GPUs now; they provision and load during prepare.
        let mut fresh_acquired = Vec::new();
        for a in &plan.assignments {
            if let StageAssign::Fresh { gpu } = *a {
                self.provisioner.acquire(gpu, now);
                self.ledger.record_acquire(now);
                self.gpus_in_use.insert(gpu);
                fresh_acquired.push(gpu);
            }
        }
        let epoch = inst.epoch;
        let prepare = plan.prepare;
        let from_crippled = inst.state == InstanceState::Crippled;
        self.pending_refactors.insert(
            id,
            PendingRefactor {
                plan,
                fresh_acquired,
                from_crippled,
            },
        );
        let inst = self.instances.get_mut(&id).expect("checked above");
        inst.state = InstanceState::Preparing;
        if from_crippled {
            // A normal refactor keeps serving on the complete old topology
            // during preparation; a crippled rebuild has no complete
            // topology to serve on. Hold admissions until the commit
            // (which clears the hold) so requests never traverse a
            // pipeline with missing layers.
            inst.admit_hold = true;
        }
        self.reindex(id);
        queue
            .schedule(now + prepare, Event::PrepareDone { id, epoch })
            .expect("future");
        Ok(())
    }

    fn on_prepare_done(&mut self, queue: &mut EventQueue<Event>, id: InstanceId, epoch: u64) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch || inst.state != InstanceState::Preparing {
            return;
        }
        inst.state = InstanceState::Paused;
        self.reindex(id);
        let pause = self
            .pending_refactors
            .get(&id)
            .map(|p| p.plan.pause)
            .unwrap_or(SimDuration::ZERO);
        self.refactor_pause_secs += pause.as_secs_f64();
        queue
            .schedule(queue.now() + pause, Event::PauseDone { id, epoch })
            .expect("future");
    }

    fn on_pause_done(&mut self, queue: &mut EventQueue<Event>, id: InstanceId, epoch: u64) {
        let now = queue.now();
        let Some(pending) = self.pending_refactors.remove(&id) else {
            return;
        };
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        if inst.epoch != epoch || inst.state != InstanceState::Paused {
            return;
        }
        let plan = pending.plan;

        // Compute the per-stage available memory: a reused device offers
        // its current free memory plus the old lease being replaced; a
        // fresh device offers its free memory.
        let old_stages: Vec<(GpuId, LeaseId, OpRange)> = inst
            .stages
            .iter()
            .map(|s| (s.gpu, s.lease, s.range))
            .collect();
        let target_gpu = |a: &StageAssign| -> GpuId {
            match *a {
                StageAssign::Reuse { old_index } => old_stages[old_index as usize].0,
                StageAssign::Fresh { gpu } => gpu,
            }
        };
        let mut batch_cap = u32::MAX;
        for (a, &r) in plan.assignments.iter().zip(&plan.new_ranges) {
            let gpu = target_gpu(a);
            let mut avail = self.cluster.free_mem(gpu);
            if let StageAssign::Reuse { old_index } = *a {
                avail += self
                    .cluster
                    .lease(old_stages[old_index as usize].1)
                    .map(|l| l.bytes)
                    .unwrap_or(0);
            }
            batch_cap = batch_cap.min(self.cost.max_batch(&self.graph, r, avail));
        }
        if batch_cap < (inst.active_requests / 2).max(1) {
            // Abort: the new layout cannot hold a useful share of the live
            // load (background tenants grew under us, a consolidation
            // raced an admission burst, or a second revocation killed the
            // rebuild's fresh devices). Return fresh GPUs and resume the
            // old topology untouched — unless the refactor was a crippled
            // rebuild, whose "old topology" is incomplete and must stay
            // Crippled (the policy retries or cold-respawns).
            for gpu in pending.fresh_acquired {
                self.provisioner.release(gpu, now);
                self.ledger.record_release(now);
                self.gpus_in_use.remove(&gpu);
            }
            if pending.from_crippled {
                // A failed rebuild has no complete topology to fall back
                // to, and no later hook retries an abort: release the
                // survivors (their parameters park in the host cache) so
                // the policy's scaling loop rebuilds capacity through its
                // normal spawn path instead of stranding the instance —
                // and its GPUs — in Crippled forever.
                self.release_instance(now, id);
            } else {
                let inst = self.instances.get_mut(&id).expect("present");
                inst.state = InstanceState::Serving;
                self.reindex(id);
                self.resume_instance(queue, id);
            }
            return;
        }

        // Commit: release every old lease, then reserve the new layout.
        let reused: std::collections::HashSet<u32> = plan
            .assignments
            .iter()
            .filter_map(|a| match *a {
                StageAssign::Reuse { old_index } => Some(old_index),
                _ => None,
            })
            .collect();
        for (i, &(gpu, lease, range)) in old_stages.iter().enumerate() {
            if reused.contains(&(i as u32)) {
                let _ = self.cluster.release(lease);
            } else {
                // Device leaves the instance entirely.
                self.release_stage_device(now, gpu, lease, range);
            }
        }
        let mut new_stages = Vec::with_capacity(plan.new_ranges.len());
        for (a, &r) in plan.assignments.iter().zip(&plan.new_ranges) {
            let gpu = target_gpu(a);
            let bytes = self.cost.stage_mem_bytes(&self.graph, r, batch_cap);
            let lease = self
                .cluster
                .reserve_gpu(gpu, bytes)
                .expect("fit checked via batch_cap computation");
            new_stages.push(StageRuntime {
                range: r,
                gpu,
                lease,
                busy: false,
                input_decode: VecDeque::new(),
                input_prefill: VecDeque::new(),
                decode_streak: 0,
            });
        }

        let inst = self.instances.get_mut(&id).expect("present");
        inst.stages = new_stages;
        inst.batch_cap = batch_cap;
        inst.state = InstanceState::Serving;
        inst.admit_hold = false;
        inst.epoch += 1;
        let new_epoch = inst.epoch;
        let ubs = inst.ubatches.clone();
        self.reindex(id);
        self.refactors += 1;

        // Relaunch live micro-batches at stage 0 of the new topology; their
        // KV caches were kept consistent by the §6.3 protocol, so decode
        // continues from the current token positions.
        for ub_id in ubs {
            if let Some(ub) = self.ubatches.get_mut(&ub_id) {
                ub.pass_started = now;
                ub.pass_compute_secs = 0.0;
                ub.pass_comm_secs = 0.0;
                queue.schedule_now(Event::StageArrive {
                    id,
                    epoch: new_epoch,
                    stage: 0,
                    ub: ub_id,
                });
            }
        }
    }

    fn resume_instance(&mut self, queue: &mut EventQueue<Event>, id: InstanceId) {
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        let epoch = inst.epoch;
        for s in 0..inst.stages.len() {
            self.try_start_stage(queue, id, epoch, s as u16);
        }
    }

    fn try_start_stage(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        stage: u16,
    ) {
        // Iterative (not recursive): a long run of dissolved micro-batches
        // — e.g. after a revocation killed them — must not grow the stack
        // proportionally to the queue length.
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch || inst.state == InstanceState::Paused {
            return;
        }
        let s = stage as usize;
        if s >= inst.stages.len() || inst.stages[s].busy {
            return;
        }
        loop {
            let Some((ub_id, _)) = inst.stages[s].pop_next() else {
                return;
            };
            let Some(ub) = self.ubatches.get_mut(&ub_id) else {
                // Dissolved micro-batch: skip and try the next one.
                continue;
            };
            let gpu = inst.stages[s].gpu;
            let range = inst.stages[s].range;
            let mult = inst.compute_multiplier;
            inst.stages[s].busy = true;
            let base = self.cost.stage_compute(&self.graph, range, ub.pass_tokens);
            let slowdown = 1.0 + self.config.interference_coeff * self.cluster.load(gpu).bg_sm;
            let dur = base.mul_f64(slowdown * mult);
            ub.pass_compute_secs += dur.as_secs_f64();
            self.ledger.record_busy(gpu.0, dur);
            queue
                .schedule_after(
                    dur,
                    Event::StageDone {
                        id,
                        epoch,
                        stage,
                        ub: ub_id,
                    },
                )
                .expect("future");
            return;
        }
    }

    fn on_stage_arrive(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        stage: u16,
        ub: UbatchId,
    ) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch {
            return;
        }
        let s = stage as usize;
        if s >= inst.stages.len() {
            return;
        }
        // Two-class scheduling: decode passes are latency-critical and
        // preferred, but the streak limit in `pop_next` guarantees prefill
        // progress (without it either class convoys behind the other).
        let is_decode = self
            .ubatches
            .get(&ub)
            .is_some_and(|u| u.phase == Phase::Decode);
        if is_decode {
            inst.stages[s].input_decode.push_back(ub);
        } else {
            inst.stages[s].input_prefill.push_back(ub);
        }
        self.try_start_stage(queue, id, epoch, stage);
    }

    fn on_stage_done(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        stage: u16,
        ub_id: UbatchId,
    ) {
        let now = queue.now();
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch {
            return;
        }
        let s = stage as usize;
        inst.stages[s].busy = false;
        let stage_count = inst.stages.len();
        let last = s + 1 == stage_count;
        if !last {
            // Forward over the inter-stage hop.
            let src = inst.stages[s].gpu;
            let dst = inst.stages[s + 1].gpu;
            let boundary = OpId(inst.stages[s].range.end - 1);
            let tokens = self
                .ubatches
                .get(&ub_id)
                .map(|u| u.pass_tokens)
                .unwrap_or(0);
            let bytes = match self.config.batch_scaling {
                // Eq. (3): profiled bytes at b_base, scaled sub-linearly to
                // the actual pass batch.
                Some(scaling) => {
                    let base_tokens = scaling.b_base.max(1.0);
                    let s_base = self
                        .cost
                        .hop_bytes(&self.graph, boundary, base_tokens as u64)
                        as f64;
                    scaling.scale(s_base, tokens as f64) as u64
                }
                None => self.cost.hop_bytes(&self.graph, boundary, tokens),
            };
            let hop = self.transfer.duration(
                &self.cluster,
                Endpoint::Gpu(src),
                Endpoint::Gpu(dst),
                bytes,
            );
            if let Some(ub) = self.ubatches.get_mut(&ub_id) {
                ub.pass_comm_secs += hop.as_secs_f64();
            }
            queue
                .schedule_after(
                    hop,
                    Event::StageArrive {
                        id,
                        epoch,
                        stage: stage + 1,
                        ub: ub_id,
                    },
                )
                .expect("future");
        } else {
            self.finish_pass(queue, id, epoch, ub_id, now);
        }
        self.try_start_stage(queue, id, epoch, stage);
    }

    fn finish_pass(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        ub_id: UbatchId,
        now: SimTime,
    ) {
        let Some(mut ub) = self.ubatches.remove(&ub_id) else {
            return;
        };
        let generative = self.graph.config().generative;
        let mut completed: Vec<RequestId> = Vec::new();

        // Attribute the pass's compute/comm to every member.
        for &rid in &ub.members {
            let r = &mut self.reqs[rid.0 as usize];
            r.exec_secs += ub.pass_compute_secs;
            r.comm_secs += ub.pass_comm_secs;
        }

        // Chunked prefill: more prompt tokens to process → immediately
        // re-enter stage 0 with the next chunk.
        if ub.phase == Phase::Prefill && ub.prefill_remaining > 0 {
            let chunk = self.config.prefill_token_cap.max(1);
            ub.pass_tokens = ub.prefill_remaining.min(chunk);
            ub.prefill_remaining -= ub.pass_tokens;
            ub.pass_started = now;
            ub.pass_compute_secs = 0.0;
            ub.pass_comm_secs = 0.0;
            self.ubatches.insert(ub_id, ub);
            queue.schedule_now(Event::StageArrive {
                id,
                epoch,
                stage: 0,
                ub: ub_id,
            });
            return;
        }

        // Survivors return to the decode-ready pool; the dispatcher below
        // re-coalesces them into full micro-batches (continuous batching).
        let mut survivors: Vec<RequestId> = Vec::new();
        match ub.phase {
            Phase::Prefill => {
                for &rid in &ub.members {
                    let r = &mut self.reqs[rid.0 as usize];
                    r.prefill_done = Some(now);
                }
                if generative {
                    survivors.append(&mut ub.members);
                } else {
                    completed.append(&mut ub.members);
                }
            }
            Phase::Decode => {
                for &rid in &ub.members {
                    let r = &mut self.reqs[rid.0 as usize];
                    r.generated += 1;
                    if r.generated >= r.req.output_tokens {
                        completed.push(rid);
                    } else {
                        survivors.push(rid);
                    }
                }
            }
        }

        for rid in completed {
            self.complete_request(now, id, rid);
        }

        // The micro-batch always dissolves; members regroup at launch.
        let _ = epoch;
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.ubatches.retain(|&u| u != ub_id);
            inst.decode_ready.extend(survivors);
        }
        self.launch_decode(queue, id);

        // Capacity freed → try to admit more traffic; drained instances
        // may now release.
        let release = self
            .instances
            .get(&id)
            .map(|i| i.state == InstanceState::Draining && i.active_requests == 0)
            .unwrap_or(false);
        if release {
            self.release_instance(now, id);
        }
        self.drain_gateway(queue);
    }

    /// The continuous-batching dispatcher: launches decode micro-batches
    /// from the ready pool while the pipeline has free slots.
    ///
    /// Launch policy: keep a *small* number of large micro-batches in
    /// flight rather than many small ones — decode passes pay the
    /// weight-read floor regardless of batch size, so splitting the active
    /// set across extra passes wastes HBM bandwidth (Table 2's batching
    /// argument). The slot budget is about half the pipeline depth (prefill
    /// chunks fill the remaining stages), and a launch waits until the
    /// ready pool reaches its fair share of the active set unless the pipe
    /// would otherwise go idle.
    fn launch_decode(&mut self, queue: &mut EventQueue<Event>, id: InstanceId) {
        loop {
            let Some(inst) = self.instances.get_mut(&id) else {
                return;
            };
            if inst.state == InstanceState::Paused {
                return;
            }
            let limit = (inst.stages.len() / 2 + 1).max(2);
            if inst.decode_ready.is_empty() {
                return;
            }
            let decode_in_flight = inst
                .ubatches
                .iter()
                .filter(|u| {
                    self.ubatches
                        .get(u)
                        .is_some_and(|ub| ub.phase == Phase::Decode)
                })
                .count();
            if decode_in_flight >= limit {
                return;
            }
            // Fair-share batching delay: wait for the pool to accumulate
            // ~active/limit members before launching, unless no decode is
            // in flight at all (never idle the pipe for batching).
            let target = ((inst.active_requests as usize) / limit)
                .clamp(1, self.config.ubatch_size as usize);
            if decode_in_flight > 0 && inst.decode_ready.len() < target {
                return;
            }
            let take = (self.config.ubatch_size as usize).min(inst.decode_ready.len());
            let members: Vec<RequestId> = inst.decode_ready.drain(..take).collect();
            let epoch = inst.epoch;
            let ub_id = {
                self.next_ubatch += 1;
                UbatchId(self.next_ubatch)
            };
            let inst = self.instances.get_mut(&id).expect("checked above");
            inst.ubatches.push(ub_id);
            let tokens = members.len() as u64;
            self.ubatches.insert(
                ub_id,
                MicroBatch {
                    id: ub_id,
                    members,
                    phase: Phase::Decode,
                    pass_tokens: tokens,
                    prefill_remaining: 0,
                    pass_started: queue.now(),
                    pass_compute_secs: 0.0,
                    pass_comm_secs: 0.0,
                },
            );
            queue.schedule_now(Event::StageArrive {
                id,
                epoch,
                stage: 0,
                ub: ub_id,
            });
        }
    }

    fn complete_request(&mut self, now: SimTime, inst_id: InstanceId, rid: RequestId) {
        let r = &mut self.reqs[rid.0 as usize];
        if r.done {
            return;
        }
        r.done = true;
        let admitted = r.admitted.unwrap_or(r.req.arrival);
        let latency = now.saturating_since(r.req.arrival).as_secs_f64();
        let exec = r.exec_secs.min(latency);
        let comm = r.comm_secs.min(latency - exec);
        let queue_secs = (latency - exec - comm).max(0.0);
        let prefill = r
            .prefill_done
            .map(|p| p.saturating_since(admitted))
            .unwrap_or(SimDuration::ZERO);
        self.outcomes.record(RequestOutcome {
            id: rid.0,
            arrival: r.req.arrival,
            completion: now,
            queue: SimDuration::from_secs_f64(queue_secs),
            execution: SimDuration::from_secs_f64(exec),
            communication: SimDuration::from_secs_f64(comm),
            prefill,
            slo: r.req.slo,
            prompt_tokens: r.req.prompt_tokens,
            output_tokens: r.req.output_tokens,
        });
        if let Some(inst) = self.instances.get_mut(&inst_id) {
            inst.active_requests = inst.active_requests.saturating_sub(1);
            self.reindex(inst_id);
        }
    }

    /// Admits queued requests to instances with capacity and launches
    /// prefill micro-batches.
    ///
    /// Selection is least-loaded-first with id tie-break. The default
    /// [`AdmissionMode::Indexed`] path reads the incrementally maintained
    /// [`AdmissionIndex`] — O(log instances) per admission; the retained
    /// [`AdmissionMode::NaiveScan`] reference rescans every instance per
    /// request. Both paths pick bit-identical targets (the index keys on
    /// the load factor's bit pattern), so reports never depend on the
    /// mode — only wall-clock does.
    pub fn drain_gateway(&mut self, queue: &mut EventQueue<Event>) {
        #[cfg(debug_assertions)]
        self.debug_validate_admission_index();
        let now = queue.now();
        // Per-instance groups formed this round (BTreeMap: launch order
        // must not depend on hash order).
        let mut formed: BTreeMap<InstanceId, Vec<RequestId>> = BTreeMap::new();
        while let Some(&rid) = self.gateway.front() {
            // Least-loaded admissible instance.
            let target = match self.config.admission {
                AdmissionMode::Indexed => self.admission.best(),
                AdmissionMode::NaiveScan => self
                    .instances
                    .values()
                    .filter(|i| i.can_admit())
                    .min_by(|a, b| {
                        a.load_factor()
                            .partial_cmp(&b.load_factor())
                            .unwrap()
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|i| i.id),
            };
            let Some(target) = target else {
                break;
            };
            self.gateway.pop_front();
            let r = &mut self.reqs[rid.0 as usize];
            r.admitted = Some(now);
            let inst = self.instances.get_mut(&target).expect("selected above");
            inst.active_requests += 1;
            self.reindex(target);
            formed.entry(target).or_default().push(rid);
        }
        // Launch prefill micro-batches per instance, respecting the
        // prefill batch/token caps.
        for (inst_id, rids) in formed {
            let epoch = match self.instances.get(&inst_id) {
                Some(i) => i.epoch,
                None => continue,
            };
            let mut group: Vec<RequestId> = Vec::new();
            let mut tokens = 0u64;
            let launch = |state: &mut EngineState,
                          queue: &mut EventQueue<Event>,
                          group: &mut Vec<RequestId>,
                          tokens: &mut u64| {
                if group.is_empty() {
                    return;
                }
                let ub_id = state.new_ubatch_id();
                let members = std::mem::take(group);
                let chunk = state.config.prefill_token_cap.max(1);
                let first = (*tokens).min(chunk);
                state.ubatches.insert(
                    ub_id,
                    MicroBatch {
                        id: ub_id,
                        members,
                        phase: Phase::Prefill,
                        pass_tokens: first,
                        prefill_remaining: *tokens - first,
                        pass_started: queue.now(),
                        pass_compute_secs: 0.0,
                        pass_comm_secs: 0.0,
                    },
                );
                if let Some(inst) = state.instances.get_mut(&inst_id) {
                    inst.ubatches.push(ub_id);
                }
                queue.schedule_now(Event::StageArrive {
                    id: inst_id,
                    epoch,
                    stage: 0,
                    ub: ub_id,
                });
                *tokens = 0;
            };
            for rid in rids {
                let prompt = u64::from(self.reqs[rid.0 as usize].req.prompt_tokens);
                if group.len() as u32 >= self.config.prefill_batch {
                    launch(self, queue, &mut group, &mut tokens);
                }
                group.push(rid);
                tokens += prompt;
            }
            launch(self, queue, &mut group, &mut tokens);
        }
    }

    /// Online arrival statistics: (rate, cv, gradient).
    pub fn monitor(&self, now: SimTime) -> (f64, f64, f64) {
        (
            self.cv_est.rate(now),
            self.cv_est.cv(),
            self.cv_est.rate_gradient(now),
        )
    }

    /// Replaces the always-on GPU set (policy initialisation).
    pub fn set_always_on(&mut self, gpus: Vec<GpuId>) {
        self.provisioner = Provisioner::new(self.tier, gpus);
    }

    /// Sets an instance's compute multiplier (multiplexing interference).
    pub fn set_compute_multiplier(&mut self, id: InstanceId, mult: f64) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.compute_multiplier = mult.max(1.0);
        }
    }

    /// Holds or releases admissions to an instance (drain-to-consolidate).
    pub fn set_admit_hold(&mut self, id: InstanceId, hold: bool) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.admit_hold = hold;
            self.reindex(id);
        }
    }

    /// Resolves the `rank`-th busiest server by serving-leased bytes
    /// (ties toward the lowest id), skipping fully revoked servers.
    fn hottest_server(&self, rank: u32) -> Option<ServerId> {
        let topo = self.cluster.topology();
        let mut servers: Vec<(u64, ServerId)> = (0..topo.server_count() as u32)
            .map(ServerId)
            .filter(|&s| topo.gpus_on(s).iter().any(|&g| !self.cluster.is_revoked(g)))
            .map(|s| {
                let bytes: u64 = topo
                    .gpus_on(s)
                    .iter()
                    .map(|&g| self.cluster.load(g).serving_mem)
                    .sum();
                (bytes, s)
            })
            .collect();
        servers.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        servers.get(rank as usize).map(|&(_, s)| s)
    }

    /// Executes a capacity revocation: invalidates cluster state, evicts
    /// the devices from the provisioner, kills in-flight micro-batches on
    /// dead stages (epoch-guarded, so their stale events no-op) and
    /// replays the destroyed requests at the gateway front. Returns the
    /// notice handed to the policy.
    fn apply_revocation(
        &mut self,
        queue: &mut EventQueue<Event>,
        gpus: &[GpuId],
    ) -> DisruptionNotice {
        let now = queue.now();
        let mut revoked: Vec<GpuId> = Vec::new();
        for &g in gpus {
            if self.cluster.is_revoked(g) {
                continue;
            }
            self.cluster.revoke_gpu(g);
            revoked.push(g);
            if self.gpus_in_use.remove(&g) {
                self.ledger.record_release(now);
            }
            self.provisioner.evict(g);
            self.pending_revocations.remove(&g);
        }
        if revoked.is_empty() {
            return DisruptionNotice {
                revoked_gpus: revoked,
                crippled: Vec::new(),
            };
        }

        // A fully revoked server takes its host-memory parameter cache
        // down with it.
        let dead_servers: BTreeSet<ServerId> = revoked
            .iter()
            .map(|&g| self.cluster.topology().gpu(g).server)
            .filter(|&s| {
                self.cluster
                    .topology()
                    .gpus_on(s)
                    .iter()
                    .all(|&g| self.cluster.is_revoked(g))
            })
            .collect();
        for &s in &dead_servers {
            self.cluster.revoke_host(s);
        }
        self.host_cache
            .retain(|_, e| !dead_servers.contains(&e.server));

        // A pending refactor whose *plan* targets a revoked device is
        // void — even on instances that are not wounded. Cancel it
        // outright: leaving the stale `Fresh` assignment in place would
        // let a capacity *restore* before PauseDone commit a stage onto a
        // device nobody tracks as in use. Remaining fresh acquisitions
        // return to the pool (revoked ones were already evicted above).
        let cancelled: Vec<InstanceId> = self
            .pending_refactors
            .iter()
            .filter(|(_, p)| {
                p.plan
                    .assignments
                    .iter()
                    .any(|a| matches!(a, StageAssign::Fresh { gpu } if revoked.contains(gpu)))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in cancelled {
            let pending = self.pending_refactors.remove(&id).expect("listed above");
            for g in pending.fresh_acquired {
                if revoked.contains(&g) {
                    continue;
                }
                self.provisioner.release(g, now);
                if self.gpus_in_use.remove(&g) {
                    self.ledger.record_release(now);
                }
            }
            let Some(inst) = self.instances.get_mut(&id) else {
                continue;
            };
            if inst.stages.iter().any(|s| revoked.contains(&s.gpu)) {
                // The instance itself is wounded too: the wound loop
                // below owns its state transition.
                continue;
            }
            if pending.from_crippled {
                // A cancelled rebuild leaves no complete topology and no
                // retry hook: release the survivors so the policy's
                // scaling loop replaces the capacity.
                self.release_instance(now, id);
            } else {
                // The complete old topology kept serving during
                // preparation; resume it. The already-scheduled
                // PrepareDone/PauseDone events no-op (state mismatch /
                // missing pending entry).
                inst.state = InstanceState::Serving;
                self.reindex(id);
                self.resume_instance(queue, id);
                self.launch_decode(queue, id);
            }
        }

        // Wound every instance with a stage on a revoked device.
        let wounded: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|(_, i)| i.stages.iter().any(|s| revoked.contains(&s.gpu)))
            .map(|(&id, _)| id)
            .collect();
        let mut crippled = Vec::new();
        for id in wounded {
            // A refactor in flight toward a now-dead device is void: its
            // fresh acquisitions return to the pool.
            if let Some(pending) = self.pending_refactors.remove(&id) {
                for g in pending.fresh_acquired {
                    self.provisioner.release(g, now);
                    if self.gpus_in_use.remove(&g) {
                        self.ledger.record_release(now);
                    }
                }
            }
            let inst = self.instances.get_mut(&id).expect("listed above");
            inst.epoch += 1; // stale StageArrive/StageDone/Prepare/Pause events drop
            let original = inst.stages.len() as u32;
            let prior_state = inst.state;

            // Collect the requests whose progress dies with the stages:
            // everything admitted to this instance (KV spans all stages,
            // losing one loses the layers it held).
            let mut rids: Vec<RequestId> = inst.decode_ready.drain(..).collect();
            let mut lost: u64 = 0;
            for ub_id in std::mem::take(&mut inst.ubatches) {
                if let Some(ub) = self.ubatches.remove(&ub_id) {
                    if ub.phase == Phase::Prefill {
                        // Prompt tokens already prefilled by earlier chunks.
                        let total: u64 = ub
                            .members
                            .iter()
                            .map(|r| u64::from(self.reqs[r.0 as usize].req.prompt_tokens))
                            .sum();
                        lost += total.saturating_sub(ub.prefill_remaining + ub.pass_tokens);
                    }
                    rids.extend(ub.members);
                }
            }
            rids.sort_unstable();
            rids.dedup();
            for &rid in &rids {
                let r = &mut self.reqs[rid.0 as usize];
                if r.prefill_done.is_some() {
                    lost += u64::from(r.req.prompt_tokens);
                }
                lost += u64::from(r.generated);
                r.generated = 0;
                r.prefill_done = None;
                r.admitted = None;
            }
            // Replay at the gateway *front*, oldest first: these are the
            // system's oldest outstanding requests.
            for &rid in rids.iter().rev() {
                self.gateway.push_front(rid);
            }
            inst.active_requests = 0;

            self.disruptions.record_aborted(rids.len() as u32);
            self.disruptions.record_replayed(rids.len() as u32);
            self.disruptions.record_tokens_lost(lost);

            match prior_state {
                InstanceState::Loading => {
                    // Parameters never finished loading, so the surviving
                    // devices hold nothing worth keeping: the spawn is a
                    // total loss. Release survivors raw — no host-cache
                    // parking of parameters that were never resident — and
                    // do not report the instance as crippled (there is
                    // nothing to rebuild around; the policy's scaling loop
                    // re-spawns through its normal path).
                    let inst = self.instances.remove(&id).expect("listed above");
                    for s in inst.stages {
                        if revoked.contains(&s.gpu) {
                            continue;
                        }
                        let _ = self.cluster.release(s.lease);
                        self.provisioner.release(s.gpu, now);
                        if self.gpus_in_use.remove(&s.gpu) {
                            self.ledger.record_release(now);
                        }
                    }
                }
                InstanceState::Draining => {
                    // The policy already decided to shed this instance;
                    // the revocation merely finishes the job. Complete the
                    // retirement (survivors park their parameters) instead
                    // of resurrecting capacity the policy did not want.
                    let inst = self.instances.get_mut(&id).expect("listed above");
                    inst.stages.retain(|s| !revoked.contains(&s.gpu));
                    self.release_instance(now, id);
                }
                _ => {
                    // Dead stages vanish (their leases were invalidated by
                    // the cluster); survivors keep devices and parameters
                    // but clear transient pass state.
                    let inst = self.instances.get_mut(&id).expect("listed above");
                    let stages = std::mem::take(&mut inst.stages);
                    inst.stages = stages
                        .into_iter()
                        .filter(|s| !revoked.contains(&s.gpu))
                        .map(|mut s| {
                            s.busy = false;
                            s.input_decode.clear();
                            s.input_prefill.clear();
                            s.decode_streak = 0;
                            s
                        })
                        .collect();
                    inst.state = InstanceState::Crippled;
                    crippled.push(CrippledInstance {
                        id,
                        original_stages: original,
                        surviving_stages: self.instances[&id].stages.len() as u32,
                    });
                }
            }
            // Every arm above changed admissibility (active_requests
            // cleared, state moved or the instance vanished): re-key.
            self.reindex(id);
        }
        self.disruptions
            .record_revocation(now, revoked.len() as u32);
        DisruptionNotice {
            revoked_gpus: revoked,
            crippled,
        }
    }

    /// Restores previously revoked devices to the pool (cold elastic; the
    /// policy re-acquires them through its normal scaling path).
    fn restore_capacity(&mut self, gpus: &[GpuId]) {
        let mut restored = 0u32;
        for &g in gpus {
            if self.cluster.is_revoked(g) {
                self.cluster.restore_gpu(g);
                restored += 1;
            }
        }
        self.disruptions.record_restored(restored);
    }

    /// Closes open recovery windows once the deployment is back to full
    /// service: nothing mid-lifecycle (loading / preparing / paused /
    /// crippled) and at least one instance serving.
    fn maybe_close_recoveries(&mut self, now: SimTime) {
        if !self.disruptions.has_open() {
            return;
        }
        let any_serving = self
            .instances
            .values()
            .any(|i| i.state == InstanceState::Serving);
        let in_flux = self.instances.values().any(|i| {
            matches!(
                i.state,
                InstanceState::Loading
                    | InstanceState::Preparing
                    | InstanceState::Paused
                    | InstanceState::Crippled
            )
        });
        if any_serving && !in_flux {
            self.disruptions.close_open(now);
        }
    }
}

/// The engine: state + policy, driving a [`Scenario`] to completion.
pub struct Engine {
    state: EngineState,
    policy: Option<Box<dyn ControlPolicy>>,
    events_seen: u64,
    truncated: bool,
}

/// Policy-facing context: state queries plus actions.
pub struct Ctx<'a> {
    /// Mutable engine state.
    pub state: &'a mut EngineState,
    /// The event queue (for time and scheduling through actions).
    pub queue: &'a mut EventQueue<Event>,
}

impl<'a> Ctx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Gateway queue length.
    pub fn queue_len(&self) -> usize {
        self.state.queue_len()
    }

    /// Online (rate, cv, gradient) from the arrival monitor.
    pub fn monitor(&self) -> (f64, f64, f64) {
        self.state.monitor(self.queue.now())
    }

    /// Instance snapshots.
    pub fn instances(&self) -> Vec<InstanceSnapshot> {
        self.state.snapshots()
    }

    /// Spawns an instance through the elastic path (provisioning +
    /// parameter-loading delays apply).
    pub fn spawn(&mut self, stages: u32, placement: Placement) -> Result<InstanceId, ActionError> {
        self.state.spawn(self.queue, stages, placement, false)
    }

    /// Spawns a standing instance that is ready immediately (the
    /// deployment that exists before measurement starts).
    pub fn spawn_prewarmed(
        &mut self,
        stages: u32,
        placement: Placement,
    ) -> Result<InstanceId, ActionError> {
        self.state.spawn(self.queue, stages, placement, true)
    }

    /// Retires an instance (drain then release).
    pub fn retire(&mut self, id: InstanceId) {
        self.state.retire(self.queue, id)
    }

    /// Starts an inflight refactor.
    pub fn refactor(&mut self, id: InstanceId, plan: RefactorPlan) -> Result<(), ActionError> {
        self.state.refactor(self.queue, id, plan)
    }

    /// Declares the always-on GPU tier (call once from `init`).
    pub fn set_always_on(&mut self, gpus: Vec<GpuId>) {
        self.state.set_always_on(gpus)
    }

    /// Sets multiplexing interference on an instance.
    pub fn set_compute_multiplier(&mut self, id: InstanceId, mult: f64) {
        self.state.set_compute_multiplier(id, mult)
    }

    /// Holds or releases admissions to an instance.
    pub fn set_admit_hold(&mut self, id: InstanceId, hold: bool) {
        self.state.set_admit_hold(id, hold)
    }

    /// Pre-stages parameters into a server's host memory tier.
    pub fn prewarm_host_cache(&mut self, range: flexpipe_model::OpRange, server: ServerId) -> bool {
        let now = self.queue.now();
        self.state.prewarm_host_cache(now, range, server)
    }

    /// Devices under an outstanding preemption notice with their
    /// revocation deadlines (avoid these when placing).
    pub fn doomed_gpus(&self) -> Vec<(GpuId, SimTime)> {
        self.state.doomed_gpus()
    }

    /// Devices currently revoked from the cluster.
    pub fn revoked_gpus(&self) -> Vec<GpuId> {
        self.state.cluster().revoked_gpus()
    }
}

impl Engine {
    /// Builds an engine for `scenario` with the given model artefacts and
    /// policy.
    pub fn new(
        scenario: Scenario,
        graph: Arc<ModelGraph>,
        lattice: Arc<GranularityLattice>,
        policy: Box<dyn ControlPolicy>,
    ) -> Self {
        let rng = SimRng::seed(scenario.seed);
        let mut cluster = Cluster::new(scenario.cluster.clone());
        let mut bg = BackgroundTenants::new(scenario.background, rng.stream_named("background"));
        bg.populate(&mut cluster);
        let transfer = TransferEngine::new(scenario.cluster.links);
        let reqs = scenario
            .workload
            .requests
            .iter()
            .map(|&req| ReqRuntime {
                req,
                admitted: None,
                prefill_done: None,
                generated: 0,
                exec_secs: 0.0,
                comm_secs: 0.0,
                done: false,
            })
            .collect();
        let state = EngineState {
            config: scenario.config,
            graph,
            cost: scenario.cost,
            lattice,
            cluster,
            transfer,
            provisioner: Provisioner::new(scenario.tier, Vec::new()),
            tier: scenario.tier,
            bg,
            workload: Arc::new(scenario.workload.requests),
            gateway: VecDeque::new(),
            reqs,
            instances: BTreeMap::new(),
            admission: AdmissionIndex::new(),
            ubatches: HashMap::new(),
            pending_refactors: HashMap::new(),
            host_cache: HashMap::new(),
            gpus_in_use: std::collections::HashSet::new(),
            script: scenario.disruptions.sorted(),
            pending_revocations: BTreeMap::new(),
            next_instance: 0,
            next_ubatch: 0,
            horizon: scenario.horizon,
            disruptions: DisruptionLedger::new(),
            outcomes: OutcomeLog::new(),
            ledger: UtilizationLedger::new(),
            queue_timeline: Timeline::new(),
            inflight_timeline: Timeline::new(),
            cv_est: CvEstimator::new(scenario.config.monitor_window),
            refactors: 0,
            refactor_pause_secs: 0.0,
            spawns: 0,
            init_latencies: Vec::new(),
            warm_loads: 0,
            cold_loads: 0,
        };
        Engine {
            state,
            policy: Some(policy),
            events_seen: 0,
            truncated: false,
        }
    }

    fn with_policy(
        &mut self,
        queue: &mut EventQueue<Event>,
        f: impl FnOnce(&mut dyn ControlPolicy, &mut Ctx<'_>),
    ) {
        let mut policy = self.policy.take().expect("policy present");
        {
            let mut ctx = Ctx {
                state: &mut self.state,
                queue,
            };
            f(policy.as_mut(), &mut ctx);
        }
        self.policy = Some(policy);
    }

    /// Fires scripted disruption `idx`.
    fn on_disruption_event(&mut self, queue: &mut EventQueue<Event>, idx: usize) {
        let Some(event) = self.state.script.events.get(idx).cloned() else {
            return;
        };
        match event.kind {
            Disruption::GpuFail { gpu } => {
                // Hardware loss: no grace, no notice.
                self.execute_revocation(queue, vec![GpuId(gpu)]);
            }
            Disruption::ServerPreempt { server, grace_secs } => {
                let gpus = self.server_gpus(ServerId(server));
                self.preempt(queue, gpus, SimDuration::from_secs_f64(grace_secs.max(0.0)));
            }
            Disruption::HotServerPreempt { rank, grace_secs } => {
                let Some(server) = self.state.hottest_server(rank) else {
                    return;
                };
                let gpus = self.server_gpus(server);
                self.preempt(queue, gpus, SimDuration::from_secs_f64(grace_secs.max(0.0)));
            }
            Disruption::CapacityReturn { gpus, servers } => {
                let mut targets: Vec<GpuId> = gpus.into_iter().map(GpuId).collect();
                for s in servers {
                    targets.extend(self.server_gpus(ServerId(s)));
                }
                targets.sort_unstable();
                targets.dedup();
                // Routed through the queue like revocations, so restores
                // interleave deterministically with same-instant events.
                queue.schedule_now(Event::Restore { gpus: targets });
            }
            Disruption::RateSurge { .. } => {}
        }
    }

    fn server_gpus(&self, server: ServerId) -> Vec<GpuId> {
        self.state.cluster.topology().gpus_on(server).to_vec()
    }

    /// Announces a preemption: with grace, the policy gets the notice now
    /// and the revocation fires at the deadline; without, it fires
    /// immediately.
    fn preempt(&mut self, queue: &mut EventQueue<Event>, gpus: Vec<GpuId>, grace: SimDuration) {
        let gpus: Vec<GpuId> = gpus
            .into_iter()
            .filter(|&g| !self.state.cluster.is_revoked(g))
            .collect();
        if gpus.is_empty() {
            return;
        }
        if grace == SimDuration::ZERO {
            self.execute_revocation(queue, gpus);
            return;
        }
        let deadline = queue.now() + grace;
        for &g in &gpus {
            self.state.pending_revocations.insert(g, deadline);
        }
        queue
            .schedule(deadline, Event::Revoke { gpus: gpus.clone() })
            .expect("future");
        self.with_policy(queue, |p, ctx| p.on_revoke_notice(ctx, &gpus, deadline));
    }

    /// Revokes capacity now and lets the policy rebuild.
    fn execute_revocation(&mut self, queue: &mut EventQueue<Event>, gpus: Vec<GpuId>) {
        let notice = self.state.apply_revocation(queue, &gpus);
        if notice.revoked_gpus.is_empty() {
            return;
        }
        self.with_policy(queue, |p, ctx| p.on_disruption(ctx, &notice));
        self.state.drain_gateway(queue);
        self.state.maybe_close_recoveries(queue.now());
    }

    /// Runs the scenario to its horizon and produces the report.
    pub fn run(mut self) -> RunReport {
        let mut queue: EventQueue<Event> = EventQueue::new();
        // Policy initialisation (deploys the initial configuration).
        self.with_policy(&mut queue, |p, ctx| p.init(ctx));
        // Seed the event streams.
        if !self.state.workload.is_empty() {
            let t = self.state.workload[0].arrival;
            queue
                .schedule(t, Event::Arrival(0))
                .expect("arrival in future");
        }
        queue.schedule_now(Event::ControlTick);
        queue
            .schedule_after(self.state.config.churn_step, Event::Churn)
            .expect("future");
        // Scripted disruptions (already time-sorted). Rate surges are a
        // workload-generation concern and never enter the queue.
        for (i, ev) in self.state.script.events.iter().enumerate() {
            if matches!(ev.kind, Disruption::RateSurge { .. }) {
                continue;
            }
            let at = SimTime::from_secs_f64(ev.at_secs.max(0.0));
            if at < self.state.horizon {
                queue
                    .schedule(at, Event::Disruption(i as u32))
                    .expect("script starts at or after t=0");
            }
        }

        let horizon = self.state.horizon;
        let max_events = self.state.config.max_events;
        let (outcome, steps) = flexpipe_sim::run(&mut self, &mut queue, horizon, max_events);
        self.events_seen = steps;
        // The step budget is a first-class watchdog, not an assertion: a
        // fleet sweep must be able to bound runaway cells and report them
        // as truncated rather than abort the whole grid.
        self.truncated = matches!(outcome, RunOutcome::StepBudgetExhausted);
        self.into_report(horizon)
    }

    fn into_report(self, horizon: SimTime) -> RunReport {
        let truncated = self.truncated;
        let mut st = self.state;
        st.disruptions.finalize(horizon);
        let span = horizon.as_secs_f64();
        let summary = st.outcomes.summarize(span);
        let policy_name = self
            .policy
            .as_ref()
            .map(|p| p.name().to_string())
            .unwrap_or_default();
        RunReport {
            policy: policy_name,
            horizon_secs: span,
            arrived: st.workload.len(),
            summary,
            outcomes: st.outcomes,
            queue_timeline: st.queue_timeline,
            inflight_timeline: st.inflight_timeline,
            fleet_size: st.cluster.topology().gpu_count() as u32,
            ledger: st.ledger,
            refactors: st.refactors,
            refactor_pause_secs: st.refactor_pause_secs,
            spawns: st.spawns,
            mean_init_secs: if st.init_latencies.is_empty() {
                0.0
            } else {
                st.init_latencies.iter().sum::<f64>() / st.init_latencies.len() as f64
            },
            mean_alloc_wait_secs: st.provisioner.mean_wait_secs(),
            warm_loads: st.warm_loads,
            cold_loads: st.cold_loads,
            disruptions: st.disruptions.into_stats(),
            events: self.events_seen,
            truncated,
        }
    }
}

impl World for Engine {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::Arrival(i) => {
                let i = i as usize;
                let rid = RequestId(i as u64);
                self.state.cv_est.record(now);
                self.state.gateway.push_back(rid);
                if i + 1 < self.state.workload.len() {
                    let t = self.state.workload[i + 1].arrival;
                    queue
                        .schedule(t.max(now), Event::Arrival(i as u32 + 1))
                        .expect("sorted arrivals");
                }
                self.state.drain_gateway(queue);
                self.with_policy(queue, |p, ctx| p.on_arrival(ctx));
            }
            Event::ControlTick => {
                self.state.cv_est.evict(now);
                self.state
                    .queue_timeline
                    .record(now, self.state.gateway.len() as f64);
                let in_system: u32 = self
                    .state
                    .instances
                    .values()
                    .map(|i| i.active_requests)
                    .sum::<u32>()
                    + self.state.gateway.len() as u32;
                self.state
                    .inflight_timeline
                    .record(now, f64::from(in_system));
                self.state.expire_host_cache(now);
                self.state.provisioner.expire_warm(now);
                self.with_policy(queue, |p, ctx| p.on_tick(ctx));
                self.state.drain_gateway(queue);
                self.state.maybe_close_recoveries(now);
                let next = now + self.state.config.control_interval;
                if next < self.state.horizon {
                    queue.schedule(next, Event::ControlTick).expect("future");
                }
            }
            Event::Churn => {
                let step = self.state.config.churn_step;
                let mut bg = self.state.bg.clone();
                bg.step(&mut self.state.cluster, step);
                self.state.bg = bg;
                let next = now + step;
                if next < self.state.horizon {
                    queue.schedule(next, Event::Churn).expect("future");
                }
            }
            Event::InstanceReady { id, epoch } => {
                let ready = {
                    let Some(inst) = self.state.instances.get_mut(&id) else {
                        return;
                    };
                    if inst.epoch != epoch || inst.state != InstanceState::Loading {
                        false
                    } else {
                        inst.state = InstanceState::Serving;
                        inst.ready_at = Some(now);
                        true
                    }
                };
                if ready {
                    self.state.reindex(id);
                    self.state.drain_gateway(queue);
                    self.with_policy(queue, |p, ctx| p.on_instance_ready(ctx, id));
                    self.state.maybe_close_recoveries(queue.now());
                }
            }
            Event::StageArrive {
                id,
                epoch,
                stage,
                ub,
            } => {
                self.state.on_stage_arrive(queue, id, epoch, stage, ub);
            }
            Event::StageDone {
                id,
                epoch,
                stage,
                ub,
            } => {
                self.state.on_stage_done(queue, id, epoch, stage, ub);
            }
            Event::PrepareDone { id, epoch } => {
                self.state.on_prepare_done(queue, id, epoch);
            }
            Event::PauseDone { id, epoch } => {
                self.state.on_pause_done(queue, id, epoch);
                self.state.resume_instance(queue, id);
                self.state.launch_decode(queue, id);
                self.state.drain_gateway(queue);
                self.state.maybe_close_recoveries(queue.now());
            }
            Event::Disruption(idx) => {
                self.on_disruption_event(queue, idx as usize);
            }
            Event::Revoke { gpus } => {
                self.execute_revocation(queue, gpus);
            }
            Event::Restore { gpus } => {
                self.state.restore_capacity(&gpus);
            }
        }
    }
}
