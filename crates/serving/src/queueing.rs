//! The extended G/G/S queueing model of Eq. (1) (§3.3).
//!
//! ```text
//! T_total =  ρ^S / (S!(1−ρ)) · (CV_a² + CV_s²)/2     (queue latency)
//!          + Σ_i λ_i / (μ_i (μ_i − λ_i))              (stage congestion)
//! ```
//!
//! plus the deterministic pipeline fill time `T_pipe = S·τ + (S−1)·δ`. The
//! model explains the S ∝ √CV_a rule of thumb the paper derives: past
//! CV_a ≈ 3, deeper pipelines win because distributed buffering absorbs
//! bursts faster than the added per-stage register delay accumulates.

use serde::{Deserialize, Serialize};

/// Inputs of the Eq. (1) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GgsParams {
    /// Pipeline depth `S`.
    pub stages: u32,
    /// Single-stage service time τ, seconds.
    pub stage_service_secs: f64,
    /// Inter-stage communication overhead δ, seconds.
    pub hop_secs: f64,
    /// Arrival rate λ, requests/second.
    pub arrival_rate: f64,
    /// Per-stage service rate μ_i, requests/second.
    pub stage_service_rate: f64,
    /// CV of arrival intervals.
    pub cv_arrival: f64,
    /// CV of service times.
    pub cv_service: f64,
}

/// Model outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GgsPrediction {
    /// Deterministic pipeline traversal time `S·τ + (S−1)·δ`.
    pub pipe_secs: f64,
    /// Queue-latency term of Eq. (1).
    pub queue_secs: f64,
    /// Stage-congestion term of Eq. (1).
    pub congestion_secs: f64,
}

impl GgsPrediction {
    /// Total predicted sojourn time.
    pub fn total_secs(&self) -> f64 {
        self.pipe_secs + self.queue_secs + self.congestion_secs
    }
}

fn factorial(n: u32) -> f64 {
    (1..=n).map(f64::from).product::<f64>().max(1.0)
}

/// Evaluates Eq. (1). Returns `None` when the system is unstable
/// (utilisation ≥ 1 at any stage).
pub fn predict(p: &GgsParams) -> Option<GgsPrediction> {
    if p.stages == 0 || p.stage_service_rate <= 0.0 {
        return None;
    }
    let rho = p.arrival_rate / (p.stage_service_rate * f64::from(p.stages));
    if rho >= 1.0 || p.arrival_rate >= p.stage_service_rate {
        return None;
    }
    let s = p.stages;
    let pipe_secs =
        f64::from(s) * p.stage_service_secs + f64::from(s.saturating_sub(1)) * p.hop_secs;
    let queue_secs = rho.powi(s as i32) / (factorial(s) * (1.0 - rho))
        * (p.cv_arrival * p.cv_arrival + p.cv_service * p.cv_service)
        / 2.0;
    // Per-stage congestion: λ_i = λ (every request visits every stage).
    let congestion_one =
        p.arrival_rate / (p.stage_service_rate * (p.stage_service_rate - p.arrival_rate));
    let congestion_secs = f64::from(s) * congestion_one;
    Some(GgsPrediction {
        pipe_secs,
        queue_secs,
        congestion_secs,
    })
}

/// The paper's optimal-depth heuristic: `S ∝ √CV_a` once `CV_a > 3`.
///
/// Returns the suggested stage count within `[min_stages, max_stages]`,
/// scaling from `base_stages` at CV = 1.
pub fn optimal_depth_heuristic(
    cv_arrival: f64,
    base_stages: u32,
    min_stages: u32,
    max_stages: u32,
) -> u32 {
    let scale = cv_arrival.max(0.25).sqrt();
    let s = (f64::from(base_stages) * scale).round() as u32;
    s.clamp(min_stages, max_stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(stages: u32, cv: f64) -> GgsParams {
        GgsParams {
            stages,
            stage_service_secs: 0.02,
            hop_secs: 0.002,
            arrival_rate: 20.0,
            stage_service_rate: 40.0,
            cv_arrival: cv,
            cv_service: 0.3,
        }
    }

    #[test]
    fn latency_grows_with_arrival_cv() {
        let lo = predict(&base(4, 0.5)).unwrap().total_secs();
        let hi = predict(&base(4, 4.0)).unwrap().total_secs();
        assert!(hi > lo);
    }

    #[test]
    fn unstable_system_returns_none() {
        let mut p = base(4, 1.0);
        p.arrival_rate = 45.0; // beyond the per-stage service rate
        assert!(predict(&p).is_none());
        assert!(predict(&GgsParams {
            stages: 0,
            ..base(4, 1.0)
        })
        .is_none());
    }

    #[test]
    fn pipe_time_scales_with_depth() {
        let p4 = predict(&base(4, 1.0)).unwrap();
        let p16 = predict(&base(16, 1.0)).unwrap();
        assert!(p16.pipe_secs > p4.pipe_secs);
        assert!((p4.pipe_secs - (4.0 * 0.02 + 3.0 * 0.002)).abs() < 1e-12);
    }

    #[test]
    fn deeper_pipelines_shrink_queue_term() {
        // The ρ^S/S! factor collapses with S: distributed buffering.
        let q4 = predict(&base(4, 4.0)).unwrap().queue_secs;
        let q8 = predict(&base(8, 4.0)).unwrap().queue_secs;
        assert!(q8 < q4);
    }

    #[test]
    fn depth_heuristic_follows_sqrt_law() {
        assert_eq!(optimal_depth_heuristic(1.0, 8, 2, 32), 8);
        assert_eq!(optimal_depth_heuristic(4.0, 8, 2, 32), 16);
        assert_eq!(optimal_depth_heuristic(16.0, 8, 2, 32), 32);
        // Clamping.
        assert_eq!(optimal_depth_heuristic(100.0, 8, 2, 32), 32);
        assert_eq!(optimal_depth_heuristic(0.01, 8, 4, 32), 4);
    }
}
