//! Engine configuration.

use serde::{Deserialize, Serialize};

use flexpipe_model::BatchScaling;
use flexpipe_sim::SimDuration;

use crate::admission::AdmissionMode;

/// Tunables of the serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Period of the policy control loop (Algorithm 1's optimisation
    /// interval).
    pub control_interval: SimDuration,
    /// Decode micro-batch size: requests grouped into one recirculating
    /// micro-batch.
    pub ubatch_size: u32,
    /// Maximum requests co-prefilled in one pass.
    pub prefill_batch: u32,
    /// Maximum prompt tokens processed per prefill pass (Sarathi-style
    /// chunked prefill: bounds stage occupancy so decode passes are not
    /// stuck behind long prompt convoys).
    pub prefill_token_cap: u64,
    /// Sliding window of the arrival monitor (ν_t, λ_t).
    pub monitor_window: SimDuration,
    /// Background fragmentation churn step.
    pub churn_step: SimDuration,
    /// How long evicted parameters stay cached in host memory.
    pub host_cache_ttl: SimDuration,
    /// Per-unit slowdown from background SM contention: stage compute is
    /// multiplied by `1 + interference_coeff * bg_sm`.
    pub interference_coeff: f64,
    /// Upper bound on simulation events (runaway guard).
    pub max_events: u64,
    /// Optional Eq. (3) batch-aware transmission scaling: when set,
    /// inter-stage activation bytes grow sub-linearly with the micro-batch
    /// size (transport compression / padding amortisation). `None`
    /// preserves the linear model the published experiments use.
    pub batch_scaling: Option<BatchScaling>,
    /// Gateway admission strategy. [`AdmissionMode::Indexed`] (default) is
    /// the O(log instances) fast path; [`AdmissionMode::NaiveScan`] is the
    /// retained per-request rescan reference. Both produce byte-identical
    /// reports — the mode only changes wall-clock.
    pub admission: AdmissionMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            control_interval: SimDuration::from_millis(1000),
            ubatch_size: 128,
            prefill_batch: 16,
            prefill_token_cap: 1024,
            monitor_window: SimDuration::from_secs(30),
            churn_step: SimDuration::from_secs(10),
            host_cache_ttl: SimDuration::from_secs(120),
            interference_coeff: 0.6,
            max_events: 200_000_000,
            batch_scaling: None,
            admission: AdmissionMode::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = EngineConfig::default();
        assert!(c.ubatch_size >= 1);
        assert!(c.prefill_batch >= 1);
        assert!(c.control_interval > SimDuration::ZERO);
        assert!(c.monitor_window > c.control_interval);
    }
}
