//! The indexed admission fast path.
//!
//! The gateway admits each queued request to the least-loaded admissible
//! instance. The reference implementation re-scans every instance per
//! request — O(instances × queued requests) — which is fine at the
//! paper's 20 QPS on 82 GPUs but dominates the event loop at 10× the
//! rate (ROADMAP "engine hot paths"). The [`AdmissionIndex`] replaces the
//! rescan with an ordered set keyed on `(load-factor bits, instance id)`,
//! incrementally maintained by the engine on every event that changes an
//! instance's admissibility (spawn, ready, admit, completion, retire,
//! refactor, hold, revocation, restore-triggered rebuilds), so selection
//! is O(log instances) and chaos + inflight refactoring keep it coherent.
//!
//! Ordering contract: the naive scan compares `f64` load factors via
//! `partial_cmp` and breaks ties on the instance id. Admissible load
//! factors are finite and non-negative (`active < cap`, so `cap > 0`),
//! and IEEE-754 bit patterns of non-negative floats order exactly like
//! the floats themselves — keying the set on `f64::to_bits` therefore
//! reproduces the naive selection *bit for bit*, which is what makes the
//! indexed path a pure optimization (byte-identical reports, proven by
//! tests).

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::instance::InstanceId;

/// Ordered index over admissible instances.
///
/// The engine owns one and calls [`AdmissionIndex::apply`] with the
/// instance's current admission key (`Some(load_factor.to_bits())` when
/// admissible, `None` otherwise) after every mutation that can change it.
#[derive(Debug, Default)]
pub struct AdmissionIndex {
    /// `(load-factor bits, id)` — `BTreeSet` min = the naive scan's pick.
    set: BTreeSet<(u64, InstanceId)>,
    /// Current key per indexed instance (for O(log n) re-keying).
    keys: HashMap<InstanceId, u64>,
}

impl AdmissionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `id`'s admission key: `Some(bits)` inserts or re-keys,
    /// `None` removes. Idempotent.
    pub fn apply(&mut self, id: InstanceId, key: Option<u64>) {
        match (self.keys.get(&id).copied(), key) {
            (Some(old), Some(new)) if old == new => {}
            (Some(old), Some(new)) => {
                self.set.remove(&(old, id));
                self.set.insert((new, id));
                self.keys.insert(id, new);
            }
            (Some(old), None) => {
                self.set.remove(&(old, id));
                self.keys.remove(&id);
            }
            (None, Some(new)) => {
                self.set.insert((new, id));
                self.keys.insert(id, new);
            }
            (None, None) => {}
        }
    }

    /// The least-loaded admissible instance (ties toward the lowest id),
    /// exactly matching the naive reference scan.
    pub fn best(&self) -> Option<InstanceId> {
        self.set.first().map(|&(_, id)| id)
    }

    /// Number of admissible instances currently indexed.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no instance is admissible.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Indexed `(id, key)` pairs in selection order (test support).
    pub fn entries(&self) -> impl Iterator<Item = (InstanceId, u64)> + '_ {
        self.set.iter().map(|&(k, id)| (id, k))
    }
}

/// Engine-wide hot-path selection strategy.
///
/// Originally the *admission*-path toggle; PR 5 generalized it to govern
/// every incrementally maintained engine structure — the admission index,
/// the per-instance decode-slot tracker, the cluster's server-load ranking
/// and the memoized Table-2 partition table (see
/// [`crate::engine::indexes`]). The serialized variant names (and the
/// `admission` field carrying the mode in
/// [`crate::config::EngineConfig`]) are unchanged, so spec files and the
/// engine fingerprint are unaffected. Both modes produce byte-identical
/// reports — the mode changes wall-clock only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineMode {
    /// The indexed fast paths (default): O(log n) / O(1) per event.
    #[default]
    Indexed,
    /// The retained naive reference scans. Kept for equivalence tests,
    /// the hot-path microbenchmarks and `fleet bench` A/B sweeps —
    /// reports must be byte-identical.
    NaiveScan,
}

/// Backward-compatible name for [`EngineMode`] from when the toggle only
/// covered admission.
pub type AdmissionMode = EngineMode;

impl EngineMode {
    /// Stable lowercase label (bench cell ids, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Indexed => "indexed",
            EngineMode::NaiveScan => "naive",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "indexed" => Some(EngineMode::Indexed),
            "naive" => Some(EngineMode::NaiveScan),
            _ => None,
        }
    }
}

/// One synthetic admission slot of the [`churn`] harness: an instance
/// stand-in with a batch capacity and a live-request count.
#[derive(Debug, Clone, Copy)]
struct Slot {
    cap: u32,
    active: u32,
    admissible: bool,
}

impl Slot {
    fn key(&self) -> Option<u64> {
        if self.admissible && self.active < self.cap {
            Some((f64::from(self.active) / f64::from(self.cap)).to_bits())
        } else {
            None
        }
    }
}

/// Deterministic admission churn shared by the criterion microbenchmark
/// (`crates/bench/benches/admission.rs`) and the fast-path ratio test.
///
/// Simulates `ops` gateway decisions over `n` instances with staggered
/// capacities: each step admits to the least-loaded admissible slot
/// (naive linear scan or [`AdmissionIndex`], per `mode`), and a
/// deterministic counter-based pattern completes requests and flips
/// admission holds so slots keep entering and leaving the index — the
/// same churn the engine produces under load, without the event loop
/// around it. Returns a checksum over the chosen instance sequence, so
/// callers can assert the two modes make identical decisions.
pub fn churn(n: usize, ops: usize, mode: AdmissionMode) -> u64 {
    assert!(n > 0, "need at least one slot");
    let mut slots: Vec<Slot> = (0..n)
        .map(|i| Slot {
            cap: 4 + (i as u32 % 13) * 3,
            active: 0,
            admissible: true,
        })
        .collect();
    let mut index = AdmissionIndex::new();
    if mode == AdmissionMode::Indexed {
        for (i, s) in slots.iter().enumerate() {
            index.apply(InstanceId(i as u64), s.key());
        }
    }
    // SplitMix64: deterministic, dependency-free pattern driver (shared
    // with the engine's other churn harnesses).
    let mut state = 0x5EEDu64.wrapping_add(n as u64);

    let mut checksum = 0u64;
    let touch = |slots: &mut [Slot], index: &mut AdmissionIndex, i: usize| {
        if mode == AdmissionMode::Indexed {
            index.apply(InstanceId(i as u64), slots[i].key());
        }
    };
    for op in 0..ops {
        // Admit to the least-loaded admissible slot.
        let target = match mode {
            AdmissionMode::Indexed => index.best().map(|id| id.0 as usize),
            AdmissionMode::NaiveScan => slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.admissible && s.active < s.cap)
                .min_by(|(ai, a), (bi, b)| {
                    (f64::from(a.active) / f64::from(a.cap))
                        .partial_cmp(&(f64::from(b.active) / f64::from(b.cap)))
                        .unwrap()
                        .then(ai.cmp(bi))
                })
                .map(|(i, _)| i),
        };
        if let Some(i) = target {
            slots[i].active += 1;
            touch(&mut slots, &mut index, i);
            checksum = checksum
                .wrapping_mul(0x100000001B3)
                .wrapping_add(i as u64 + 1);
        }
        // Deterministic churn: completions free capacity, occasional
        // holds/releases move slots in and out of the admissible set.
        let r = crate::engine::indexes::splitmix(&mut state);
        let j = (r % n as u64) as usize;
        if op % 2 == 0 && slots[j].active > 0 {
            slots[j].active -= 1;
            touch(&mut slots, &mut index, j);
        }
        if r.is_multiple_of(17) {
            slots[j].admissible = !slots[j].admissible;
            touch(&mut slots, &mut index, j);
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_inserts_rekeys_and_removes() {
        let mut idx = AdmissionIndex::new();
        assert!(idx.is_empty());
        idx.apply(InstanceId(2), Some(0.5f64.to_bits()));
        idx.apply(InstanceId(1), Some(0.25f64.to_bits()));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.best(), Some(InstanceId(1)));
        // Re-key: instance 1 fills up past instance 2.
        idx.apply(InstanceId(1), Some(0.75f64.to_bits()));
        assert_eq!(idx.best(), Some(InstanceId(2)));
        // Remove.
        idx.apply(InstanceId(2), None);
        assert_eq!(idx.best(), Some(InstanceId(1)));
        idx.apply(InstanceId(1), None);
        assert!(idx.is_empty());
        // Idempotent no-ops.
        idx.apply(InstanceId(9), None);
        assert!(idx.best().is_none());
    }

    #[test]
    fn ties_break_toward_the_lowest_id() {
        let mut idx = AdmissionIndex::new();
        let k = 0.5f64.to_bits();
        idx.apply(InstanceId(7), Some(k));
        idx.apply(InstanceId(3), Some(k));
        assert_eq!(idx.best(), Some(InstanceId(3)));
    }

    #[test]
    fn bit_keys_order_like_load_factors() {
        // Non-negative f64 bit patterns are order-isomorphic to values:
        // the property the whole index rests on.
        let factors: [f64; 7] = [0.0, 1e-12, 0.124999, 0.125, 0.5, 0.999999, 1.0];
        for w in factors.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn churn_modes_agree_on_every_decision() {
        for n in [1usize, 3, 17, 64] {
            assert_eq!(
                churn(n, 2_000, AdmissionMode::Indexed),
                churn(n, 2_000, AdmissionMode::NaiveScan),
                "divergence at n={n}"
            );
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [AdmissionMode::Indexed, AdmissionMode::NaiveScan] {
            assert_eq!(AdmissionMode::parse(m.label()), Some(m));
        }
        assert_eq!(AdmissionMode::parse("bogus"), None);
        assert_eq!(AdmissionMode::default(), AdmissionMode::Indexed);
    }
}
