//! The control-policy interface.
//!
//! FlexPipe (in `flexpipe-core`) and every baseline (in
//! `flexpipe-baselines`) implement [`ControlPolicy`]; the engine invokes it
//! on a fixed control interval and at request arrivals, and the policy
//! steers the system exclusively through the [`crate::engine::Ctx`]
//! actions (spawn / retire / refactor / placement). Keeping the mechanism
//! in the engine and the decisions in policies is what makes the paper's
//! system comparison apples-to-apples.

use flexpipe_cluster::GpuId;
use flexpipe_model::OpRange;
use flexpipe_obs::TraceEvent;
use flexpipe_sim::{SimDuration, SimTime};

use crate::engine::Ctx;
use crate::instance::InstanceId;

/// How GPUs are chosen for a spawn.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Engine default: first-fit over free memory, distinct servers for
    /// stages of the same instance (the paper's anti-colocation rule, §6.2).
    FirstFit,
    /// Policy-chosen explicit GPU list (FlexPipe's HRG placement).
    Explicit(Vec<GpuId>),
}

/// A refactor's execution parameters, computed by the policy (FlexPipe's
/// consistency protocol + placement) and executed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RefactorPlan {
    /// Target stage ranges (a lattice level).
    pub new_ranges: Vec<OpRange>,
    /// GPU for each new stage: reuse an old stage's device or a new GPU.
    pub assignments: Vec<StageAssign>,
    /// Background preparation time (parameter fetches + bulk KV copy)
    /// during which the old topology keeps serving.
    pub prepare: SimDuration,
    /// Switchover pause (final KV delta sync + gateway update).
    pub pause: SimDuration,
}

/// Where a new stage lives after a refactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageAssign {
    /// Keep the device of old stage `old_index`.
    Reuse {
        /// Index of the old stage whose GPU is kept.
        old_index: u32,
    },
    /// Move onto a freshly acquired GPU.
    Fresh {
        /// The new device.
        gpu: GpuId,
    },
}

/// Why a spawn or refactor was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionError {
    /// Not enough suitable GPUs in the cluster right now.
    NoCapacity(String),
    /// The requested stage count is not a lattice level.
    UnknownLevel(u32),
    /// The instance id is unknown or in the wrong state.
    BadInstance(InstanceId),
    /// Assignment list inconsistent with the plan.
    BadPlan(String),
}

impl std::fmt::Display for ActionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionError::NoCapacity(s) => write!(f, "no capacity: {s}"),
            ActionError::UnknownLevel(k) => write!(f, "no lattice level with {k} stages"),
            ActionError::BadInstance(id) => write!(f, "bad instance {id:?}"),
            ActionError::BadPlan(s) => write!(f, "bad plan: {s}"),
        }
    }
}

impl std::error::Error for ActionError {}

/// One instance wounded by a capacity revocation: some (possibly all) of
/// its stages lost their devices mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrippledInstance {
    /// The wounded instance (now in `InstanceState::Crippled`).
    pub id: InstanceId,
    /// Stage count before the revocation (a lattice level).
    pub original_stages: u32,
    /// Stages that kept their devices (their parameters stay resident).
    pub surviving_stages: u32,
}

/// What a revocation did to the deployment, handed to
/// [`ControlPolicy::on_disruption`] right after the engine killed the
/// in-flight micro-batches on dead stages and replayed their requests.
#[derive(Debug, Clone, PartialEq)]
pub struct DisruptionNotice {
    /// Devices revoked by this event.
    pub revoked_gpus: Vec<GpuId>,
    /// Instances wounded by it, in id order.
    pub crippled: Vec<CrippledInstance>,
}

/// Cold-respawn recovery for one crippled instance: retire it (returning
/// surviving devices) and spawn a replacement through the *elastic* path,
/// paying provisioning and parameter-loading delays. This is what every
/// static/restart-based system does after losing capacity; FlexPipe
/// overrides [`ControlPolicy::on_disruption`] to refactor inflight instead.
pub fn cold_respawn_instance(ctx: &mut Ctx<'_>, crippled: &CrippledInstance) {
    ctx.trace(TraceEvent::PolicyAction {
        action: "cold_respawn".into(),
        instance: crippled.id.0,
    });
    ctx.retire(crippled.id);
    // Best effort: a fragmented cluster may refuse; the policy's regular
    // control loop keeps retrying through its own scaling path.
    let _ = ctx.spawn(crippled.original_stages.max(1), Placement::FirstFit);
}

/// Default disruption response: cold-respawn every crippled instance.
pub fn cold_respawn(ctx: &mut Ctx<'_>, notice: &DisruptionNotice) {
    for c in &notice.crippled {
        cold_respawn_instance(ctx, c);
    }
}

/// A serving control policy.
///
/// All methods are invoked by the engine with a [`Ctx`] exposing state
/// queries and actions. Default implementations do nothing, so minimal
/// policies (e.g. a static pipeline) only override [`ControlPolicy::init`].
///
/// Policies are `Send` so a boxed policy (and the engine holding it) can
/// move into a worker thread — the fleet runner executes scenario grids on
/// a thread pool. Policies are plain decision state, so this costs
/// implementors nothing.
pub trait ControlPolicy: Send {
    /// Short name used in experiment output.
    fn name(&self) -> &'static str;

    /// Called once at simulation start to set up the initial deployment.
    fn init(&mut self, ctx: &mut Ctx<'_>);

    /// Called every control interval.
    fn on_tick(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called after each request is enqueued at the gateway.
    fn on_arrival(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when an instance finishes loading and starts serving.
    fn on_instance_ready(&mut self, _ctx: &mut Ctx<'_>, _id: InstanceId) {}

    /// Called when a decision deferred through [`Ctx::defer_action`] pops
    /// from the event queue. The tag is policy-defined; the default drops
    /// deferred actions on the floor.
    fn on_action(&mut self, _ctx: &mut Ctx<'_>, _tag: u32) {}

    /// Called when the platform announces a preemption: `gpus` disappear
    /// at `deadline`. Policies with inflight migration use the grace
    /// window to move stages off the doomed devices; the default does
    /// nothing (static systems ignore the notice and eat the revocation).
    fn on_revoke_notice(&mut self, _ctx: &mut Ctx<'_>, _gpus: &[GpuId], _deadline: SimTime) {}

    /// Called right after a revocation executed. The engine has already
    /// invalidated leases, killed in-flight micro-batches on dead stages
    /// and replayed their requests to the gateway; the policy decides how
    /// to rebuild capacity. Default: [`cold_respawn`] every crippled
    /// instance (the restart-based baseline behaviour).
    fn on_disruption(&mut self, ctx: &mut Ctx<'_>, notice: &DisruptionNotice) {
        cold_respawn(ctx, notice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_error_displays() {
        let e = ActionError::UnknownLevel(7);
        assert!(e.to_string().contains('7'));
        let e = ActionError::NoCapacity("need 4".into());
        assert!(e.to_string().contains("need 4"));
    }

    #[test]
    fn placement_equality() {
        assert_eq!(Placement::FirstFit, Placement::FirstFit);
        assert_ne!(
            Placement::Explicit(vec![GpuId(1)]),
            Placement::Explicit(vec![GpuId(2)])
        );
    }
}
