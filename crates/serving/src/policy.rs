//! The control-policy interface.
//!
//! FlexPipe (in `flexpipe-core`) and every baseline (in
//! `flexpipe-baselines`) implement [`ControlPolicy`]; the engine invokes it
//! on a fixed control interval and at request arrivals, and the policy
//! steers the system exclusively through the [`crate::engine::Ctx`]
//! actions (spawn / retire / refactor / placement). Keeping the mechanism
//! in the engine and the decisions in policies is what makes the paper's
//! system comparison apples-to-apples.

use flexpipe_cluster::GpuId;
use flexpipe_model::OpRange;
use flexpipe_sim::SimDuration;

use crate::engine::Ctx;
use crate::instance::InstanceId;

/// How GPUs are chosen for a spawn.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Engine default: first-fit over free memory, distinct servers for
    /// stages of the same instance (the paper's anti-colocation rule, §6.2).
    FirstFit,
    /// Policy-chosen explicit GPU list (FlexPipe's HRG placement).
    Explicit(Vec<GpuId>),
}

/// A refactor's execution parameters, computed by the policy (FlexPipe's
/// consistency protocol + placement) and executed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RefactorPlan {
    /// Target stage ranges (a lattice level).
    pub new_ranges: Vec<OpRange>,
    /// GPU for each new stage: reuse an old stage's device or a new GPU.
    pub assignments: Vec<StageAssign>,
    /// Background preparation time (parameter fetches + bulk KV copy)
    /// during which the old topology keeps serving.
    pub prepare: SimDuration,
    /// Switchover pause (final KV delta sync + gateway update).
    pub pause: SimDuration,
}

/// Where a new stage lives after a refactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageAssign {
    /// Keep the device of old stage `old_index`.
    Reuse {
        /// Index of the old stage whose GPU is kept.
        old_index: u32,
    },
    /// Move onto a freshly acquired GPU.
    Fresh {
        /// The new device.
        gpu: GpuId,
    },
}

/// Why a spawn or refactor was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionError {
    /// Not enough suitable GPUs in the cluster right now.
    NoCapacity(String),
    /// The requested stage count is not a lattice level.
    UnknownLevel(u32),
    /// The instance id is unknown or in the wrong state.
    BadInstance(InstanceId),
    /// Assignment list inconsistent with the plan.
    BadPlan(String),
}

impl std::fmt::Display for ActionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionError::NoCapacity(s) => write!(f, "no capacity: {s}"),
            ActionError::UnknownLevel(k) => write!(f, "no lattice level with {k} stages"),
            ActionError::BadInstance(id) => write!(f, "bad instance {id:?}"),
            ActionError::BadPlan(s) => write!(f, "bad plan: {s}"),
        }
    }
}

impl std::error::Error for ActionError {}

/// A serving control policy.
///
/// All methods are invoked by the engine with a [`Ctx`] exposing state
/// queries and actions. Default implementations do nothing, so minimal
/// policies (e.g. a static pipeline) only override [`ControlPolicy::init`].
///
/// Policies are `Send` so a boxed policy (and the engine holding it) can
/// move into a worker thread — the fleet runner executes scenario grids on
/// a thread pool. Policies are plain decision state, so this costs
/// implementors nothing.
pub trait ControlPolicy: Send {
    /// Short name used in experiment output.
    fn name(&self) -> &'static str;

    /// Called once at simulation start to set up the initial deployment.
    fn init(&mut self, ctx: &mut Ctx<'_>);

    /// Called every control interval.
    fn on_tick(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called after each request is enqueued at the gateway.
    fn on_arrival(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when an instance finishes loading and starts serving.
    fn on_instance_ready(&mut self, _ctx: &mut Ctx<'_>, _id: InstanceId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_error_displays() {
        let e = ActionError::UnknownLevel(7);
        assert!(e.to_string().contains('7'));
        let e = ActionError::NoCapacity("need 4".into());
        assert!(e.to_string().contains("need 4"));
    }

    #[test]
    fn placement_equality() {
        assert_eq!(Placement::FirstFit, Placement::FirstFit);
        assert_ne!(
            Placement::Explicit(vec![GpuId(1)]),
            Placement::Explicit(vec![GpuId(2)])
        );
    }
}
