//! An open-ended engine driver for live serving.
//!
//! [`LiveEngine`] drives the same deterministic [`Engine`] event loop as
//! `Engine::run_observed`, but lets a caller *inject arrivals while the
//! run is in flight* instead of pre-seeding the whole workload. The
//! gateway's shard threads use it to turn a paced, wall-clock request
//! stream into simulated load — and, because injection follows one
//! mechanical rule, to re-execute any recorded stream bit for bit.
//!
//! # The injection rule
//!
//! A live run and its replay are byte-identical iff every arrival `i`
//! enters the queue at the same point of the event sequence in both
//! runs. [`LiveEngine`] enforces the canonical point: arrival `i` is
//! appended after all events with firing time `< stamp(i)` have fired
//! ([`LiveEngine::advance_before`]) and before any event with time
//! `>= stamp(i)` fires. Within one instant, injected arrivals sort
//! after already-queued events (insertion order), deterministically in
//! both live and replay because both go through this same path.
//!
//! Chaining mirrors the offline engine: when `Arrival(i)` fires while
//! `workload[i + 1]` already exists, its dispatch schedules
//! `Arrival(i + 1)` itself (the unchanged engine code path). The driver
//! therefore schedules a pushed arrival directly only when the chain is
//! dead — every previously pushed arrival has already fired — which is
//! exactly the `fired == i` test in [`LiveEngine::push_arrival`].

use flexpipe_sim::{EventQueue, RunOutcome, SimTime, World};
use flexpipe_workload::Request;

use std::sync::Arc;

use super::{Engine, Event, ObservedRun, ReqRuntime};

/// Drives an [`Engine`] with arrivals injected while the run is live.
///
/// Construct it over an engine whose scenario has an *empty* workload
/// (arrivals come exclusively through [`LiveEngine::push_arrival`]);
/// attach tracing or profiling to the engine *before* wrapping, since
/// construction primes the queue (policy init fires observable events).
pub struct LiveEngine {
    engine: Engine,
    queue: EventQueue<Event>,
    steps: u64,
    /// Count of `Arrival` events fired so far: the chain-alive test.
    fired: u64,
    outcome: Option<RunOutcome>,
}

impl LiveEngine {
    /// Primes `engine` (policy init + seed events) without firing
    /// anything, exactly like the offline run loop's preamble.
    pub fn new(mut engine: Engine) -> LiveEngine {
        let mut queue: EventQueue<Event> = EventQueue::new();
        engine.prime(&mut queue);
        LiveEngine {
            engine,
            queue,
            steps: 0,
            fired: 0,
            outcome: None,
        }
    }

    /// Current virtual time (the clock of the underlying event queue).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Firing time of the next pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Events fired so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Arrivals accepted so far (fired or still pending).
    pub fn arrivals(&self) -> usize {
        self.engine.state.workload.len()
    }

    /// The run outcome, once the loop has ended (budget exhaustion is
    /// the only way a live run ends before [`LiveEngine::finish`]).
    pub fn outcome(&self) -> Option<RunOutcome> {
        self.outcome
    }

    /// Injects the next arrival, stamped `req.arrival`.
    ///
    /// The caller must first advance the run past everything earlier
    /// ([`LiveEngine::advance_before`]`(req.arrival)`) — that ordering
    /// *is* the determinism contract. Requests must carry dense ids in
    /// push order and monotone non-decreasing stamps.
    ///
    /// # Panics
    ///
    /// Panics when `req.id` is not the next dense index or the stamp
    /// regresses below an already-pushed arrival's.
    pub fn push_arrival(&mut self, req: Request) {
        let i = self.engine.state.workload.len();
        assert_eq!(
            req.id.0, i as u64,
            "live arrivals must carry dense ids in push order"
        );
        if let Some(last) = self.engine.state.workload.last() {
            assert!(
                req.arrival >= last.arrival,
                "live arrival stamps must be monotone non-decreasing"
            );
        }
        let stamp = req.arrival;
        Arc::make_mut(&mut self.engine.state.workload).push(req);
        self.engine.state.reqs.push(ReqRuntime {
            req,
            admitted: None,
            prefill_done: None,
            generated: 0,
            exec_secs: 0.0,
            comm_secs: 0.0,
            done: false,
        });
        // Chain-dead (every earlier arrival already fired): schedule this
        // one directly. Chain-alive: `Arrival(i - 1)`'s own dispatch will
        // schedule it when it fires — scheduling here too would duplicate
        // the event. Never schedule into a finished run.
        if self.fired == i as u64 && self.outcome.is_none() {
            self.queue
                .schedule(stamp.max(self.queue.now()), Event::Arrival(i as u32))
                .expect("stamp clamped to now");
        }
    }

    /// Fires every pending event with time strictly before `t` (capped
    /// at the scenario horizon and the step budget), in canonical
    /// order. Returns `false` once the run has ended.
    ///
    /// Strictly-before matters twice: an arrival stamped exactly at a
    /// queued event's time must sort *after* it (insertion order), and
    /// an equal-stamp arrival chain must stay alive so the engine's own
    /// dispatch does the scheduling.
    pub fn advance_before(&mut self, t: SimTime) -> bool {
        while self.outcome.is_none() {
            match self.queue.peek_time() {
                Some(at) if at < t && at <= self.engine.state.horizon => self.fire_next(),
                _ => break,
            }
        }
        self.outcome.is_none()
    }

    fn fire_next(&mut self) {
        if self.steps >= self.engine.state.config.max_events {
            self.outcome = Some(RunOutcome::StepBudgetExhausted);
            return;
        }
        let (now, event) = self.queue.pop().expect("caller peeked a pending event");
        if matches!(event, Event::Arrival(_)) {
            self.fired += 1;
        }
        self.engine.handle(now, event, &mut self.queue);
        self.steps += 1;
    }

    /// Ends the stream: fires everything left up to and including the
    /// horizon, then folds the run into the same artifacts
    /// `Engine::run_observed` returns (the terminal clock advance and
    /// outcome classification mirror `flexpipe_sim::run` exactly).
    pub fn finish(mut self) -> ObservedRun {
        let horizon = self.engine.state.horizon;
        while self.outcome.is_none() {
            match self.queue.peek_time() {
                Some(at) if at <= horizon => self.fire_next(),
                _ => {
                    let drained = self.queue.pop_until(horizon);
                    debug_assert!(drained.is_none(), "peeked later than the horizon");
                    self.outcome = Some(if self.queue.is_empty() {
                        RunOutcome::Drained {
                            at: self.queue.now(),
                        }
                    } else {
                        RunOutcome::DeadlineReached
                    });
                }
            }
        }
        let outcome = self.outcome.expect("loop above sets the outcome");
        self.engine.finish_observed(outcome, self.steps)
    }
}
