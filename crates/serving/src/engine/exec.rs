//! Micro-batch execution: stage scheduling, pass completion, the
//! continuous-batching decode dispatcher and gateway admission.
//!
//! Two hot paths here are incremental: admission selects from the
//! [`crate::admission::AdmissionIndex`] (O(log instances) per request),
//! and the decode dispatcher reads the per-instance
//! [`super::indexes::DecodeSlotTracker`] (O(1) per launch) instead of
//! recounting in-flight decode micro-batches. Both retain their naive
//! reference scans under [`EngineMode::NaiveScan`] and are cross-checked
//! by debug-build validators on every consultation.

use std::collections::BTreeMap;

use flexpipe_cluster::Endpoint;
use flexpipe_metrics::RequestOutcome;
use flexpipe_model::OpId;
use flexpipe_obs::TraceEvent;
use flexpipe_sim::{EventQueue, SimDuration, SimTime};
use flexpipe_workload::RequestId;

use crate::admission::EngineMode;
use crate::instance::{InstanceId, InstanceState, MicroBatch, Phase, UbatchId};

use super::{EngineState, Event};

impl EngineState {
    pub(super) fn resume_instance(&mut self, queue: &mut EventQueue<Event>, id: InstanceId) {
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        let epoch = inst.epoch;
        for s in 0..inst.stages.len() {
            self.try_start_stage(queue, id, epoch, s as u16);
        }
    }

    pub(super) fn try_start_stage(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        stage: u16,
    ) {
        // Iterative (not recursive): a long run of dissolved micro-batches
        // — e.g. after a revocation killed them — must not grow the stack
        // proportionally to the queue length.
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch || inst.state == InstanceState::Paused {
            return;
        }
        let s = stage as usize;
        if s >= inst.stages.len() || inst.stages[s].busy {
            return;
        }
        loop {
            let Some((ub_id, _)) = inst.stages[s].pop_next() else {
                return;
            };
            let Some(ub) = self.ubatches.get_mut(&ub_id) else {
                // Dissolved micro-batch: skip and try the next one.
                continue;
            };
            let gpu = inst.stages[s].gpu;
            let range = inst.stages[s].range;
            let mult = inst.compute_multiplier;
            inst.stages[s].busy = true;
            let base = self.cost.stage_compute(&self.graph, range, ub.pass_tokens);
            let slowdown = 1.0 + self.config.interference_coeff * self.cluster.load(gpu).bg_sm;
            let dur = base.mul_f64(slowdown * mult);
            ub.pass_compute_secs += dur.as_secs_f64();
            self.ledger.record_busy(gpu.0, dur);
            queue
                .schedule_after(
                    dur,
                    Event::StageDone {
                        id,
                        epoch,
                        stage,
                        ub: ub_id,
                    },
                )
                .expect("future");
            return;
        }
    }

    pub(super) fn on_stage_arrive(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        stage: u16,
        ub: UbatchId,
    ) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch {
            return;
        }
        let s = stage as usize;
        if s >= inst.stages.len() {
            return;
        }
        // Two-class scheduling: decode passes are latency-critical and
        // preferred, but the streak limit in `pop_next` guarantees prefill
        // progress (without it either class convoys behind the other).
        let is_decode = self
            .ubatches
            .get(&ub)
            .is_some_and(|u| u.phase == Phase::Decode);
        if is_decode {
            inst.stages[s].input_decode.push_back(ub);
        } else {
            inst.stages[s].input_prefill.push_back(ub);
        }
        self.try_start_stage(queue, id, epoch, stage);
    }

    pub(super) fn on_stage_done(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        stage: u16,
        ub_id: UbatchId,
    ) {
        let now = queue.now();
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch {
            return;
        }
        let s = stage as usize;
        inst.stages[s].busy = false;
        let stage_count = inst.stages.len();
        let last = s + 1 == stage_count;
        if !last {
            // Forward over the inter-stage hop.
            let src = inst.stages[s].gpu;
            let dst = inst.stages[s + 1].gpu;
            let boundary = OpId(inst.stages[s].range.end - 1);
            let tokens = self
                .ubatches
                .get(&ub_id)
                .map(|u| u.pass_tokens)
                .unwrap_or(0);
            let bytes = match self.config.batch_scaling {
                // Eq. (3): profiled bytes at b_base, scaled sub-linearly to
                // the actual pass batch.
                Some(scaling) => {
                    let base_tokens = scaling.b_base.max(1.0);
                    let s_base = self
                        .cost
                        .hop_bytes(&self.graph, boundary, base_tokens as u64)
                        as f64;
                    scaling.scale(s_base, tokens as f64) as u64
                }
                None => self.cost.hop_bytes(&self.graph, boundary, tokens),
            };
            let hop = self.transfer.duration(
                &self.cluster,
                Endpoint::Gpu(src),
                Endpoint::Gpu(dst),
                bytes,
            );
            if let Some(ub) = self.ubatches.get_mut(&ub_id) {
                ub.pass_comm_secs += hop.as_secs_f64();
            }
            queue
                .schedule_after(
                    hop,
                    Event::StageArrive {
                        id,
                        epoch,
                        stage: stage + 1,
                        ub: ub_id,
                    },
                )
                .expect("future");
        } else {
            self.finish_pass(queue, id, epoch, ub_id, now);
        }
        self.try_start_stage(queue, id, epoch, stage);
    }

    fn finish_pass(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
        ub_id: UbatchId,
        now: SimTime,
    ) {
        let Some(mut ub) = self.ubatches.remove(&ub_id) else {
            return;
        };
        let generative = self.graph.config().generative;
        let mut completed: Vec<RequestId> = Vec::new();

        // Attribute the pass's compute/comm to every member.
        for &rid in &ub.members {
            let r = &mut self.reqs[rid.0 as usize];
            r.exec_secs += ub.pass_compute_secs;
            r.comm_secs += ub.pass_comm_secs;
        }

        // Chunked prefill: more prompt tokens to process → immediately
        // re-enter stage 0 with the next chunk.
        if ub.phase == Phase::Prefill && ub.prefill_remaining > 0 {
            let chunk = self.config.prefill_token_cap.max(1);
            ub.pass_tokens = ub.prefill_remaining.min(chunk);
            ub.prefill_remaining -= ub.pass_tokens;
            ub.pass_started = now;
            ub.pass_compute_secs = 0.0;
            ub.pass_comm_secs = 0.0;
            self.ubatches.insert(ub_id, ub);
            queue.schedule_now(Event::StageArrive {
                id,
                epoch,
                stage: 0,
                ub: ub_id,
            });
            return;
        }

        // Survivors return to the decode-ready pool; the dispatcher below
        // re-coalesces them into full micro-batches (continuous batching).
        let mut survivors: Vec<RequestId> = Vec::new();
        match ub.phase {
            Phase::Prefill => {
                for &rid in &ub.members {
                    self.reqs[rid.0 as usize].prefill_done = Some(now);
                    self.obs.record(
                        now,
                        TraceEvent::RequestPrefillDone {
                            req: rid.0,
                            instance: id.0,
                        },
                    );
                }
                if generative {
                    survivors.append(&mut ub.members);
                } else {
                    completed.append(&mut ub.members);
                }
            }
            Phase::Decode => {
                for &rid in &ub.members {
                    let r = &mut self.reqs[rid.0 as usize];
                    r.generated += 1;
                    if r.generated >= r.req.output_tokens {
                        completed.push(rid);
                    } else {
                        survivors.push(rid);
                    }
                }
            }
        }

        for rid in completed {
            self.complete_request(now, id, rid);
        }

        // The micro-batch always dissolves; members regroup at launch.
        let _ = epoch;
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.ubatches.retain(|&u| u != ub_id);
            if ub.phase == Phase::Decode {
                inst.decode_slots.dissolved();
            }
            inst.decode_ready.extend(survivors);
            // Membership changed but the admission key did not.
            self.mark_policy_dirty(id);
        }
        self.launch_decode(queue, id);

        // Capacity freed → try to admit more traffic; drained instances
        // may now release.
        let release = self
            .instances
            .get(&id)
            .map(|i| i.state == InstanceState::Draining && i.active_requests == 0)
            .unwrap_or(false);
        if release {
            self.release_instance(now, id);
        }
        self.drain_gateway(queue);
    }

    /// The continuous-batching dispatcher: launches decode micro-batches
    /// from the ready pool while the pipeline has free slots.
    ///
    /// Launch policy: keep a *small* number of large micro-batches in
    /// flight rather than many small ones — decode passes pay the
    /// weight-read floor regardless of batch size, so splitting the active
    /// set across extra passes wastes HBM bandwidth (Table 2's batching
    /// argument). The slot budget is about half the pipeline depth (prefill
    /// chunks fill the remaining stages), and a launch waits until the
    /// ready pool reaches its fair share of the active set unless the pipe
    /// would otherwise go idle.
    ///
    /// The in-flight decode count reads the per-instance
    /// [`super::indexes::DecodeSlotTracker`] on the indexed path — O(1)
    /// instead of rescanning the instance's micro-batch list with a map
    /// lookup per entry; the naive recount is retained as the reference
    /// and cross-checked in debug builds on every launch decision.
    pub(super) fn launch_decode(&mut self, queue: &mut EventQueue<Event>, id: InstanceId) {
        loop {
            let Some(inst) = self.instances.get_mut(&id) else {
                return;
            };
            if inst.state == InstanceState::Paused {
                return;
            }
            let limit = (inst.stages.len() / 2 + 1).max(2);
            if inst.decode_ready.is_empty() {
                return;
            }
            let naive_count = || {
                inst.ubatches
                    .iter()
                    .filter(|u| {
                        self.ubatches
                            .get(u)
                            .is_some_and(|ub| ub.phase == Phase::Decode)
                    })
                    .count()
            };
            let decode_in_flight = match self.config.admission {
                EngineMode::Indexed => inst.decode_slots.in_flight() as usize,
                EngineMode::NaiveScan => naive_count(),
            };
            debug_assert_eq!(
                decode_in_flight,
                naive_count(),
                "decode-slot tracker diverged from the micro-batch list"
            );
            if decode_in_flight >= limit {
                return;
            }
            // Fair-share batching delay: wait for the pool to accumulate
            // ~active/limit members before launching, unless no decode is
            // in flight at all (never idle the pipe for batching).
            let target = ((inst.active_requests as usize) / limit)
                .clamp(1, self.config.ubatch_size as usize);
            if decode_in_flight > 0 && inst.decode_ready.len() < target {
                return;
            }
            let take = (self.config.ubatch_size as usize).min(inst.decode_ready.len());
            let members: Vec<RequestId> = inst.decode_ready.drain(..take).collect();
            let epoch = inst.epoch;
            let ub_id = {
                self.next_ubatch += 1;
                UbatchId(self.next_ubatch)
            };
            let inst = self.instances.get_mut(&id).expect("checked above");
            inst.ubatches.push(ub_id);
            inst.decode_slots.launched();
            // Membership changed but the admission key did not.
            self.mark_policy_dirty(id);
            let tokens = members.len() as u64;
            self.ubatches.insert(
                ub_id,
                MicroBatch {
                    id: ub_id,
                    members,
                    phase: Phase::Decode,
                    pass_tokens: tokens,
                    prefill_remaining: 0,
                    pass_started: queue.now(),
                    pass_compute_secs: 0.0,
                    pass_comm_secs: 0.0,
                },
            );
            self.obs.record(
                queue.now(),
                TraceEvent::DecodeLaunch {
                    instance: id.0,
                    ubatch: ub_id.0,
                    members: tokens as u32,
                },
            );
            queue.schedule_now(Event::StageArrive {
                id,
                epoch,
                stage: 0,
                ub: ub_id,
            });
        }
    }

    pub(super) fn complete_request(&mut self, now: SimTime, inst_id: InstanceId, rid: RequestId) {
        let r = &mut self.reqs[rid.0 as usize];
        if r.done {
            return;
        }
        r.done = true;
        let generated = r.generated;
        let admitted = r.admitted.unwrap_or(r.req.arrival);
        let latency = now.saturating_since(r.req.arrival).as_secs_f64();
        let exec = r.exec_secs.min(latency);
        let comm = r.comm_secs.min(latency - exec);
        let queue_secs = (latency - exec - comm).max(0.0);
        let prefill = r
            .prefill_done
            .map(|p| p.saturating_since(admitted))
            .unwrap_or(SimDuration::ZERO);
        self.outcomes.record(RequestOutcome {
            id: rid.0,
            arrival: r.req.arrival,
            completion: now,
            queue: SimDuration::from_secs_f64(queue_secs),
            execution: SimDuration::from_secs_f64(exec),
            communication: SimDuration::from_secs_f64(comm),
            prefill,
            slo: r.req.slo,
            prompt_tokens: r.req.prompt_tokens,
            output_tokens: r.req.output_tokens,
        });
        self.obs.record(
            now,
            TraceEvent::RequestComplete {
                req: rid.0,
                instance: inst_id.0,
                generated,
            },
        );
        if let Some(inst) = self.instances.get_mut(&inst_id) {
            inst.active_requests = inst.active_requests.saturating_sub(1);
            self.reindex(inst_id);
        }
    }

    /// Admits queued requests to instances with capacity and launches
    /// prefill micro-batches.
    ///
    /// Selection is least-loaded-first with id tie-break. The default
    /// [`EngineMode::Indexed`] path reads the incrementally maintained
    /// [`crate::admission::AdmissionIndex`] — O(log instances) per
    /// admission; the retained [`EngineMode::NaiveScan`] reference rescans
    /// every instance per request. Both paths pick bit-identical targets
    /// (the index keys on the load factor's bit pattern), so reports never
    /// depend on the mode — only wall-clock does.
    pub fn drain_gateway(&mut self, queue: &mut EventQueue<Event>) {
        #[cfg(debug_assertions)]
        self.debug_validate_admission_index();
        let now = queue.now();
        // Per-instance groups formed this round (BTreeMap: launch order
        // must not depend on hash order).
        let mut formed: BTreeMap<InstanceId, Vec<RequestId>> = BTreeMap::new();
        while let Some(&rid) = self.gateway.front() {
            // Least-loaded admissible instance.
            let target = match self.config.admission {
                EngineMode::Indexed => self.admission.best(),
                EngineMode::NaiveScan => self
                    .instances
                    .values()
                    .filter(|i| i.can_admit())
                    .min_by(|a, b| {
                        a.load_factor()
                            .partial_cmp(&b.load_factor())
                            .unwrap()
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|i| i.id),
            };
            let Some(target) = target else {
                break;
            };
            self.gateway.pop_front();
            let r = &mut self.reqs[rid.0 as usize];
            r.admitted = Some(now);
            let inst = self.instances.get_mut(&target).expect("selected above");
            inst.active_requests += 1;
            self.obs.record(
                now,
                TraceEvent::RequestAdmit {
                    req: rid.0,
                    instance: target.0,
                },
            );
            self.reindex(target);
            formed.entry(target).or_default().push(rid);
        }
        // Launch prefill micro-batches per instance, respecting the
        // prefill batch/token caps.
        for (inst_id, rids) in formed {
            let epoch = match self.instances.get(&inst_id) {
                Some(i) => i.epoch,
                None => continue,
            };
            let mut group: Vec<RequestId> = Vec::new();
            let mut tokens = 0u64;
            let launch = |state: &mut EngineState,
                          queue: &mut EventQueue<Event>,
                          group: &mut Vec<RequestId>,
                          tokens: &mut u64| {
                if group.is_empty() {
                    return;
                }
                let ub_id = state.new_ubatch_id();
                let members = std::mem::take(group);
                let chunk = state.config.prefill_token_cap.max(1);
                let first = (*tokens).min(chunk);
                state.ubatches.insert(
                    ub_id,
                    MicroBatch {
                        id: ub_id,
                        members,
                        phase: Phase::Prefill,
                        pass_tokens: first,
                        prefill_remaining: *tokens - first,
                        pass_started: queue.now(),
                        pass_compute_secs: 0.0,
                        pass_comm_secs: 0.0,
                    },
                );
                if let Some(inst) = state.instances.get_mut(&inst_id) {
                    inst.ubatches.push(ub_id);
                }
                queue.schedule_now(Event::StageArrive {
                    id: inst_id,
                    epoch,
                    stage: 0,
                    ub: ub_id,
                });
                *tokens = 0;
            };
            for rid in rids {
                let prompt = u64::from(self.reqs[rid.0 as usize].req.prompt_tokens);
                if group.len() as u32 >= self.config.prefill_batch {
                    launch(self, queue, &mut group, &mut tokens);
                }
                group.push(rid);
                tokens += prompt;
            }
            launch(self, queue, &mut group, &mut tokens);
        }
    }
}
