//! Instance lifecycle: spawn / ready / retire / release, the inflight
//! refactor state machine (prepare → pause → commit/abort) and the
//! host-memory parameter cache.
//!
//! Memory-sizing queries (`max_batch`, `stage_mem_bytes`) route through
//! the mode-dispatched [`EngineState::max_batch_of`] /
//! [`EngineState::stage_mem_of`] helpers: the indexed path reuses
//! memoized Table-2 rows so a refactor storm re-prices layouts in O(1)
//! per (range, device) instead of re-walking the operator slice.

use std::collections::VecDeque;

use flexpipe_cluster::{GpuId, LeaseId, Route, ServerId};
use flexpipe_model::OpRange;
use flexpipe_obs::TraceEvent;
use flexpipe_sim::{EventQueue, SimDuration, SimTime};

use crate::instance::{Instance, InstanceId, InstanceState, StageRuntime};
use crate::policy::{ActionError, Placement, RefactorPlan, StageAssign};

use super::indexes::DecodeSlotTracker;
use super::{EngineState, Event, HostCacheEntry, PendingRefactor};

impl EngineState {
    pub(super) fn load_route(&self, range: OpRange, gpu: GpuId) -> Route {
        let key = (range.start, range.end);
        match self.host_cache.get(&key) {
            Some(entry) => {
                if self.cluster.topology().gpu(gpu).server == entry.server {
                    Route::PcieHost
                } else {
                    Route::Rdma
                }
            }
            None => Route::Storage,
        }
    }

    /// Load duration of `range` onto `gpu`, using the host cache if warm.
    pub fn load_duration(&self, range: OpRange, gpu: GpuId) -> SimDuration {
        let bytes = self.graph.range_param_bytes(range);
        self.transfer
            .duration_on(self.load_route(range, gpu), bytes)
    }

    /// Whether `range` is warm in some server's host cache.
    pub fn is_cached(&self, range: OpRange) -> Option<ServerId> {
        self.host_cache
            .get(&(range.start, range.end))
            .map(|e| e.server)
    }

    /// GPUs currently holding stages of our instances.
    pub fn gpus_in_use(&self) -> &std::collections::HashSet<GpuId> {
        &self.gpus_in_use
    }

    /// Devices under an outstanding preemption notice, with their
    /// revocation deadlines. Placement-aware policies exclude these.
    pub fn doomed_gpus(&self) -> Vec<(GpuId, SimTime)> {
        self.pending_revocations
            .iter()
            .map(|(&g, &t)| (g, t))
            .collect()
    }

    /// Control-plane readiness delay of acquiring `gpu` at `now`.
    pub fn provisioning_delay(&self, gpu: GpuId, now: SimTime) -> SimDuration {
        if self.provisioner.is_instant(gpu, now) {
            SimDuration::ZERO
        } else {
            self.tier.elastic_delay
        }
    }

    /// Per-stage (range, gpu) placement of an instance.
    pub fn stage_placement(&self, id: InstanceId) -> Option<Vec<(OpRange, GpuId)>> {
        self.instances
            .get(&id)
            .map(|i| i.stages.iter().map(|s| (s.range, s.gpu)).collect())
    }

    /// Pre-stages the parameters of `range` into `server`'s host memory
    /// (ServerlessLLM-style checkpoint placement). Subsequent loads of the
    /// range onto GPUs of that server run at PCIe speed. Returns whether
    /// host memory could be reserved; refreshing an existing entry always
    /// succeeds.
    pub fn prewarm_host_cache(&mut self, now: SimTime, range: OpRange, server: ServerId) -> bool {
        let key = (range.start, range.end);
        let expires = now + self.config.host_cache_ttl;
        if let Some(entry) = self.host_cache.get_mut(&key) {
            entry.expires = expires;
            return true;
        }
        let bytes = self.graph.range_param_bytes(range);
        match self.cluster.reserve_host(server, bytes) {
            Ok(lease) => {
                self.host_cache.insert(
                    key,
                    HostCacheEntry {
                        server,
                        lease,
                        expires,
                    },
                );
                true
            }
            Err(_) => false,
        }
    }

    fn select_gpus(
        &self,
        ranges: &[OpRange],
        placement: &Placement,
    ) -> Result<Vec<GpuId>, ActionError> {
        match placement {
            Placement::Explicit(gpus) => {
                if gpus.len() != ranges.len() {
                    return Err(ActionError::BadPlan(format!(
                        "{} gpus for {} stages",
                        gpus.len(),
                        ranges.len()
                    )));
                }
                let mut seen = std::collections::HashSet::new();
                for (&g, &r) in gpus.iter().zip(ranges) {
                    if self.gpus_in_use.contains(&g) || !seen.insert(g) {
                        return Err(ActionError::NoCapacity(format!("gpu {g:?} already in use")));
                    }
                    let need = self.stage_mem_of(r, 1);
                    if self.cluster.free_mem(g) < need {
                        return Err(ActionError::NoCapacity(format!(
                            "gpu {g:?} lacks {need} bytes"
                        )));
                    }
                }
                Ok(gpus.clone())
            }
            Placement::FirstFit => {
                // Greedy best-fit: each stage takes the feasible GPU with
                // the most free memory. Picking barely-fitting devices
                // would collapse the joint batch capacity (Table 2's max
                // batch is memory-bound), starving admission.
                let mut chosen: Vec<GpuId> = Vec::with_capacity(ranges.len());
                for &r in ranges {
                    let need = self.stage_mem_of(r, 1);
                    let found = self
                        .cluster
                        .topology()
                        .gpus()
                        .iter()
                        .map(|g| g.id)
                        .filter(|g| !self.gpus_in_use.contains(g) && !chosen.contains(g))
                        .filter(|&g| self.cluster.free_mem(g) >= need)
                        .max_by_key(|&g| (self.cluster.free_mem(g), std::cmp::Reverse(g.0)))
                        .ok_or_else(|| {
                            ActionError::NoCapacity(format!(
                                "no gpu with {} MiB free for stage",
                                need >> 20
                            ))
                        })?;
                    chosen.push(found);
                }
                Ok(chosen)
            }
        }
    }

    /// Spawns an instance at lattice level `stages`; returns its id.
    ///
    /// `prewarmed` instances come up instantly — they model the standing
    /// deployment that exists before measurement starts (static systems
    /// are always-on; only *elastic* scale-outs pay provisioning and
    /// parameter-loading delays).
    pub fn spawn(
        &mut self,
        queue: &mut EventQueue<Event>,
        stages: u32,
        placement: Placement,
        prewarmed: bool,
    ) -> Result<InstanceId, ActionError> {
        let now = queue.now();
        let ranges: Vec<OpRange> = self
            .lattice
            .level(stages)
            .ok_or(ActionError::UnknownLevel(stages))?
            .ranges
            .clone();
        let gpus = self.select_gpus(&ranges, &placement)?;

        // Joint batch capacity over all stages given each device's memory.
        let batch_cap = ranges
            .iter()
            .zip(&gpus)
            .map(|(&r, &g)| self.max_batch_of(r, self.cluster.free_mem(g)))
            .min()
            .unwrap_or(0);
        if batch_cap == 0 {
            return Err(ActionError::NoCapacity(
                "batch capacity would be zero".into(),
            ));
        }

        let mut stage_runtimes = Vec::with_capacity(ranges.len());
        let mut ready = now;
        for (&r, &g) in ranges.iter().zip(&gpus) {
            let bytes = self.stage_mem_of(r, batch_cap);
            let lease = self
                .cluster
                .reserve_gpu(g, bytes)
                .map_err(|e| ActionError::NoCapacity(e.to_string()))?;
            let acq = self.provisioner.acquire(g, now);
            self.ledger.record_acquire(now);
            self.gpus_in_use.insert(g);
            if !prewarmed {
                let route = self.load_route(r, g);
                if route == Route::Storage {
                    self.cold_loads += 1;
                } else {
                    self.warm_loads += 1;
                }
                let load = self
                    .transfer
                    .duration_on(route, self.graph.range_param_bytes(r));
                ready = ready.max(acq.ready_at + load);
            }
            stage_runtimes.push(StageRuntime {
                range: r,
                gpu: g,
                lease,
                busy: false,
                input_decode: VecDeque::new(),
                input_prefill: VecDeque::new(),
                decode_streak: 0,
            });
        }

        let id = self.new_instance_id();
        self.instances.insert(
            id,
            Instance {
                id,
                stages: stage_runtimes,
                state: InstanceState::Loading,
                batch_cap,
                active_requests: 0,
                ubatches: Vec::new(),
                decode_ready: VecDeque::new(),
                decode_slots: DecodeSlotTracker::new(),
                admit_hold: false,
                compute_multiplier: 1.0,
                spawned_at: now,
                ready_at: None,
                epoch: 0,
            },
        );
        self.reindex(id);
        self.spawns += 1;
        self.obs.record(
            now,
            TraceEvent::InstanceSpawn {
                instance: id.0,
                stages,
                prewarmed,
            },
        );
        if !prewarmed {
            self.init_latencies
                .push(ready.saturating_since(now).as_secs_f64());
        }
        queue
            .schedule(ready, Event::InstanceReady { id, epoch: 0 })
            .expect("ready time is in the future");
        Ok(id)
    }

    /// Marks an instance draining; it is released once empty.
    pub fn retire(&mut self, queue: &mut EventQueue<Event>, id: InstanceId) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if matches!(inst.state, InstanceState::Draining) {
            return;
        }
        inst.state = InstanceState::Draining;
        let empty = inst.active_requests == 0;
        self.obs
            .record(queue.now(), TraceEvent::InstanceRetire { instance: id.0 });
        self.reindex(id);
        if empty {
            self.release_instance(queue.now(), id);
        }
    }

    pub(super) fn release_instance(&mut self, now: SimTime, id: InstanceId) {
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        self.obs
            .record(now, TraceEvent::InstanceRelease { instance: id.0 });
        // The instance is already gone from the map, so this resolves to a
        // `None` key (dropping it from the admission index) while also
        // recording the removal in the control plane's dirty set.
        self.reindex(id);
        for stage in inst.stages {
            self.release_stage_device(now, stage.gpu, stage.lease, stage.range);
        }
    }

    /// Releases one stage's device: frees the lease, parks parameters in
    /// the host cache (memory permitting) and returns the GPU to the
    /// provisioner's warm pool.
    pub(super) fn release_stage_device(
        &mut self,
        now: SimTime,
        gpu: GpuId,
        lease: LeaseId,
        range: OpRange,
    ) {
        let _ = self.cluster.release(lease);
        let server = self.cluster.topology().gpu(gpu).server;
        let bytes = self.graph.range_param_bytes(range);
        let key = (range.start, range.end);
        // Refresh or install the host-cache entry (memory permitting).
        let expires = now + self.config.host_cache_ttl;
        if let Some(entry) = self.host_cache.get_mut(&key) {
            entry.expires = expires;
        } else if let Ok(host_lease) = self.cluster.reserve_host(server, bytes) {
            self.host_cache.insert(
                key,
                HostCacheEntry {
                    server,
                    lease: host_lease,
                    expires,
                },
            );
        }
        self.provisioner.release(gpu, now);
        self.ledger.record_release(now);
        self.gpus_in_use.remove(&gpu);
    }

    pub(super) fn expire_host_cache(&mut self, now: SimTime) {
        let expired: Vec<(u32, u32)> = self
            .host_cache
            .iter()
            .filter(|(_, e)| e.expires <= now)
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            if let Some(e) = self.host_cache.remove(&key) {
                let _ = self.cluster.release(e.lease);
            }
        }
    }

    /// Initiates an inflight refactor of `id` toward `plan`.
    ///
    /// The old topology keeps serving during `plan.prepare`; the switchover
    /// pauses the instance for `plan.pause`; afterwards the new topology is
    /// live with KV preserved.
    pub fn refactor(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        plan: RefactorPlan,
    ) -> Result<(), ActionError> {
        let now = queue.now();
        let inst = self
            .instances
            .get(&id)
            .ok_or(ActionError::BadInstance(id))?;
        // Crippled instances refactor too: that is the inflight recovery
        // path — surviving stages are reused, dead ones land on fresh
        // devices, and no cold respawn happens.
        if !matches!(inst.state, InstanceState::Serving | InstanceState::Crippled) {
            return Err(ActionError::BadInstance(id));
        }
        if plan.new_ranges.len() != plan.assignments.len() {
            return Err(ActionError::BadPlan(
                "assignment/range length mismatch".into(),
            ));
        }
        // Validate assignments: reuse indices in range and unique; fresh
        // GPUs unused and not duplicated.
        let mut reuse_seen = std::collections::HashSet::new();
        let mut fresh_seen = std::collections::HashSet::new();
        for a in &plan.assignments {
            match *a {
                StageAssign::Reuse { old_index } => {
                    if old_index as usize >= inst.stages.len() || !reuse_seen.insert(old_index) {
                        return Err(ActionError::BadPlan(format!("bad reuse {old_index}")));
                    }
                }
                StageAssign::Fresh { gpu } => {
                    if self.gpus_in_use.contains(&gpu)
                        || self.cluster.is_revoked(gpu)
                        || !fresh_seen.insert(gpu)
                    {
                        return Err(ActionError::NoCapacity(format!("gpu {gpu:?} unavailable")));
                    }
                }
            }
        }
        // Acquire fresh GPUs now; they provision and load during prepare.
        let mut fresh_acquired = Vec::new();
        for a in &plan.assignments {
            if let StageAssign::Fresh { gpu } = *a {
                self.provisioner.acquire(gpu, now);
                self.ledger.record_acquire(now);
                self.gpus_in_use.insert(gpu);
                fresh_acquired.push(gpu);
            }
        }
        let epoch = inst.epoch;
        let prepare = plan.prepare;
        let from_crippled = inst.state == InstanceState::Crippled;
        let from_stages = inst.stages.len() as u32;
        let to_stages = plan.new_ranges.len() as u32;
        self.pending_refactors.insert(
            id,
            PendingRefactor {
                plan,
                fresh_acquired,
                from_crippled,
            },
        );
        let inst = self.instances.get_mut(&id).expect("checked above");
        inst.state = InstanceState::Preparing;
        if from_crippled {
            // A normal refactor keeps serving on the complete old topology
            // during preparation; a crippled rebuild has no complete
            // topology to serve on. Hold admissions until the commit
            // (which clears the hold) so requests never traverse a
            // pipeline with missing layers.
            inst.admit_hold = true;
        }
        self.reindex(id);
        self.obs.record(
            now,
            TraceEvent::RefactorPrepare {
                instance: id.0,
                from_stages,
                to_stages,
            },
        );
        queue
            .schedule(now + prepare, Event::PrepareDone { id, epoch })
            .expect("future");
        Ok(())
    }

    pub(super) fn on_prepare_done(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
    ) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.epoch != epoch || inst.state != InstanceState::Preparing {
            return;
        }
        inst.state = InstanceState::Paused;
        self.obs
            .record(queue.now(), TraceEvent::RefactorPause { instance: id.0 });
        self.reindex(id);
        let pause = self
            .pending_refactors
            .get(&id)
            .map(|p| p.plan.pause)
            .unwrap_or(SimDuration::ZERO);
        self.refactor_pause_secs += pause.as_secs_f64();
        queue
            .schedule(queue.now() + pause, Event::PauseDone { id, epoch })
            .expect("future");
    }

    pub(super) fn on_pause_done(
        &mut self,
        queue: &mut EventQueue<Event>,
        id: InstanceId,
        epoch: u64,
    ) {
        let now = queue.now();
        let Some(pending) = self.pending_refactors.remove(&id) else {
            return;
        };
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        if inst.epoch != epoch || inst.state != InstanceState::Paused {
            return;
        }
        let plan = pending.plan;

        // Compute the per-stage available memory: a reused device offers
        // its current free memory plus the old lease being replaced; a
        // fresh device offers its free memory.
        let old_stages: Vec<(GpuId, LeaseId, OpRange)> = inst
            .stages
            .iter()
            .map(|s| (s.gpu, s.lease, s.range))
            .collect();
        let target_gpu = |a: &StageAssign| -> GpuId {
            match *a {
                StageAssign::Reuse { old_index } => old_stages[old_index as usize].0,
                StageAssign::Fresh { gpu } => gpu,
            }
        };
        let mut batch_cap = u32::MAX;
        for (a, &r) in plan.assignments.iter().zip(&plan.new_ranges) {
            let gpu = target_gpu(a);
            let mut avail = self.cluster.free_mem(gpu);
            if let StageAssign::Reuse { old_index } = *a {
                avail += self
                    .cluster
                    .lease(old_stages[old_index as usize].1)
                    .map(|l| l.bytes)
                    .unwrap_or(0);
            }
            batch_cap = batch_cap.min(self.max_batch_of(r, avail));
        }
        // A fresh device that is revoked, past its preemption deadline, or
        // named by a zero-grace scripted revocation firing at this same
        // virtual instant is doomed: committing onto it would race the
        // revocation's cancellation of this very refactor, and the
        // same-time pop order of PauseDone vs the revocation would decide
        // between RefactorCommit-then-Crippled and RefactorAbort. Abort
        // deterministically instead — exactly what `apply_revocation` does
        // when it pops first — so the two orders commute.
        let fresh_doomed = plan.assignments.iter().any(
            |a| matches!(*a, StageAssign::Fresh { gpu } if self.fresh_target_doomed(now, gpu)),
        );
        if fresh_doomed || batch_cap < (inst.active_requests / 2).max(1) {
            // Abort: the new layout sits on doomed capacity, or cannot
            // hold a useful share of the live load (background tenants
            // grew under us, a consolidation raced an admission burst, or
            // a second revocation killed the rebuild's fresh devices).
            // Return fresh GPUs and resume the old topology untouched —
            // unless the refactor was a crippled rebuild, whose "old
            // topology" is incomplete and must stay Crippled (the policy
            // retries or cold-respawns).
            for gpu in pending.fresh_acquired {
                self.provisioner.release(gpu, now);
                self.ledger.record_release(now);
                self.gpus_in_use.remove(&gpu);
            }
            self.obs
                .record(now, TraceEvent::RefactorAbort { instance: id.0 });
            if pending.from_crippled {
                // A failed rebuild has no complete topology to fall back
                // to, and no later hook retries an abort: release the
                // survivors (their parameters park in the host cache) so
                // the policy's scaling loop rebuilds capacity through its
                // normal spawn path instead of stranding the instance —
                // and its GPUs — in Crippled forever.
                self.release_instance(now, id);
            } else {
                let inst = self.instances.get_mut(&id).expect("present");
                inst.state = InstanceState::Serving;
                self.reindex(id);
                self.resume_instance(queue, id);
            }
            return;
        }

        // Commit: release every old lease, then reserve the new layout.
        let reused: std::collections::HashSet<u32> = plan
            .assignments
            .iter()
            .filter_map(|a| match *a {
                StageAssign::Reuse { old_index } => Some(old_index),
                _ => None,
            })
            .collect();
        for (i, &(gpu, lease, range)) in old_stages.iter().enumerate() {
            if reused.contains(&(i as u32)) {
                let _ = self.cluster.release(lease);
            } else {
                // Device leaves the instance entirely.
                self.release_stage_device(now, gpu, lease, range);
            }
        }
        let mut new_stages = Vec::with_capacity(plan.new_ranges.len());
        for (a, &r) in plan.assignments.iter().zip(&plan.new_ranges) {
            let gpu = target_gpu(a);
            let bytes = self.stage_mem_of(r, batch_cap);
            let lease = self
                .cluster
                .reserve_gpu(gpu, bytes)
                .expect("fit checked via batch_cap computation");
            new_stages.push(StageRuntime {
                range: r,
                gpu,
                lease,
                busy: false,
                input_decode: VecDeque::new(),
                input_prefill: VecDeque::new(),
                decode_streak: 0,
            });
        }

        let inst = self.instances.get_mut(&id).expect("present");
        inst.stages = new_stages;
        inst.batch_cap = batch_cap;
        inst.state = InstanceState::Serving;
        inst.admit_hold = false;
        inst.epoch += 1;
        let new_epoch = inst.epoch;
        let ubs = inst.ubatches.clone();
        self.reindex(id);
        self.refactors += 1;
        self.obs.record(
            now,
            TraceEvent::RefactorCommit {
                instance: id.0,
                stages: plan.new_ranges.len() as u32,
                epoch: new_epoch,
            },
        );

        // Relaunch live micro-batches at stage 0 of the new topology; their
        // KV caches were kept consistent by the §6.3 protocol, so decode
        // continues from the current token positions. Membership (and
        // therefore the decode-slot count) is unchanged.
        for ub_id in ubs {
            if let Some(ub) = self.ubatches.get_mut(&ub_id) {
                ub.pass_started = now;
                ub.pass_compute_secs = 0.0;
                ub.pass_comm_secs = 0.0;
                queue.schedule_now(Event::StageArrive {
                    id,
                    epoch: new_epoch,
                    stage: 0,
                    ub: ub_id,
                });
            }
        }
    }
}
