//! Capacity disruption handling: revocation execution, rescue accounting,
//! capacity restores, preemption grace windows and recovery tracking.
//!
//! The hot-server query that resolves rank-targeted preemptions reads the
//! cluster's incrementally maintained server-load ranking
//! ([`flexpipe_cluster::ServerLoadIndex`], updated on every serving-lease
//! change) on the indexed path — O(rank + log servers) instead of
//! rebuilding and sorting the full server list per query. The naive
//! rebuild is retained under [`EngineMode::NaiveScan`] and cross-checked
//! in debug builds on every consultation.

use std::collections::BTreeSet;

use flexpipe_chaos::Disruption;
use flexpipe_cluster::{GpuId, ServerId};
use flexpipe_obs::TraceEvent;
use flexpipe_sim::{EventQueue, SimDuration, SimTime};
use flexpipe_workload::RequestId;

use crate::admission::EngineMode;
use crate::instance::{InstanceId, InstanceState, Phase};
use crate::policy::{CrippledInstance, DisruptionNotice, StageAssign};

use super::{Engine, EngineState, Event};

impl EngineState {
    /// Resolves the `rank`-th busiest server by serving-leased bytes
    /// (ties toward the lowest id), skipping fully revoked servers.
    ///
    /// Dispatches on the engine mode: the indexed path reads the cluster's
    /// server-load ranking, the naive path rebuilds and sorts. Both are
    /// bit-identical; debug builds assert it on every query.
    pub(super) fn hottest_server(&self, rank: u32) -> Option<ServerId> {
        let picked = match self.config.admission {
            EngineMode::Indexed => self.cluster.nth_hottest_server(rank),
            EngineMode::NaiveScan => self.hottest_server_naive(rank),
        };
        debug_assert_eq!(
            picked,
            self.hottest_server_naive(rank),
            "server-load index diverged from the naive ranking at rank {rank}"
        );
        debug_assert_eq!(
            picked,
            self.cluster.nth_hottest_server(rank),
            "naive server ranking diverged from the load index at rank {rank}"
        );
        picked
    }

    /// The retained naive reference: rebuild the (bytes, server) list and
    /// sort it per query — O(servers × GPUs + servers log servers).
    fn hottest_server_naive(&self, rank: u32) -> Option<ServerId> {
        let topo = self.cluster.topology();
        let mut servers: Vec<(u64, ServerId)> = (0..topo.server_count() as u32)
            .map(ServerId)
            .filter(|&s| topo.gpus_on(s).iter().any(|&g| !self.cluster.is_revoked(g)))
            .map(|s| {
                let bytes: u64 = topo
                    .gpus_on(s)
                    .iter()
                    .map(|&g| self.cluster.load(g).serving_mem)
                    .sum();
                (bytes, s)
            })
            .collect();
        servers.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        servers.get(rank as usize).map(|&(_, s)| s)
    }

    /// Whether a refactor's fresh target device is doomed at `now`: already
    /// revoked, past a preemption deadline, or named by a zero-grace
    /// scripted revocation firing at this same virtual instant (whose
    /// `Disruption` pop may still be behind us in the same-time batch).
    ///
    /// This is what makes the refactor commit commute with a same-instant
    /// revocation of its fresh device: whichever pops first, the refactor
    /// aborts — `apply_revocation` cancels it outright, and
    /// [`EngineState::on_pause_done`] consults this predicate instead of
    /// committing a stage onto a device that is gone in the same instant.
    /// (A zero-grace `HotServerPreempt` stays rank-resolved at its own pop
    /// and is not predicted here; no committed scenario overlaps one with
    /// a commit instant.)
    pub(super) fn fresh_target_doomed(&self, now: SimTime, gpu: GpuId) -> bool {
        if self.cluster.is_revoked(gpu) {
            return true;
        }
        if self
            .pending_revocations
            .get(&gpu)
            .is_some_and(|&deadline| deadline <= now)
        {
            return true;
        }
        let server = self.cluster.topology().gpu(gpu).server;
        self.script.events.iter().any(|ev| {
            let at = SimTime::from_secs_f64(ev.at_secs.max(0.0));
            if at != now || at >= self.horizon {
                return false;
            }
            match ev.kind {
                Disruption::GpuFail { gpu: g } => GpuId(g) == gpu,
                Disruption::ServerPreempt {
                    server: s,
                    grace_secs,
                } => grace_secs <= 0.0 && ServerId(s) == server,
                _ => false,
            }
        })
    }

    /// Executes a capacity revocation: invalidates cluster state, evicts
    /// the devices from the provisioner, kills in-flight micro-batches on
    /// dead stages (epoch-guarded, so their stale events no-op) and
    /// replays the destroyed requests at the gateway front. Returns the
    /// notice handed to the policy.
    pub(super) fn apply_revocation(
        &mut self,
        queue: &mut EventQueue<Event>,
        gpus: &[GpuId],
    ) -> DisruptionNotice {
        let now = queue.now();
        let mut revoked: Vec<GpuId> = Vec::new();
        for &g in gpus {
            if self.cluster.is_revoked(g) {
                continue;
            }
            self.cluster.revoke_gpu(g);
            revoked.push(g);
            if self.gpus_in_use.remove(&g) {
                self.ledger.record_release(now);
            }
            self.provisioner.evict(g);
            self.pending_revocations.remove(&g);
        }
        if revoked.is_empty() {
            return DisruptionNotice {
                revoked_gpus: revoked,
                crippled: Vec::new(),
            };
        }

        // A fully revoked server takes its host-memory parameter cache
        // down with it.
        let dead_servers: BTreeSet<ServerId> = revoked
            .iter()
            .map(|&g| self.cluster.topology().gpu(g).server)
            .filter(|&s| {
                self.cluster
                    .topology()
                    .gpus_on(s)
                    .iter()
                    .all(|&g| self.cluster.is_revoked(g))
            })
            .collect();
        for &s in &dead_servers {
            self.cluster.revoke_host(s);
        }
        self.host_cache
            .retain(|_, e| !dead_servers.contains(&e.server));

        // A pending refactor whose *plan* targets a revoked device is
        // void — even on instances that are not wounded. Cancel it
        // outright: leaving the stale `Fresh` assignment in place would
        // let a capacity *restore* before PauseDone commit a stage onto a
        // device nobody tracks as in use. Remaining fresh acquisitions
        // return to the pool (revoked ones were already evicted above).
        let cancelled: Vec<InstanceId> = self
            .pending_refactors
            .iter()
            .filter(|(_, p)| {
                p.plan
                    .assignments
                    .iter()
                    .any(|a| matches!(a, StageAssign::Fresh { gpu } if revoked.contains(gpu)))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in cancelled {
            let pending = self.pending_refactors.remove(&id).expect("listed above");
            for g in pending.fresh_acquired {
                if revoked.contains(&g) {
                    continue;
                }
                self.provisioner.release(g, now);
                if self.gpus_in_use.remove(&g) {
                    self.ledger.record_release(now);
                }
            }
            let Some(inst) = self.instances.get_mut(&id) else {
                continue;
            };
            if inst.stages.iter().any(|s| revoked.contains(&s.gpu)) {
                // The instance itself is wounded too: the wound loop
                // below owns its state transition.
                continue;
            }
            // The revocation aborted this refactor even though the
            // instance survives; record the abort so trace consumers (the
            // schedule-equivalence checker in particular) can see the
            // cancel-vs-commit race instead of a silent no-op.
            self.obs
                .record(now, TraceEvent::RefactorAbort { instance: id.0 });
            if pending.from_crippled {
                // A cancelled rebuild leaves no complete topology and no
                // retry hook: release the survivors so the policy's
                // scaling loop replaces the capacity.
                self.release_instance(now, id);
            } else {
                // The complete old topology kept serving during
                // preparation; resume it. The already-scheduled
                // PrepareDone/PauseDone events no-op (state mismatch /
                // missing pending entry).
                inst.state = InstanceState::Serving;
                self.reindex(id);
                self.resume_instance(queue, id);
                self.launch_decode(queue, id);
            }
        }

        // Wound every instance with a stage on a revoked device.
        let wounded: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|(_, i)| i.stages.iter().any(|s| revoked.contains(&s.gpu)))
            .map(|(&id, _)| id)
            .collect();
        let mut crippled = Vec::new();
        for id in wounded {
            // A refactor in flight toward a now-dead device is void: its
            // fresh acquisitions return to the pool.
            if let Some(pending) = self.pending_refactors.remove(&id) {
                for g in pending.fresh_acquired {
                    self.provisioner.release(g, now);
                    if self.gpus_in_use.remove(&g) {
                        self.ledger.record_release(now);
                    }
                }
            }
            let inst = self.instances.get_mut(&id).expect("listed above");
            inst.epoch += 1; // stale StageArrive/StageDone/Prepare/Pause events drop
            let original = inst.stages.len() as u32;
            let prior_state = inst.state;

            // Collect the requests whose progress dies with the stages:
            // everything admitted to this instance (KV spans all stages,
            // losing one loses the layers it held).
            let mut rids: Vec<RequestId> = inst.decode_ready.drain(..).collect();
            let mut lost: u64 = 0;
            for ub_id in std::mem::take(&mut inst.ubatches) {
                if let Some(ub) = self.ubatches.remove(&ub_id) {
                    if ub.phase == Phase::Prefill {
                        // Prompt tokens already prefilled by earlier chunks.
                        let total: u64 = ub
                            .members
                            .iter()
                            .map(|r| u64::from(self.reqs[r.0 as usize].req.prompt_tokens))
                            .sum();
                        lost += total.saturating_sub(ub.prefill_remaining + ub.pass_tokens);
                    }
                    rids.extend(ub.members);
                }
            }
            // Every in-flight micro-batch (decode ones included) just
            // dissolved with the list above.
            inst.decode_slots.reset();
            rids.sort_unstable();
            rids.dedup();
            for &rid in &rids {
                let r = &mut self.reqs[rid.0 as usize];
                if r.prefill_done.is_some() {
                    lost += u64::from(r.req.prompt_tokens);
                }
                lost += u64::from(r.generated);
                r.generated = 0;
                r.prefill_done = None;
                r.admitted = None;
            }
            // Replay at the gateway *front*, oldest first: these are the
            // system's oldest outstanding requests.
            for &rid in rids.iter().rev() {
                self.gateway.push_front(rid);
            }
            inst.active_requests = 0;
            for &rid in &rids {
                self.obs.record(
                    now,
                    TraceEvent::RequestAbort {
                        req: rid.0,
                        instance: id.0,
                    },
                );
            }

            self.disruptions.record_aborted(rids.len() as u32);
            self.disruptions.record_replayed(rids.len() as u32);
            self.disruptions.record_tokens_lost(lost);

            match prior_state {
                InstanceState::Loading => {
                    // Parameters never finished loading, so the surviving
                    // devices hold nothing worth keeping: the spawn is a
                    // total loss. Release survivors raw — no host-cache
                    // parking of parameters that were never resident — and
                    // do not report the instance as crippled (there is
                    // nothing to rebuild around; the policy's scaling loop
                    // re-spawns through its normal path).
                    let inst = self.instances.remove(&id).expect("listed above");
                    for s in inst.stages {
                        if revoked.contains(&s.gpu) {
                            continue;
                        }
                        let _ = self.cluster.release(s.lease);
                        self.provisioner.release(s.gpu, now);
                        if self.gpus_in_use.remove(&s.gpu) {
                            self.ledger.record_release(now);
                        }
                    }
                }
                InstanceState::Draining => {
                    // The policy already decided to shed this instance;
                    // the revocation merely finishes the job. Complete the
                    // retirement (survivors park their parameters) instead
                    // of resurrecting capacity the policy did not want.
                    let inst = self.instances.get_mut(&id).expect("listed above");
                    inst.stages.retain(|s| !revoked.contains(&s.gpu));
                    self.release_instance(now, id);
                }
                _ => {
                    // Dead stages vanish (their leases were invalidated by
                    // the cluster); survivors keep devices and parameters
                    // but clear transient pass state.
                    let inst = self.instances.get_mut(&id).expect("listed above");
                    let stages = std::mem::take(&mut inst.stages);
                    inst.stages = stages
                        .into_iter()
                        .filter(|s| !revoked.contains(&s.gpu))
                        .map(|mut s| {
                            s.busy = false;
                            s.input_decode.clear();
                            s.input_prefill.clear();
                            s.decode_streak = 0;
                            s
                        })
                        .collect();
                    inst.state = InstanceState::Crippled;
                    let surviving = self.instances[&id].stages.len() as u32;
                    crippled.push(CrippledInstance {
                        id,
                        original_stages: original,
                        surviving_stages: surviving,
                    });
                    self.obs.record(
                        now,
                        TraceEvent::InstanceCrippled {
                            instance: id.0,
                            original_stages: original,
                            surviving_stages: surviving,
                        },
                    );
                }
            }
            // Every arm above changed admissibility (active_requests
            // cleared, state moved or the instance vanished): re-key.
            self.reindex(id);
        }
        self.disruptions
            .record_revocation(now, revoked.len() as u32);
        self.obs.record(
            now,
            TraceEvent::Revocation {
                gpus: revoked.len() as u32,
            },
        );
        DisruptionNotice {
            revoked_gpus: revoked,
            crippled,
        }
    }

    /// Restores previously revoked devices to the pool (cold elastic; the
    /// policy re-acquires them through its normal scaling path). Returns
    /// how many devices actually came back.
    pub(super) fn restore_capacity(&mut self, gpus: &[GpuId]) -> u32 {
        let mut restored = 0u32;
        for &g in gpus {
            if self.cluster.is_revoked(g) {
                self.cluster.restore_gpu(g);
                restored += 1;
            }
        }
        self.disruptions.record_restored(restored);
        restored
    }

    /// Closes open recovery windows once the deployment is back to full
    /// service: nothing mid-lifecycle (loading / preparing / paused /
    /// crippled) and at least one instance serving.
    pub(super) fn maybe_close_recoveries(&mut self, now: SimTime) {
        if !self.disruptions.has_open() {
            return;
        }
        let any_serving = self
            .instances
            .values()
            .any(|i| i.state == InstanceState::Serving);
        let in_flux = self.instances.values().any(|i| {
            matches!(
                i.state,
                InstanceState::Loading
                    | InstanceState::Preparing
                    | InstanceState::Paused
                    | InstanceState::Crippled
            )
        });
        if any_serving && !in_flux {
            self.disruptions.close_open(now);
            self.obs.record(now, TraceEvent::RecoveryClosed);
        }
    }
}

impl Engine {
    /// Fires scripted disruption `idx`.
    pub(super) fn on_disruption_event(&mut self, queue: &mut EventQueue<Event>, idx: usize) {
        let Some(event) = self.state.script.events.get(idx).cloned() else {
            return;
        };
        match event.kind {
            Disruption::GpuFail { gpu } => {
                // Hardware loss: no grace, no notice.
                self.execute_revocation(queue, vec![GpuId(gpu)]);
            }
            Disruption::ServerPreempt { server, grace_secs } => {
                let gpus = self.server_gpus(ServerId(server));
                self.preempt(queue, gpus, SimDuration::from_secs_f64(grace_secs.max(0.0)));
            }
            Disruption::HotServerPreempt { rank, grace_secs } => {
                let Some(server) = self.state.hottest_server(rank) else {
                    return;
                };
                let gpus = self.server_gpus(server);
                self.preempt(queue, gpus, SimDuration::from_secs_f64(grace_secs.max(0.0)));
            }
            Disruption::CapacityReturn { gpus, servers } => {
                let mut targets: Vec<GpuId> = gpus.into_iter().map(GpuId).collect();
                for s in servers {
                    targets.extend(self.server_gpus(ServerId(s)));
                }
                targets.sort_unstable();
                targets.dedup();
                // Routed through the queue like revocations, so restores
                // interleave deterministically with same-instant events.
                queue.schedule_now(Event::Restore { gpus: targets });
            }
            Disruption::RateSurge { .. } => {}
        }
    }

    fn server_gpus(&self, server: ServerId) -> Vec<GpuId> {
        self.state.cluster.topology().gpus_on(server).to_vec()
    }

    /// Announces a preemption: with grace, the policy gets the notice now
    /// and the revocation fires at the deadline; without, it fires
    /// immediately.
    fn preempt(&mut self, queue: &mut EventQueue<Event>, gpus: Vec<GpuId>, grace: SimDuration) {
        let gpus: Vec<GpuId> = gpus
            .into_iter()
            .filter(|&g| !self.state.cluster.is_revoked(g))
            .collect();
        if gpus.is_empty() {
            return;
        }
        if grace == SimDuration::ZERO {
            self.execute_revocation(queue, gpus);
            return;
        }
        let deadline = queue.now() + grace;
        for &g in &gpus {
            self.state.pending_revocations.insert(g, deadline);
        }
        self.state.obs.record(
            queue.now(),
            TraceEvent::RevokeNotice {
                gpus: gpus.len() as u32,
                deadline_secs: deadline.as_secs_f64(),
            },
        );
        queue
            .schedule(deadline, Event::Revoke { gpus: gpus.clone() })
            .expect("future");
        self.with_policy(queue, |p, ctx| p.on_revoke_notice(ctx, &gpus, deadline));
    }

    /// Revokes capacity now and lets the policy rebuild.
    pub(super) fn execute_revocation(&mut self, queue: &mut EventQueue<Event>, gpus: Vec<GpuId>) {
        let notice = self.state.apply_revocation(queue, &gpus);
        if notice.revoked_gpus.is_empty() {
            return;
        }
        self.with_policy(queue, |p, ctx| p.on_disruption(ctx, &notice));
        self.state.drain_gateway(queue);
        self.state.maybe_close_recoveries(queue.now());
    }
}
