//! A step-controllable engine driver for schedule exploration.
//!
//! [`SteppedEngine`] replicates the [`flexpipe_sim::run`] loop exactly, but
//! hands control of *same-virtual-time ordering* to the caller: at every
//! step the caller reads the front batch of events tied at the earliest
//! firing time and picks which one fires next. Choosing index 0 at every
//! step reproduces `Engine::run_observed` bit for bit (canonical insertion
//! order); any other choice explores an alternative schedule of the same
//! virtual instant. `flexpipe-check` builds its bounded interleaving
//! exploration on this seam.

use flexpipe_sim::{EventQueue, RunOutcome, World};

use super::{Engine, Event, ObservedRun};

/// Drives an [`Engine`] one event at a time with caller-chosen tie order.
pub struct SteppedEngine {
    engine: Engine,
    queue: EventQueue<Event>,
    steps: u64,
    outcome: Option<RunOutcome>,
}

impl SteppedEngine {
    /// Primes `engine` (policy init + seed events) without firing anything.
    pub fn new(mut engine: Engine) -> SteppedEngine {
        let mut queue: EventQueue<Event> = EventQueue::new();
        engine.prime(&mut queue);
        SteppedEngine {
            engine,
            queue,
            steps: 0,
            outcome: None,
        }
    }

    /// The same-virtual-time batch at the queue front, in canonical
    /// insertion order (index 0 is what the canonical run would fire
    /// next). Empty once the run has ended.
    pub fn batch(&self) -> Vec<&Event> {
        if self.outcome.is_some() {
            return Vec::new();
        }
        self.queue.front_batch()
    }

    /// Events fired so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The run outcome, once the loop has ended.
    pub fn outcome(&self) -> Option<RunOutcome> {
        self.outcome
    }

    /// Fires the `choice`-th event of the front batch (insertion order)
    /// and returns its kind, or `None` once the run is over (recording
    /// the outcome exactly as [`flexpipe_sim::run`] would).
    ///
    /// # Panics
    ///
    /// Panics when `choice` is out of range for a non-empty front batch;
    /// exploration drivers must read [`SteppedEngine::batch`] first.
    pub fn step(&mut self, choice: usize) -> Option<&'static str> {
        if self.outcome.is_some() {
            return None;
        }
        let horizon = self.engine.state.horizon;
        if self.steps >= self.engine.state.config.max_events {
            self.outcome = Some(RunOutcome::StepBudgetExhausted);
            return None;
        }
        match self.queue.peek_time() {
            Some(t) if t <= horizon => {
                let (now, event) = self
                    .queue
                    .pop_tied(choice)
                    .expect("schedule choice out of range for the front batch");
                let kind = event.kind();
                self.engine.handle(now, event, &mut self.queue);
                self.steps += 1;
                Some(kind)
            }
            _ => {
                // Mirror the run loop's terminal `pop_until`: it advances
                // the clock to the deadline before reporting the outcome.
                let drained = self.queue.pop_until(horizon);
                debug_assert!(drained.is_none(), "peeked later than the horizon");
                self.outcome = Some(if self.queue.is_empty() {
                    RunOutcome::Drained {
                        at: self.queue.now(),
                    }
                } else {
                    RunOutcome::DeadlineReached
                });
                None
            }
        }
    }

    /// Fires remaining events in canonical order until the run ends.
    pub fn run_to_end(&mut self) {
        while self.step(0).is_some() {}
    }

    /// Finishes the run (canonical order for any remaining events) and
    /// folds it into the same artifacts `Engine::run_observed` returns.
    pub fn finish(mut self) -> ObservedRun {
        self.run_to_end();
        let outcome = self.outcome.expect("run_to_end sets the outcome");
        self.engine.finish_observed(outcome, self.steps)
    }
}
