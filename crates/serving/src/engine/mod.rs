//! The serving engine: a discrete-event world executing pipelined LLM
//! inference over the simulated cluster under a pluggable control policy.
//!
//! Mechanism lives here (micro-batch passes, admission, instance
//! lifecycle, refactor execution, host-memory parameter cache); decisions
//! live in [`crate::policy::ControlPolicy`] implementations.
//!
//! # Layering
//!
//! The engine is a module tree, one layer per concern:
//!
//! - `mod.rs` (this file) — the [`Event`] vocabulary, [`Scenario`],
//!   [`EngineState`] (all mutable state) with its read-side accessors,
//!   the [`Engine`] event loop and the policy-facing [`Ctx`];
//! - `lifecycle` — spawn / ready / retire / release, the inflight
//!   refactor state machine (prepare → pause → commit/abort) and the
//!   host-memory parameter cache;
//! - `exec` — micro-batch execution: stage scheduling, pass completion,
//!   continuous-batching decode dispatch and gateway admission;
//! - `disruption` — capacity revocation, rescue accounting, restores
//!   and recovery-window tracking;
//! - [`indexes`] — the incrementally maintained hot-path structures
//!   ([`indexes::DecodeSlotTracker`] here; the admission index lives in
//!   [`crate::admission`], the server-load ranking in the cluster crate,
//!   the memoized Table-2 rows in the model crate) plus the deterministic
//!   churn harnesses that prove and measure them.
//!
//! Every hot path is governed by one engine-wide [`EngineMode`]
//! ([`crate::config::EngineConfig::admission`]): `Indexed` reads the
//! incremental structures, `NaiveScan` the retained reference scans. The
//! two are bit-identical by construction and cross-checked by debug-build
//! validators on every consultation — the mode changes wall-clock only.

mod disruption;
mod exec;
pub mod indexes;
mod lifecycle;
mod live;
mod stepped;

pub use live::LiveEngine;
pub use stepped::SteppedEngine;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use flexpipe_chaos::{Disruption, DisruptionScript};
use flexpipe_cluster::{
    BackgroundProfile, BackgroundTenants, Cluster, ClusterSpec, GpuId, LeaseId, Provisioner,
    ServerId, TierConfig, TransferEngine,
};
use flexpipe_metrics::{DisruptionLedger, OutcomeLog, Timeline, UtilizationLedger};
use flexpipe_model::{CostModel, MaxBatchTable, ModelGraph, OpRange};
use flexpipe_obs::{Profiler, TraceEvent, TraceMode, TraceRecorder};
use flexpipe_partition::GranularityLattice;
use flexpipe_sim::{EventQueue, RunOutcome, SimRng, SimTime, World};
use flexpipe_workload::{CvEstimator, Request, RequestId, Workload};

use crate::admission::{AdmissionIndex, EngineMode};
use crate::config::EngineConfig;
use crate::instance::{
    Instance, InstanceId, InstanceSnapshot, InstanceState, MicroBatch, UbatchId,
};
use crate::policy::{ActionError, ControlPolicy, Placement, RefactorPlan};
use crate::report::RunReport;

/// Events routed through the simulation queue.
#[derive(Debug, Clone)]
pub enum Event {
    /// Request `workload[i]` arrives at the gateway.
    Arrival(u32),
    /// Periodic control-loop invocation.
    ControlTick,
    /// Background fragmentation churn step.
    Churn,
    /// An instance finished loading parameters.
    InstanceReady {
        /// Target instance.
        id: InstanceId,
        /// Epoch the event belongs to.
        epoch: u64,
    },
    /// A micro-batch reaches a stage's input queue.
    StageArrive {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
        /// Stage index.
        stage: u16,
        /// The micro-batch.
        ub: UbatchId,
    },
    /// A stage finishes computing a micro-batch pass.
    StageDone {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
        /// Stage index.
        stage: u16,
        /// The micro-batch.
        ub: UbatchId,
    },
    /// A refactor's background preparation completes (switchover begins).
    PrepareDone {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
    },
    /// A refactor's switchover pause completes (new topology live).
    PauseDone {
        /// Target instance.
        id: InstanceId,
        /// Epoch guard.
        epoch: u64,
    },
    /// A scripted disruption fires (index into the scenario's script).
    Disruption(u32),
    /// A preemption's grace expired (or a failure had none): the listed
    /// devices are revoked *now*.
    Revoke {
        /// Devices leaving the cluster.
        gpus: Vec<GpuId>,
    },
    /// Previously revoked capacity returns to the pool.
    Restore {
        /// Devices re-entering the cluster.
        gpus: Vec<GpuId>,
    },
    /// A deferred policy decision (scheduled via [`Ctx::defer_action`])
    /// pops as its own queue event, making control-plane decisions
    /// first-class schedule choice points for the equivalence checker.
    PolicyAction {
        /// Policy-defined discriminator for the deferred decision.
        tag: u32,
    },
}

impl Event {
    /// Stable label per variant, used as the profiler's dispatch-scope
    /// key and in observability summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Arrival(_) => "arrival",
            Event::ControlTick => "control_tick",
            Event::Churn => "churn",
            Event::InstanceReady { .. } => "instance_ready",
            Event::StageArrive { .. } => "stage_arrive",
            Event::StageDone { .. } => "stage_done",
            Event::PrepareDone { .. } => "prepare_done",
            Event::PauseDone { .. } => "pause_done",
            Event::Disruption(_) => "disruption",
            Event::Revoke { .. } => "revoke",
            Event::Restore { .. } => "restore",
            Event::PolicyAction { .. } => "policy_action",
        }
    }
}

/// Scenario description bundling everything an engine run needs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Engine tunables.
    pub config: EngineConfig,
    /// Cluster to simulate.
    pub cluster: ClusterSpec,
    /// Background fragmentation profile.
    pub background: BackgroundProfile,
    /// Dual-tier provisioning parameters.
    pub tier: TierConfig,
    /// Calibrated cost model.
    pub cost: CostModel,
    /// The request stream.
    pub workload: Workload,
    /// Timed cluster disruptions (preemptions, failures, restores). Rate
    /// surges are a workload-generation concern and are ignored here; use
    /// [`flexpipe_chaos::warp_arrivals`] on the workload instead.
    pub disruptions: DisruptionScript,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Root random seed.
    pub seed: u64,
}

pub(super) struct ReqRuntime {
    pub(super) req: Request,
    pub(super) admitted: Option<SimTime>,
    pub(super) prefill_done: Option<SimTime>,
    pub(super) generated: u32,
    pub(super) exec_secs: f64,
    pub(super) comm_secs: f64,
    pub(super) done: bool,
}

pub(super) struct HostCacheEntry {
    pub(super) server: ServerId,
    pub(super) lease: LeaseId,
    pub(super) expires: SimTime,
}

pub(super) struct PendingRefactor {
    pub(super) plan: RefactorPlan,
    pub(super) fresh_acquired: Vec<GpuId>,
    /// Whether the refactor entered from `Crippled` (a post-revocation
    /// rebuild): the "old topology" is incomplete, so the instance must
    /// not admit during preparation, and an abort must return it to
    /// `Crippled` rather than resurrect a partial pipeline as `Serving`.
    pub(super) from_crippled: bool,
}

/// All mutable engine state (separated from the policy for borrow hygiene).
pub struct EngineState {
    pub(crate) config: EngineConfig,
    pub(crate) graph: Arc<ModelGraph>,
    pub(crate) cost: CostModel,
    pub(crate) lattice: Arc<GranularityLattice>,
    pub(crate) cluster: Cluster,
    pub(crate) transfer: TransferEngine,
    pub(crate) provisioner: Provisioner,
    pub(crate) tier: TierConfig,
    pub(super) bg: BackgroundTenants,
    pub(super) workload: Arc<Vec<Request>>,
    pub(super) gateway: VecDeque<RequestId>,
    pub(super) reqs: Vec<ReqRuntime>,
    pub(super) instances: BTreeMap<InstanceId, Instance>,
    /// Incrementally maintained index over admissible instances (the
    /// high-rate fast path). Every mutation of an instance's state,
    /// capacity, live-request count or admit hold re-keys it via
    /// [`EngineState::reindex`]; [`EngineState::drain_gateway`] selects
    /// from it in O(log instances) instead of rescanning.
    pub(super) admission: AdmissionIndex,
    /// Memoized Table-2 rows ([`MaxBatchTable`]): spawn- and refactor-time
    /// `max_batch` / `stage_mem_bytes` queries reuse per-range profile
    /// sums instead of re-walking the operator slice. Bit-identical to the
    /// uncached cost model (asserted in debug builds on every hit).
    pub(super) max_batch_memo: MaxBatchTable,
    pub(super) ubatches: HashMap<UbatchId, MicroBatch>,
    /// Instances whose snapshot-visible state changed since the control
    /// plane last looked. Every mutation site feeds it (via
    /// [`EngineState::reindex`] or [`EngineState::mark_policy_dirty`]);
    /// [`Ctx::take_dirty`] drains it each tick so a warm-start policy can
    /// update its fleet mirror from deltas instead of re-snapshotting the
    /// whole fleet.
    pub(super) policy_dirty: std::collections::BTreeSet<InstanceId>,
    pub(super) pending_refactors: HashMap<InstanceId, PendingRefactor>,
    pub(super) host_cache: HashMap<(u32, u32), HostCacheEntry>,
    pub(super) gpus_in_use: std::collections::HashSet<GpuId>,
    pub(super) script: DisruptionScript,
    pub(super) pending_revocations: BTreeMap<GpuId, SimTime>,
    pub(super) next_instance: u64,
    pub(super) next_ubatch: u64,
    pub(super) horizon: SimTime,
    // Metrics.
    pub(super) disruptions: DisruptionLedger,
    pub(super) outcomes: OutcomeLog,
    pub(super) ledger: UtilizationLedger,
    pub(super) queue_timeline: Timeline,
    pub(super) inflight_timeline: Timeline,
    pub(super) cv_est: CvEstimator,
    pub(super) refactors: u32,
    pub(super) refactor_pause_secs: f64,
    pub(super) spawns: u32,
    pub(super) init_latencies: Vec<f64>,
    pub(super) warm_loads: u32,
    pub(super) cold_loads: u32,
    /// Structured trace recorder. Off by default; hook sites throughout
    /// the engine call [`TraceRecorder::record`], which is a single
    /// branch when disabled. The recorder only *observes* state, so the
    /// report is byte-identical whatever the mode (pinned by the fleet's
    /// trace-determinism tests).
    pub(super) obs: TraceRecorder,
}

impl EngineState {
    /// Current gateway queue length.
    pub fn queue_len(&self) -> usize {
        self.gateway.len()
    }

    /// The model graph.
    pub fn graph(&self) -> &ModelGraph {
        &self.graph
    }

    /// The granularity lattice.
    pub fn lattice(&self) -> &GranularityLattice {
        &self.lattice
    }

    /// The cluster (read-only access for policies).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Snapshots of all instances.
    pub fn snapshots(&self) -> Vec<InstanceSnapshot> {
        self.instances.values().map(|i| i.snapshot()).collect()
    }

    /// Re-keys `id` in the admission index from its current state (or
    /// removes it when gone / not admissible). Must be called after every
    /// mutation that can change `Instance::admit_key` — state changes,
    /// `active_requests`, `batch_cap`, `admit_hold`, removal.
    pub(super) fn reindex(&mut self, id: InstanceId) {
        let key = self.instances.get(&id).and_then(Instance::admit_key);
        self.admission.apply(id, key);
        self.policy_dirty.insert(id);
    }

    /// Marks `id` dirty for the control plane without touching the
    /// admission index: for mutations that change an instance's snapshot
    /// (micro-batch membership) but not its admissibility key.
    pub(super) fn mark_policy_dirty(&mut self, id: InstanceId) {
        self.policy_dirty.insert(id);
    }

    /// Debug-build invariant: the index holds exactly the admissible
    /// instances under their current keys. Catches any mutation site that
    /// forgot to [`EngineState::reindex`] the moment admission runs, in
    /// every test (the test profile keeps debug assertions on).
    #[cfg(debug_assertions)]
    pub(super) fn debug_validate_admission_index(&self) {
        let expected: Vec<(InstanceId, u64)> = self
            .instances
            .values()
            .filter_map(|i| i.admit_key().map(|k| (i.id, k)))
            .collect();
        let mut indexed: Vec<(InstanceId, u64)> = self.admission.entries().collect();
        indexed.sort_by_key(|&(id, _)| id);
        let mut want = expected;
        want.sort_by_key(|&(id, _)| id);
        debug_assert_eq!(
            indexed, want,
            "admission index diverged from instance state"
        );
    }

    /// Mode-dispatched Table-2 `max_batch`: the memoized table on the
    /// indexed path, the uncached cost model on the naive one. Both are
    /// bit-identical (the table asserts so internally in debug builds).
    pub(super) fn max_batch_of(&self, r: OpRange, gpu_mem: u64) -> u32 {
        match self.config.admission {
            EngineMode::Indexed => self.max_batch_memo.max_batch(&self.graph, r, gpu_mem),
            EngineMode::NaiveScan => self.cost.max_batch(&self.graph, r, gpu_mem),
        }
    }

    /// Mode-dispatched Table-2 `stage_mem_bytes` (see
    /// [`EngineState::max_batch_of`]).
    pub(super) fn stage_mem_of(&self, r: OpRange, batch: u32) -> u64 {
        match self.config.admission {
            EngineMode::Indexed => self.max_batch_memo.stage_mem_bytes(&self.graph, r, batch),
            EngineMode::NaiveScan => self.cost.stage_mem_bytes(&self.graph, r, batch),
        }
    }

    pub(super) fn new_instance_id(&mut self) -> InstanceId {
        self.next_instance += 1;
        InstanceId(self.next_instance)
    }

    pub(super) fn new_ubatch_id(&mut self) -> UbatchId {
        self.next_ubatch += 1;
        UbatchId(self.next_ubatch)
    }

    /// Online arrival statistics: (rate, cv, gradient).
    pub fn monitor(&self, now: SimTime) -> (f64, f64, f64) {
        (
            self.cv_est.rate(now),
            self.cv_est.cv(),
            self.cv_est.rate_gradient(now),
        )
    }

    /// Replaces the always-on GPU set (policy initialisation).
    pub fn set_always_on(&mut self, gpus: Vec<GpuId>) {
        self.provisioner = Provisioner::new(self.tier, gpus);
    }

    /// Sets an instance's compute multiplier (multiplexing interference).
    pub fn set_compute_multiplier(&mut self, id: InstanceId, mult: f64) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.compute_multiplier = mult.max(1.0);
        }
    }

    /// Holds or releases admissions to an instance (drain-to-consolidate).
    pub fn set_admit_hold(&mut self, id: InstanceId, hold: bool) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.admit_hold = hold;
            self.reindex(id);
        }
    }
}

/// The engine: state + policy, driving a [`Scenario`] to completion.
pub struct Engine {
    pub(super) state: EngineState,
    pub(super) policy: Option<Box<dyn ControlPolicy>>,
    pub(super) events_seen: u64,
    pub(super) truncated: bool,
    /// Wall-clock self-time profiler around event dispatch and
    /// `ControlPolicy::on_tick`. Lives on the engine, not the state:
    /// wall time is not part of the simulated world and must never
    /// enter a cached or byte-compared artifact.
    pub(super) profiler: Profiler,
}

/// Everything one observed run produces: the deterministic report plus
/// the observability side channels (which never feed back into it).
pub struct ObservedRun {
    /// The run report — byte-identical to an unobserved run's.
    pub report: RunReport,
    /// The trace recorder with its retained records and registry.
    pub trace: TraceRecorder,
    /// The wall-clock self-time profiler.
    pub profiler: Profiler,
}

/// Policy-facing context: state queries plus actions.
pub struct Ctx<'a> {
    /// Mutable engine state.
    pub state: &'a mut EngineState,
    /// The event queue (for time and scheduling through actions).
    pub queue: &'a mut EventQueue<Event>,
}

impl<'a> Ctx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Gateway queue length.
    pub fn queue_len(&self) -> usize {
        self.state.queue_len()
    }

    /// Online (rate, cv, gradient) from the arrival monitor.
    pub fn monitor(&self) -> (f64, f64, f64) {
        self.state.monitor(self.queue.now())
    }

    /// Instance snapshots.
    pub fn instances(&self) -> Vec<InstanceSnapshot> {
        self.state.snapshots()
    }

    /// The engine-wide mode: policies with their own incremental
    /// structures dispatch on it exactly like the engine's hot paths, so
    /// one toggle governs every indexed/naive pair in the system.
    pub fn mode(&self) -> EngineMode {
        self.state.config.admission
    }

    /// Drains the dirty set accumulated since the last call: the
    /// id-sorted list of instances whose snapshot-visible state changed,
    /// each paired with its current snapshot (`None` = the instance is
    /// gone). A warm-start control plane applies these deltas to its
    /// fleet mirror instead of re-snapshotting everything; the naive
    /// reference drains them too (and ignores them) so the dirty set's
    /// lifecycle is identical in both modes.
    pub fn take_dirty(&mut self) -> Vec<(InstanceId, Option<InstanceSnapshot>)> {
        let ids = std::mem::take(&mut self.state.policy_dirty);
        ids.into_iter()
            .map(|id| (id, self.state.instances.get(&id).map(|i| i.snapshot())))
            .collect()
    }

    /// Spawns an instance through the elastic path (provisioning +
    /// parameter-loading delays apply).
    pub fn spawn(&mut self, stages: u32, placement: Placement) -> Result<InstanceId, ActionError> {
        self.state.spawn(self.queue, stages, placement, false)
    }

    /// Spawns a standing instance that is ready immediately (the
    /// deployment that exists before measurement starts).
    pub fn spawn_prewarmed(
        &mut self,
        stages: u32,
        placement: Placement,
    ) -> Result<InstanceId, ActionError> {
        self.state.spawn(self.queue, stages, placement, true)
    }

    /// Retires an instance (drain then release).
    pub fn retire(&mut self, id: InstanceId) {
        self.state.retire(self.queue, id)
    }

    /// Starts an inflight refactor.
    pub fn refactor(&mut self, id: InstanceId, plan: RefactorPlan) -> Result<(), ActionError> {
        self.state.refactor(self.queue, id, plan)
    }

    /// Declares the always-on GPU tier (call once from `init`).
    pub fn set_always_on(&mut self, gpus: Vec<GpuId>) {
        self.state.set_always_on(gpus)
    }

    /// Sets multiplexing interference on an instance.
    pub fn set_compute_multiplier(&mut self, id: InstanceId, mult: f64) {
        self.state.set_compute_multiplier(id, mult)
    }

    /// Holds or releases admissions to an instance.
    pub fn set_admit_hold(&mut self, id: InstanceId, hold: bool) {
        self.state.set_admit_hold(id, hold)
    }

    /// Pre-stages parameters into a server's host memory tier.
    pub fn prewarm_host_cache(&mut self, range: flexpipe_model::OpRange, server: ServerId) -> bool {
        let now = self.queue.now();
        self.state.prewarm_host_cache(now, range, server)
    }

    /// Devices under an outstanding preemption notice with their
    /// revocation deadlines (avoid these when placing).
    pub fn doomed_gpus(&self) -> Vec<(GpuId, SimTime)> {
        self.state.doomed_gpus()
    }

    /// Devices currently revoked from the cluster.
    pub fn revoked_gpus(&self) -> Vec<GpuId> {
        self.state.cluster().revoked_gpus()
    }

    /// Defers a policy decision to its own queue event at the current
    /// instant. The decision pops back into
    /// [`crate::policy::ControlPolicy::on_action`]
    /// with the same tag — after everything else already queued at this
    /// instant, and as a first-class choice point for the equivalence
    /// checker, which can permute deferred decisions against the rest of
    /// the same-instant batch.
    pub fn defer_action(&mut self, tag: u32) {
        self.queue.schedule_now(Event::PolicyAction { tag });
    }

    /// Emits a policy-originated trace event (a no-op when tracing is
    /// off). Policies use this to mark named decisions — e.g. a cold
    /// respawn — so traces show *why* the mechanism moved, not just that
    /// it did.
    pub fn trace(&mut self, event: TraceEvent) {
        let now = self.queue.now();
        self.state.obs.record(now, event);
    }
}

impl Engine {
    /// Builds an engine for `scenario` with the given model artefacts and
    /// policy.
    pub fn new(
        scenario: Scenario,
        graph: Arc<ModelGraph>,
        lattice: Arc<GranularityLattice>,
        policy: Box<dyn ControlPolicy>,
    ) -> Self {
        let rng = SimRng::seed(scenario.seed);
        let mut cluster = Cluster::new(scenario.cluster.clone());
        let mut bg = BackgroundTenants::new(scenario.background, rng.stream_named("background"));
        bg.populate(&mut cluster);
        let transfer = TransferEngine::new(scenario.cluster.links);
        let reqs = scenario
            .workload
            .requests
            .iter()
            .map(|&req| ReqRuntime {
                req,
                admitted: None,
                prefill_done: None,
                generated: 0,
                exec_secs: 0.0,
                comm_secs: 0.0,
                done: false,
            })
            .collect();
        let state = EngineState {
            config: scenario.config,
            graph,
            cost: scenario.cost,
            lattice,
            cluster,
            transfer,
            provisioner: Provisioner::new(scenario.tier, Vec::new()),
            tier: scenario.tier,
            bg,
            workload: Arc::new(scenario.workload.requests),
            gateway: VecDeque::new(),
            reqs,
            instances: BTreeMap::new(),
            admission: AdmissionIndex::new(),
            max_batch_memo: scenario.cost.max_batch_table(),
            ubatches: HashMap::new(),
            policy_dirty: std::collections::BTreeSet::new(),
            pending_refactors: HashMap::new(),
            host_cache: HashMap::new(),
            gpus_in_use: std::collections::HashSet::new(),
            script: scenario.disruptions.sorted(),
            pending_revocations: BTreeMap::new(),
            next_instance: 0,
            next_ubatch: 0,
            horizon: scenario.horizon,
            disruptions: DisruptionLedger::new(),
            outcomes: OutcomeLog::new(),
            ledger: UtilizationLedger::new(),
            queue_timeline: Timeline::new(),
            inflight_timeline: Timeline::new(),
            cv_est: CvEstimator::new(scenario.config.monitor_window),
            refactors: 0,
            refactor_pause_secs: 0.0,
            spawns: 0,
            init_latencies: Vec::new(),
            warm_loads: 0,
            cold_loads: 0,
            obs: TraceRecorder::off(),
        };
        Engine {
            state,
            policy: Some(policy),
            events_seen: 0,
            truncated: false,
            profiler: Profiler::default(),
        }
    }

    /// Arms structured tracing for this run (default: [`TraceMode::Off`]).
    /// Tracing is observation-only: the report stays byte-identical in
    /// every mode.
    pub fn set_trace(&mut self, mode: TraceMode) {
        self.state.obs = TraceRecorder::new(mode);
    }

    /// Arms the wall-clock self-time profiler (default: off).
    pub fn set_profiler(&mut self, enabled: bool) {
        self.profiler = Profiler::new(enabled);
    }

    pub(super) fn with_policy(
        &mut self,
        queue: &mut EventQueue<Event>,
        f: impl FnOnce(&mut dyn ControlPolicy, &mut Ctx<'_>),
    ) {
        let mut policy = self.policy.take().expect("policy present");
        {
            let mut ctx = Ctx {
                state: &mut self.state,
                queue,
            };
            f(policy.as_mut(), &mut ctx);
        }
        self.policy = Some(policy);
    }

    /// Runs the scenario to its horizon and produces the report.
    pub fn run(self) -> RunReport {
        self.run_observed().report
    }

    /// Runs the scenario and returns the report together with the trace
    /// and profiler side channels (see [`Engine::set_trace`] /
    /// [`Engine::set_profiler`]).
    pub fn run_observed(mut self) -> ObservedRun {
        let mut queue: EventQueue<Event> = EventQueue::new();
        self.prime(&mut queue);
        let horizon = self.state.horizon;
        let max_events = self.state.config.max_events;
        let (outcome, steps) = flexpipe_sim::run(&mut self, &mut queue, horizon, max_events);
        self.finish_observed(outcome, steps)
    }

    /// Seeds the event queue and runs policy initialisation — everything
    /// `run_observed` does before entering the event loop. Shared with the
    /// step-controllable driver ([`crate::SteppedEngine`]) so both paths
    /// start from bit-identical state.
    pub(crate) fn prime(&mut self, queue: &mut EventQueue<Event>) {
        // Policy initialisation (deploys the initial configuration).
        self.with_policy(queue, |p, ctx| p.init(ctx));
        // Seed the event streams.
        if !self.state.workload.is_empty() {
            let t = self.state.workload[0].arrival;
            queue
                .schedule(t, Event::Arrival(0))
                .expect("arrival in future");
        }
        queue.schedule_now(Event::ControlTick);
        queue
            .schedule_after(self.state.config.churn_step, Event::Churn)
            .expect("future");
        // Scripted disruptions (already time-sorted). Rate surges are a
        // workload-generation concern and never enter the queue.
        for (i, ev) in self.state.script.events.iter().enumerate() {
            if matches!(ev.kind, Disruption::RateSurge { .. }) {
                continue;
            }
            let at = SimTime::from_secs_f64(ev.at_secs.max(0.0));
            if at < self.state.horizon {
                queue
                    .schedule(at, Event::Disruption(i as u32))
                    .expect("script starts at or after t=0");
            }
        }
    }

    /// Folds a finished event loop into the observed-run artifacts — the
    /// tail of `run_observed`, shared with [`crate::SteppedEngine`].
    pub(crate) fn finish_observed(mut self, outcome: RunOutcome, steps: u64) -> ObservedRun {
        let horizon = self.state.horizon;
        self.events_seen = steps;
        // The step budget is a first-class watchdog, not an assertion: a
        // fleet sweep must be able to bound runaway cells and report them
        // as truncated rather than abort the whole grid.
        self.truncated = matches!(outcome, RunOutcome::StepBudgetExhausted);
        let trace = std::mem::take(&mut self.state.obs);
        let profiler = std::mem::take(&mut self.profiler);
        let report = self.into_report(horizon);
        ObservedRun {
            report,
            trace,
            profiler,
        }
    }

    fn into_report(self, horizon: SimTime) -> RunReport {
        let truncated = self.truncated;
        let mut st = self.state;
        st.disruptions.finalize(horizon);
        let span = horizon.as_secs_f64();
        // Canonical order before summarizing: byte-identical reports across
        // semantically equivalent schedules (see OutcomeLog::canonicalize).
        st.outcomes.canonicalize();
        let summary = st.outcomes.summarize(span);
        let policy_name = self
            .policy
            .as_ref()
            .map(|p| p.name().to_string())
            .unwrap_or_default();
        RunReport {
            policy: policy_name,
            horizon_secs: span,
            arrived: st.workload.len(),
            summary,
            outcomes: st.outcomes,
            queue_timeline: st.queue_timeline,
            inflight_timeline: st.inflight_timeline,
            fleet_size: st.cluster.topology().gpu_count() as u32,
            ledger: st.ledger,
            refactors: st.refactors,
            refactor_pause_secs: st.refactor_pause_secs,
            spawns: st.spawns,
            mean_init_secs: if st.init_latencies.is_empty() {
                0.0
            } else {
                st.init_latencies.iter().sum::<f64>() / st.init_latencies.len() as f64
            },
            mean_alloc_wait_secs: st.provisioner.mean_wait_secs(),
            warm_loads: st.warm_loads,
            cold_loads: st.cold_loads,
            disruptions: st.disruptions.into_stats(),
            events: self.events_seen,
            truncated,
        }
    }
}

impl World for Engine {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        let kind = event.kind();
        let timer = self.profiler.start();
        self.dispatch(now, event, queue);
        self.profiler.stop(kind, timer);
    }
}

impl Engine {
    fn dispatch(&mut self, now: SimTime, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::Arrival(i) => {
                let i = i as usize;
                let rid = RequestId(i as u64);
                self.state.cv_est.record(now);
                self.state.gateway.push_back(rid);
                self.state
                    .obs
                    .record(now, TraceEvent::RequestArrival { req: rid.0 });
                if i + 1 < self.state.workload.len() {
                    let t = self.state.workload[i + 1].arrival;
                    queue
                        .schedule(t.max(now), Event::Arrival(i as u32 + 1))
                        .expect("sorted arrivals");
                }
                self.state.drain_gateway(queue);
                self.with_policy(queue, |p, ctx| p.on_arrival(ctx));
            }
            Event::ControlTick => {
                self.state.cv_est.evict(now);
                self.state
                    .queue_timeline
                    .record(now, self.state.gateway.len() as f64);
                let in_system: u32 = self
                    .state
                    .instances
                    .values()
                    .map(|i| i.active_requests)
                    .sum::<u32>()
                    + self.state.gateway.len() as u32;
                self.state
                    .inflight_timeline
                    .record(now, f64::from(in_system));
                self.state.obs.record(
                    now,
                    TraceEvent::ControlTick {
                        queued: self.state.gateway.len() as u32,
                        instances: self.state.instances.len() as u32,
                    },
                );
                self.state.expire_host_cache(now);
                self.state.provisioner.expire_warm(now);
                let timer = self.profiler.start();
                self.with_policy(queue, |p, ctx| p.on_tick(ctx));
                self.profiler.stop("policy.on_tick", timer);
                self.state.drain_gateway(queue);
                self.state.maybe_close_recoveries(now);
                let next = now + self.state.config.control_interval;
                if next < self.state.horizon {
                    queue.schedule(next, Event::ControlTick).expect("future");
                }
            }
            Event::Churn => {
                let step = self.state.config.churn_step;
                let mut bg = self.state.bg.clone();
                bg.step(&mut self.state.cluster, step);
                self.state.bg = bg;
                let next = now + step;
                if next < self.state.horizon {
                    queue.schedule(next, Event::Churn).expect("future");
                }
            }
            Event::InstanceReady { id, epoch } => {
                let ready = {
                    let Some(inst) = self.state.instances.get_mut(&id) else {
                        return;
                    };
                    if inst.epoch != epoch || inst.state != InstanceState::Loading {
                        false
                    } else {
                        inst.state = InstanceState::Serving;
                        inst.ready_at = Some(now);
                        true
                    }
                };
                if ready {
                    self.state
                        .obs
                        .record(now, TraceEvent::InstanceReady { instance: id.0 });
                    self.state.reindex(id);
                    self.state.drain_gateway(queue);
                    self.with_policy(queue, |p, ctx| p.on_instance_ready(ctx, id));
                    self.state.maybe_close_recoveries(queue.now());
                }
            }
            Event::StageArrive {
                id,
                epoch,
                stage,
                ub,
            } => {
                self.state.on_stage_arrive(queue, id, epoch, stage, ub);
            }
            Event::StageDone {
                id,
                epoch,
                stage,
                ub,
            } => {
                self.state.on_stage_done(queue, id, epoch, stage, ub);
            }
            Event::PrepareDone { id, epoch } => {
                self.state.on_prepare_done(queue, id, epoch);
            }
            Event::PauseDone { id, epoch } => {
                self.state.on_pause_done(queue, id, epoch);
                self.state.resume_instance(queue, id);
                self.state.launch_decode(queue, id);
                self.state.drain_gateway(queue);
                self.state.maybe_close_recoveries(queue.now());
            }
            Event::Disruption(idx) => {
                self.on_disruption_event(queue, idx as usize);
            }
            Event::Revoke { gpus } => {
                self.execute_revocation(queue, gpus);
            }
            Event::Restore { gpus } => {
                let restored = self.state.restore_capacity(&gpus);
                if restored > 0 {
                    self.state
                        .obs
                        .record(now, TraceEvent::CapacityRestore { gpus: restored });
                }
            }
            Event::PolicyAction { tag } => {
                self.with_policy(queue, |p, ctx| p.on_action(ctx, tag));
                self.state.drain_gateway(queue);
                self.state.maybe_close_recoveries(now);
            }
        }
    }
}
