//! The engine's incrementally maintained hot-path structures and the
//! deterministic churn harnesses that prove and measure them.
//!
//! Inventory (one entry per per-event scan the engine used to pay):
//!
//! | structure | replaces | consulted by |
//! |---|---|---|
//! | [`crate::admission::AdmissionIndex`] | O(instances) admission rescan | `drain_gateway` |
//! | [`DecodeSlotTracker`] | O(micro-batches) decode recount | `launch_decode` |
//! | [`flexpipe_cluster::ServerLoadIndex`] | O(servers × GPUs) rebuild+sort | `hottest_server` |
//! | [`flexpipe_model::MaxBatchTable`] | O(range) operator-slice walks | spawn / refactor sizing |
//!
//! All four follow the same engine-wide [`crate::EngineMode`] toggle, keep
//! their naive reference paths, and are cross-checked by debug-build
//! validators at every consultation — a mode can change wall-clock only,
//! never a report byte.
//!
//! The [`decode_slot_churn`] and [`server_load_churn`] harnesses mirror
//! [`crate::admission::churn`]: deterministic, engine-free drivers shared
//! by the criterion microbenches, the `fleet bench --hot-paths` speedup
//! table and the non-`#[ignore]` wall-clock ratio tests.

use std::collections::HashMap;

use flexpipe_cluster::{Cluster, ClusterSpec, GpuId, LeaseId, ServerId};

use crate::admission::EngineMode;

/// Per-instance count of in-flight *decode* micro-batches.
///
/// `launch_decode` runs on every pass completion and used to recount the
/// instance's micro-batch list (one hash-map lookup per entry) just to
/// compare against the slot limit. The tracker is bumped on decode launch,
/// decremented when a decode micro-batch dissolves, and reset when a
/// revocation kills the instance's whole in-flight set (the epoch bump
/// makes the stale events no-ops, so no other path can touch a dead
/// micro-batch). Refactor commits relaunch live micro-batches without
/// changing membership, so the count carries across epochs unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeSlotTracker {
    in_flight: u32,
}

impl DecodeSlotTracker {
    /// A tracker with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// A decode micro-batch launched.
    pub fn launched(&mut self) {
        self.in_flight += 1;
    }

    /// A decode micro-batch dissolved (pass finished; members regroup).
    pub fn dissolved(&mut self) {
        debug_assert!(self.in_flight > 0, "dissolving with nothing in flight");
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Every in-flight micro-batch was killed (revocation wound).
    pub fn reset(&mut self) {
        self.in_flight = 0;
    }

    /// In-flight decode micro-batches right now.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }
}

/// SplitMix64 step: the single deterministic, dependency-free pattern
/// driver behind every churn harness ([`crate::admission::churn`] and
/// the two below) — one copy, so the harnesses can never desynchronize.
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic decode-slot churn over `n` synthetic instances.
///
/// Reproduces `launch_decode`'s exact data shape: each instance owns a
/// list of micro-batch ids whose phases live in a shared map (as the
/// engine's do), and every step queries the in-flight decode count —
/// scanning the list with a map lookup per entry in
/// [`EngineMode::NaiveScan`], reading the [`DecodeSlotTracker`] in
/// [`EngineMode::Indexed`] — then mutates: decode/prefill launches,
/// dissolutions, and occasional revocation-style kills of an instance's
/// whole in-flight set. Returns a checksum over the queried counts, so
/// callers can assert the two modes agree decision-for-decision.
pub fn decode_slot_churn(n: usize, ops: usize, mode: EngineMode) -> u64 {
    assert!(n > 0, "need at least one instance");
    let mut phases: HashMap<u64, bool> = HashMap::new(); // id -> is_decode
    let mut lists: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut trackers: Vec<DecodeSlotTracker> = vec![DecodeSlotTracker::new(); n];
    let mut next_ub = 0u64;
    let mut state = 0xDEC0DEu64.wrapping_add(n as u64);
    let mut checksum = 0u64;
    for _ in 0..ops {
        let r = splitmix(&mut state);
        let i = (r % n as u64) as usize;
        // The launch decision's read: how many decode passes are in flight?
        let count = match mode {
            EngineMode::Indexed => trackers[i].in_flight() as usize,
            EngineMode::NaiveScan => lists[i]
                .iter()
                .filter(|id| phases.get(id).copied().unwrap_or(false))
                .count(),
        };
        checksum = checksum
            .wrapping_mul(0x100000001B3)
            .wrapping_add(count as u64 + 1);
        // Mutate, biased toward launches so lists stay populated.
        match (r >> 32) % 8 {
            0..=2 => {
                // Decode launch.
                next_ub += 1;
                phases.insert(next_ub, true);
                lists[i].push(next_ub);
                trackers[i].launched();
            }
            3 | 4 => {
                // Prefill launch (never counted, always scanned past).
                next_ub += 1;
                phases.insert(next_ub, false);
                lists[i].push(next_ub);
            }
            5 | 6 => {
                // Oldest micro-batch dissolves.
                if !lists[i].is_empty() {
                    let ub = lists[i].remove(0);
                    if phases.remove(&ub).unwrap_or(false) {
                        trackers[i].dissolved();
                    }
                }
            }
            _ => {
                // Revocation wound: the whole in-flight set dies at once.
                for ub in lists[i].drain(..) {
                    phases.remove(&ub);
                }
                trackers[i].reset();
            }
        }
    }
    checksum
}

/// Deterministic server-load churn over a `servers`-node cluster.
///
/// Drives a real [`Cluster`] through serving-lease reserve/release and GPU
/// revoke/restore traffic, querying the `rank`-th busiest server each step
/// — via the engine's retained rebuild-and-sort reference in
/// [`EngineMode::NaiveScan`], via the cluster's incrementally maintained
/// [`flexpipe_cluster::ServerLoadIndex`] in [`EngineMode::Indexed`].
/// Returns a checksum over the selected servers, so callers can assert
/// bit-identical ranking across modes.
pub fn server_load_churn(servers: usize, ops: usize, mode: EngineMode) -> u64 {
    assert!(servers > 0, "need at least one server");
    let spec = ClusterSpec::heterogeneous("load-churn", servers as u32, 2 * servers as u32, 8);
    let mut cluster = Cluster::new(spec);
    let gpu_count = cluster.topology().gpu_count() as u64;
    let mut leases: Vec<LeaseId> = Vec::new();
    let mut state = 0x5E17E5u64.wrapping_add(servers as u64);
    let mut checksum = 0u64;

    // The engine's naive reference, verbatim: rebuild and sort per query.
    let naive = |cluster: &Cluster, rank: u32| -> Option<ServerId> {
        let topo = cluster.topology();
        let mut ranked: Vec<(u64, ServerId)> = (0..topo.server_count() as u32)
            .map(ServerId)
            .filter(|&s| topo.gpus_on(s).iter().any(|&g| !cluster.is_revoked(g)))
            .map(|s| {
                let bytes: u64 = topo
                    .gpus_on(s)
                    .iter()
                    .map(|&g| cluster.load(g).serving_mem)
                    .sum();
                (bytes, s)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.get(rank as usize).map(|&(_, s)| s)
    };

    for _ in 0..ops {
        let r = splitmix(&mut state);
        // The preemption-targeting read: who is the rank-th busiest?
        let rank = (r % 4) as u32;
        let picked = match mode {
            EngineMode::Indexed => cluster.nth_hottest_server(rank),
            EngineMode::NaiveScan => naive(&cluster, rank),
        };
        checksum = checksum
            .wrapping_mul(0x100000001B3)
            .wrapping_add(picked.map_or(0, |s| u64::from(s.0) + 1));
        // Mutate: lease churn dominates, with occasional revoke/restore.
        let g = GpuId(((r >> 8) % gpu_count) as u32);
        match (r >> 40) % 8 {
            0..=3 => {
                let bytes = (((r >> 16) % 64) + 1) << 20;
                if let Ok(lease) = cluster.reserve_gpu(g, bytes) {
                    leases.push(lease);
                }
            }
            4 | 5 => {
                if !leases.is_empty() {
                    let k = ((r >> 16) as usize) % leases.len();
                    let lease = leases.swap_remove(k);
                    let _ = cluster.release(lease);
                }
            }
            6 => {
                // Revocation invalidates that GPU's leases; drop the ids
                // (double release is an error the engine never commits).
                let dead = cluster.revoke_gpu(g);
                leases.retain(|l| !dead.contains(l));
            }
            _ => {
                cluster.restore_gpu(g);
            }
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_launch_dissolve_reset() {
        let mut t = DecodeSlotTracker::new();
        assert_eq!(t.in_flight(), 0);
        t.launched();
        t.launched();
        assert_eq!(t.in_flight(), 2);
        t.dissolved();
        assert_eq!(t.in_flight(), 1);
        t.reset();
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn decode_slot_churn_modes_agree() {
        for n in [1usize, 3, 17, 64] {
            assert_eq!(
                decode_slot_churn(n, 3_000, EngineMode::Indexed),
                decode_slot_churn(n, 3_000, EngineMode::NaiveScan),
                "divergence at n={n}"
            );
        }
    }

    #[test]
    fn server_load_churn_modes_agree() {
        for servers in [1usize, 2, 9, 40] {
            assert_eq!(
                server_load_churn(servers, 2_000, EngineMode::Indexed),
                server_load_churn(servers, 2_000, EngineMode::NaiveScan),
                "divergence at servers={servers}"
            );
        }
    }
}
