//! The pipelined LLM serving engine of the FlexPipe reproduction.
//!
//! Mechanism/policy split: this crate owns every *mechanism* — request
//! admission and continuous batching ([`engine`]), micro-batch pipeline
//! execution over simulated GPUs ([`instance`]), instance lifecycle
//! including the inflight-refactor state machine, and the host-memory
//! parameter cache — while *decisions* (when to scale, which granularity,
//! where to place) are delegated to [`policy::ControlPolicy`]
//! implementations: FlexPipe in `flexpipe-core` and the baselines in
//! `flexpipe-baselines`. All systems therefore compare on identical
//! substrate, as in the paper's testbed.

#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod engine;
pub mod instance;
pub mod policy;
pub mod queueing;
pub mod report;
pub mod version;

pub use admission::{churn, AdmissionIndex, AdmissionMode, EngineMode};
pub use config::EngineConfig;
pub use engine::indexes::{decode_slot_churn, server_load_churn, DecodeSlotTracker};
pub use engine::{
    Ctx, Engine, EngineState, Event, LiveEngine, ObservedRun, Scenario, SteppedEngine,
};
pub use flexpipe_obs::{Profiler, TraceEvent, TraceMode, TraceRecord, TraceRecorder};
pub use instance::{
    Instance, InstanceId, InstanceSnapshot, InstanceState, MicroBatch, Phase, UbatchId,
};
pub use policy::{
    cold_respawn, cold_respawn_instance, ActionError, ControlPolicy, CrippledInstance,
    DisruptionNotice, Placement, RefactorPlan, StageAssign,
};
pub use queueing::{optimal_depth_heuristic, predict, GgsParams, GgsPrediction};
pub use report::RunReport;
pub use version::{engine_fingerprint, ENGINE_SEMANTICS_VERSION};
