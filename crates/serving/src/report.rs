//! The run report every experiment consumes.

use serde::{Deserialize, Serialize};

use flexpipe_metrics::{DisruptionStats, OutcomeLog, OutcomeSummary, Timeline, UtilizationLedger};
use flexpipe_sim::SimTime;

/// Everything measured during one engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Simulated span, seconds.
    pub horizon_secs: f64,
    /// Requests that arrived.
    pub arrived: usize,
    /// Outcome summary over the whole span.
    pub summary: OutcomeSummary,
    /// Raw per-request outcomes.
    pub outcomes: OutcomeLog,
    /// Gateway queue length over time.
    pub queue_timeline: Timeline,
    /// In-system (queued + admitted) request count over time.
    pub inflight_timeline: Timeline,
    /// Total GPUs in the simulated fleet.
    pub fleet_size: u32,
    /// Busy/allocation ledger.
    pub ledger: UtilizationLedger,
    /// Completed refactors.
    pub refactors: u32,
    /// Total switchover pause time, seconds.
    pub refactor_pause_secs: f64,
    /// Instances spawned.
    pub spawns: u32,
    /// Mean instance initialisation latency, seconds.
    pub mean_init_secs: f64,
    /// Mean GPU allocation wait, seconds.
    pub mean_alloc_wait_secs: f64,
    /// Parameter loads served from the host cache or a peer host.
    pub warm_loads: u32,
    /// Parameter loads from persistent storage.
    pub cold_loads: u32,
    /// Capacity-revocation accounting: what was lost and how fast the
    /// deployment recovered.
    pub disruptions: DisruptionStats,
    /// Events processed.
    pub events: u64,
    /// Whether the run hit its event step budget and was cut short (the
    /// fleet watchdog records such cells instead of aborting the grid).
    pub truncated: bool,
}

impl RunReport {
    /// Completed requests.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Completion rate (completed / arrived).
    pub fn completion_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.completed() as f64 / self.arrived as f64
        }
    }

    /// Goodput normalised by the run's offered load.
    pub fn goodput_rate_of_offered(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.summary.within_slo as f64 / self.arrived as f64
        }
    }

    /// Mean GPU utilisation of held GPUs over the run.
    pub fn held_utilization(&self) -> f64 {
        self.ledger
            .utilization(SimTime::from_secs_f64(self.horizon_secs))
    }

    /// Mean GPUs held over the run.
    pub fn mean_gpus_held(&self) -> f64 {
        self.ledger
            .mean_allocated(SimTime::from_secs_f64(self.horizon_secs))
    }

    /// Peak GPUs held.
    pub fn peak_gpus_held(&self) -> u32 {
        self.ledger.peak_allocated()
    }

    /// Warm-start fraction of parameter loads.
    pub fn warm_load_fraction(&self) -> f64 {
        let total = self.warm_loads + self.cold_loads;
        if total == 0 {
            0.0
        } else {
            f64::from(self.warm_loads) / f64::from(total)
        }
    }
}
