//! Coefficient-of-variation analysis.
//!
//! Two consumers: the *offline* windowed analyzer regenerating Fig. 1 (CV
//! of the same trace computed over 180 s, 3 h and 12 h windows diverges by
//! up to 7x), and the *online* sliding estimator FlexPipe's controller uses
//! for ν_t, the arrival rate λ_t and the intensity gradient ∂λ/∂t
//! (Algorithm 1).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

/// CV of the inter-arrival gaps among `arrivals` restricted to `[from, to)`.
pub fn cv_in_window(arrivals: &[SimTime], from: SimTime, to: SimTime) -> f64 {
    let xs: Vec<SimTime> = arrivals
        .iter()
        .copied()
        .filter(|t| *t >= from && *t < to)
        .collect();
    crate::arrivals::interarrival_cv(&xs)
}

/// One point of a windowed CV series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvPoint {
    /// Window start.
    pub at: SimTime,
    /// CV of inter-arrival gaps inside the window (0 if < 3 arrivals).
    pub cv: f64,
    /// Number of arrivals inside the window.
    pub count: usize,
}

/// Computes the CV series of `arrivals` over consecutive windows of length
/// `window`, from time zero to `horizon`.
pub fn windowed_cv_series(
    arrivals: &[SimTime],
    window: SimDuration,
    horizon: SimTime,
) -> Vec<CvPoint> {
    assert!(window > SimDuration::ZERO, "window must be positive");
    let mut out = Vec::new();
    let mut start = SimTime::ZERO;
    let mut lo = 0usize;
    while start < horizon {
        let end = start + window;
        while lo < arrivals.len() && arrivals[lo] < start {
            lo += 1;
        }
        let mut hi = lo;
        while hi < arrivals.len() && arrivals[hi] < end {
            hi += 1;
        }
        out.push(CvPoint {
            at: start,
            cv: crate::arrivals::interarrival_cv(&arrivals[lo..hi]),
            count: hi - lo,
        });
        start = end;
    }
    out
}

/// Online sliding-window estimator of rate, CV and intensity gradient.
///
/// Holds arrival timestamps inside a trailing window; all queries are O(1)
/// amortised. This is the monitoring substrate of Algorithm 1.
#[derive(Debug, Clone)]
pub struct CvEstimator {
    window: SimDuration,
    arrivals: VecDeque<SimTime>,
}

impl CvEstimator {
    /// Creates an estimator with the given trailing window.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        CvEstimator {
            window,
            arrivals: VecDeque::new(),
        }
    }

    /// The trailing window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records one arrival; timestamps must be non-decreasing.
    pub fn record(&mut self, at: SimTime) {
        debug_assert!(self.arrivals.back().is_none_or(|&b| b <= at));
        self.arrivals.push_back(at);
        self.evict(at);
    }

    /// Drops arrivals older than the window relative to `now`.
    pub fn evict(&mut self, now: SimTime) {
        let cutoff = now - self.window; // saturates at 0
        while let Some(&front) = self.arrivals.front() {
            if front < cutoff {
                self.arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of arrivals currently inside the window.
    pub fn count(&self) -> usize {
        self.arrivals.len()
    }

    /// Arrival rate over the window, requests/second.
    ///
    /// The observation span is clamped below at one second so the earliest
    /// ticks of a run do not divide a handful of arrivals by microseconds.
    pub fn rate(&self, now: SimTime) -> f64 {
        let span = self.window.as_secs_f64().min(now.as_secs_f64()).max(1.0);
        self.arrivals.len() as f64 / span
    }

    /// CV of inter-arrival gaps inside the window (ν_t of §6).
    pub fn cv(&self) -> f64 {
        if self.arrivals.len() < 3 {
            return 0.0;
        }
        let mut prev: Option<SimTime> = None;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut n = 0.0;
        for &t in &self.arrivals {
            if let Some(p) = prev {
                let g = t.saturating_since(p).as_secs_f64();
                sum += g;
                sumsq += g * g;
                n += 1.0;
            }
            prev = Some(t);
        }
        let mean = sum / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = (sumsq / n - mean * mean).max(0.0);
        var.sqrt() / mean
    }

    /// Intensity gradient ∂λ/∂t: rate in the later half of the window minus
    /// rate in the earlier half, per second of half-window. Positive values
    /// signal a building burst before queues reflect it.
    pub fn rate_gradient(&self, now: SimTime) -> f64 {
        let half = self.window / 2;
        let mid = now - half;
        let (mut early, mut late) = (0usize, 0usize);
        for &t in &self.arrivals {
            if t < mid {
                early += 1;
            } else {
                late += 1;
            }
        }
        let h = half.as_secs_f64().max(1e-9);
        (late as f64 / h - early as f64 / h) / h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::gen_gamma_renewal;
    use flexpipe_sim::SimRng;

    #[test]
    fn estimator_tracks_gamma_cv() {
        for &cv in &[0.5, 1.0, 3.0] {
            let arr = gen_gamma_renewal(50.0, cv, 600.0, &mut SimRng::seed(7));
            let mut est = CvEstimator::new(SimDuration::from_secs(600));
            for &t in &arr {
                est.record(t);
            }
            let got = est.cv();
            assert!((got - cv).abs() / cv < 0.12, "cv {got} target {cv}");
        }
    }

    #[test]
    fn eviction_keeps_only_window() {
        let mut est = CvEstimator::new(SimDuration::from_secs(10));
        for s in 0..100 {
            est.record(SimTime::from_secs(s));
        }
        // Window [90, 100] inclusive of boundary.
        assert!(est.count() <= 11);
        assert!(est.count() >= 10);
    }

    #[test]
    fn rate_measures_window_rate() {
        let mut est = CvEstimator::new(SimDuration::from_secs(10));
        for s in 0..200 {
            est.record(SimTime::from_millis(s * 100)); // 10/s for 20 s
        }
        let r = est.rate(SimTime::from_millis(19_900));
        assert!((r - 10.0).abs() < 0.7, "rate {r}");
    }

    #[test]
    fn gradient_positive_during_burst_onset() {
        let mut est = CvEstimator::new(SimDuration::from_secs(20));
        // 1/s for 10 s, then 20/s for 10 s.
        for s in 0..10 {
            est.record(SimTime::from_secs(s));
        }
        for i in 0..200 {
            est.record(SimTime::from_millis(10_000 + i * 50));
        }
        let g = est.rate_gradient(SimTime::from_secs(20));
        assert!(g > 0.0, "gradient {g}");
    }

    #[test]
    fn windowed_series_splits_time() {
        let arr = gen_gamma_renewal(10.0, 2.0, 100.0, &mut SimRng::seed(3));
        let series = windowed_cv_series(&arr, SimDuration::from_secs(10), SimTime::from_secs(100));
        assert_eq!(series.len(), 10);
        let total: usize = series.iter().map(|p| p.count).sum();
        assert_eq!(total, arr.len());
    }

    #[test]
    fn window_size_mismatch_reproduces_fig1_effect() {
        // A regime-switching trace: local CV is ~1 (Poisson within regime)
        // but long windows see the rate shifts and report much higher CV —
        // the Fig. 1 phenomenon motivating runtime adaptation.
        use crate::arrivals::{gen_mmpp, MmppState};
        let states = [
            MmppState {
                rate: 2.0,
                dwell_mean_secs: 300.0,
            },
            MmppState {
                rate: 60.0,
                dwell_mean_secs: 60.0,
            },
        ];
        let arr = gen_mmpp(&states, 40_000.0, &mut SimRng::seed(11));
        let short =
            windowed_cv_series(&arr, SimDuration::from_secs(30), SimTime::from_secs(40_000));
        let long = cv_in_window(&arr, SimTime::ZERO, SimTime::from_secs(40_000));
        let short_mean = {
            let usable: Vec<f64> = short
                .iter()
                .filter(|p| p.count >= 3)
                .map(|p| p.cv)
                .collect();
            usable.iter().sum::<f64>() / usable.len() as f64
        };
        assert!(
            long > 2.0 * short_mean,
            "long-window CV {long} should dwarf short-window mean {short_mean}"
        );
    }
}
