//! Assembles complete [`Workload`]s from arrival processes and length
//! profiles.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimRng, SimTime};

use crate::arrivals::{gen_gamma_renewal, gen_mmpp, MmppState};
use crate::lengths::{LengthProfile, LengthSampler};
use crate::request::{Request, RequestId, Workload};
use crate::trace::{SyntheticTrace, TraceProfile};

/// The arrival process of a workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Gamma renewal at `rate` with coefficient of variation `cv`.
    GammaRenewal {
        /// Requests per second.
        rate: f64,
        /// Coefficient of variation of inter-arrival gaps.
        cv: f64,
    },
    /// Two-state burst/calm MMPP.
    Burst {
        /// Calm-state rate, requests/second.
        calm_rate: f64,
        /// Burst-state rate, requests/second.
        burst_rate: f64,
        /// Mean calm duration, seconds.
        calm_secs: f64,
        /// Mean burst duration, seconds.
        burst_secs: f64,
    },
    /// Synthetic production trace (diurnal + bursts).
    Trace(TraceProfile),
}

/// Declarative workload specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Length profile.
    pub lengths: LengthProfile,
    /// Base latency SLO attached to every request (the time-to-first-token
    /// / queueing budget).
    pub slo: SimDuration,
    /// Additional SLO budget per generated token (token-level SLOs are
    /// standard for generation workloads; a fixed deadline would penalise
    /// long generations even on an idle system).
    pub slo_per_output_token: SimDuration,
    /// Generation horizon, seconds.
    pub horizon_secs: f64,
}

impl WorkloadSpec {
    /// The paper's end-to-end setup (§9.1): 20 QPS baseline at a given CV,
    /// Splitwise-like lengths, 5 s SLO.
    pub fn paper_e2e(cv: f64, horizon_secs: f64) -> Self {
        WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal { rate: 20.0, cv },
            lengths: LengthProfile::splitwise_like(),
            slo: SimDuration::from_secs(2),
            slo_per_output_token: SimDuration::from_millis(100),
            horizon_secs,
        }
    }

    /// Generates the workload deterministically from `rng`.
    pub fn generate(&self, rng: &mut SimRng) -> Workload {
        let mut arrival_rng = rng.stream_named("arrivals");
        let mut length_rng = rng.stream_named("lengths");
        let times: Vec<SimTime> = match &self.arrivals {
            ArrivalSpec::GammaRenewal { rate, cv } => {
                gen_gamma_renewal(*rate, *cv, self.horizon_secs, &mut arrival_rng)
            }
            ArrivalSpec::Burst {
                calm_rate,
                burst_rate,
                calm_secs,
                burst_secs,
            } => gen_mmpp(
                &[
                    MmppState {
                        rate: *calm_rate,
                        dwell_mean_secs: *calm_secs,
                    },
                    MmppState {
                        rate: *burst_rate,
                        dwell_mean_secs: *burst_secs,
                    },
                ],
                self.horizon_secs,
                &mut arrival_rng,
            ),
            ArrivalSpec::Trace(profile) => {
                let trace = SyntheticTrace::generate(*profile, self.horizon_secs, &mut arrival_rng);
                trace.arrivals(&mut arrival_rng)
            }
        };
        let sampler = LengthSampler::new(self.lengths);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (prompt_tokens, output_tokens) = sampler.sample(&mut length_rng);
                Request {
                    id: RequestId(i as u64),
                    arrival,
                    prompt_tokens,
                    output_tokens,
                    slo: self.slo + self.slo_per_output_token * u64::from(output_tokens),
                }
            })
            .collect();
        Workload::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::interarrival_cv;

    #[test]
    fn paper_e2e_spec_generates_expected_rate_and_cv() {
        let spec = WorkloadSpec::paper_e2e(4.0, 600.0);
        let w = spec.generate(&mut SimRng::seed(42));
        assert!((w.mean_rate() - 20.0).abs() < 2.0, "rate {}", w.mean_rate());
        let times: Vec<SimTime> = w.requests.iter().map(|r| r.arrival).collect();
        let cv = interarrival_cv(&times);
        assert!((cv - 4.0).abs() < 0.6, "cv {cv}");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let spec = WorkloadSpec::paper_e2e(1.0, 60.0);
        let w = spec.generate(&mut SimRng::seed(1));
        for (i, r) in w.requests.iter().enumerate() {
            assert_eq!(r.id, RequestId(i as u64));
        }
        assert!(w.requests.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn burst_spec_produces_bimodal_traffic() {
        let spec = WorkloadSpec {
            arrivals: ArrivalSpec::Burst {
                calm_rate: 2.0,
                burst_rate: 100.0,
                calm_secs: 50.0,
                burst_secs: 5.0,
            },
            lengths: LengthProfile::chat(),
            slo: SimDuration::from_secs(5),
            slo_per_output_token: SimDuration::ZERO,
            horizon_secs: 2000.0,
        };
        let w = spec.generate(&mut SimRng::seed(7));
        let times: Vec<SimTime> = w.requests.iter().map(|r| r.arrival).collect();
        assert!(interarrival_cv(&times) > 1.5);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let spec = WorkloadSpec::paper_e2e(2.0, 120.0);
        let a = spec.generate(&mut SimRng::seed(5));
        let b = spec.generate(&mut SimRng::seed(5));
        assert_eq!(a, b);
        let c = spec.generate(&mut SimRng::seed(6));
        assert_ne!(a, c);
    }
}
