//! Prompt and output length distributions.
//!
//! The paper supplements the Azure Functions arrival traces with the
//! Splitwise corpus for prompt generation (§9). Splitwise's published
//! distributions have log-normal-shaped prompts with heavy right tails and
//! much shorter generation lengths; [`LengthProfile`] captures that shape
//! with clamped log-normal prompts and geometric-like outputs.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{LogNormalSampler, SimRng};

/// Parameters of a length distribution pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthProfile {
    /// Median prompt length, tokens.
    pub prompt_median: f64,
    /// Log-space sigma of the prompt distribution.
    pub prompt_sigma: f64,
    /// Prompt clamp range.
    pub prompt_range: (u32, u32),
    /// Mean output length, tokens.
    pub output_mean: f64,
    /// Output clamp range.
    pub output_range: (u32, u32),
}

impl LengthProfile {
    /// Splitwise-like conversation/code mix: prompts with median ≈ 1024
    /// tokens and heavy tail, outputs with mean ≈ 64.
    pub fn splitwise_like() -> Self {
        LengthProfile {
            prompt_median: 1024.0,
            prompt_sigma: 0.9,
            prompt_range: (16, 8192),
            output_mean: 64.0,
            output_range: (1, 1024),
        }
    }

    /// Short interactive chat traffic.
    pub fn chat() -> Self {
        LengthProfile {
            prompt_median: 256.0,
            prompt_sigma: 0.7,
            prompt_range: (8, 2048),
            output_mean: 48.0,
            output_range: (1, 512),
        }
    }

    /// Single-pass encoder traffic (classification): output length 1.
    pub fn encoder() -> Self {
        LengthProfile {
            prompt_median: 384.0,
            prompt_sigma: 0.5,
            prompt_range: (16, 512),
            output_mean: 1.0,
            output_range: (1, 1),
        }
    }

    /// Fixed lengths, for deterministic tests and microbenchmarks.
    pub fn fixed(prompt: u32, output: u32) -> Self {
        LengthProfile {
            prompt_median: f64::from(prompt),
            prompt_sigma: 0.0,
            prompt_range: (prompt, prompt),
            output_mean: f64::from(output),
            output_range: (output, output),
        }
    }
}

/// Samples (prompt, output) length pairs from a profile.
#[derive(Debug, Clone)]
pub struct LengthSampler {
    profile: LengthProfile,
    prompt: Option<LogNormalSampler>,
}

impl LengthSampler {
    /// Builds a sampler; a zero sigma collapses to the fixed median.
    pub fn new(profile: LengthProfile) -> Self {
        let prompt = if profile.prompt_sigma > 0.0 {
            Some(
                LogNormalSampler::from_median_sigma(profile.prompt_median, profile.prompt_sigma)
                    .expect("prompt profile must be valid"),
            )
        } else {
            None
        };
        LengthSampler { profile, prompt }
    }

    /// The profile in use.
    pub fn profile(&self) -> &LengthProfile {
        &self.profile
    }

    /// Draws a prompt length.
    pub fn sample_prompt(&self, rng: &mut SimRng) -> u32 {
        let (lo, hi) = self.profile.prompt_range;
        match &self.prompt {
            Some(d) => d.sample_clamped(rng, u64::from(lo), u64::from(hi)) as u32,
            None => self.profile.prompt_median.round() as u32,
        }
    }

    /// Draws an output length (geometric with the profile mean, clamped).
    pub fn sample_output(&self, rng: &mut SimRng) -> u32 {
        let (lo, hi) = self.profile.output_range;
        if lo == hi {
            return lo;
        }
        // Geometric via inversion: mean m ⇒ p = 1/m.
        let p = (1.0 / self.profile.output_mean).clamp(1e-6, 1.0);
        let u = rng.f64().max(1e-12);
        let k = (u.ln() / (1.0 - p).ln()).ceil().max(1.0);
        (k as u32).clamp(lo, hi)
    }

    /// Draws a (prompt, output) pair.
    pub fn sample(&self, rng: &mut SimRng) -> (u32, u32) {
        (self.sample_prompt(rng), self.sample_output(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitwise_prompt_median_lands() {
        let s = LengthSampler::new(LengthProfile::splitwise_like());
        let mut rng = SimRng::seed(1);
        let mut xs: Vec<u32> = (0..50_001).map(|_| s.sample_prompt(&mut rng)).collect();
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64;
        assert!((med - 1024.0).abs() / 1024.0 < 0.06, "median {med}");
        // Heavy tail exists but clamps hold.
        assert!(*xs.last().unwrap() <= 8192);
        assert!(*xs.first().unwrap() >= 16);
    }

    #[test]
    fn output_mean_approximates_profile() {
        let s = LengthSampler::new(LengthProfile::splitwise_like());
        let mut rng = SimRng::seed(2);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| u64::from(s.sample_output(&mut rng))).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 64.0).abs() / 64.0 < 0.1, "mean {mean}");
    }

    #[test]
    fn fixed_profile_is_deterministic() {
        let s = LengthSampler::new(LengthProfile::fixed(512, 32));
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), (512, 32));
        }
    }

    #[test]
    fn encoder_profile_generates_one_token() {
        let s = LengthSampler::new(LengthProfile::encoder());
        let mut rng = SimRng::seed(4);
        for _ in 0..100 {
            assert_eq!(s.sample_output(&mut rng), 1);
        }
    }
}
