//! Request records flowing through the serving system.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

/// Identifier of one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id (dense, in arrival order).
    pub id: RequestId,
    /// Arrival time at the gateway.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Number of tokens to generate (1 for encoder-only models).
    pub output_tokens: u32,
    /// Latency service-level objective for goodput accounting.
    pub slo: SimDuration,
}

impl Request {
    /// Total tokens the request touches (prompt + generated).
    pub fn total_tokens(&self) -> u32 {
        self.prompt_tokens + self.output_tokens
    }
}

/// A complete generated workload: requests sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Workload {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Builds from parts, asserting arrival order.
    pub fn new(requests: Vec<Request>) -> Self {
        debug_assert!(requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        Workload { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Arrival timestamps in seconds.
    pub fn arrival_secs(&self) -> Vec<f64> {
        self.requests
            .iter()
            .map(|r| r.arrival.as_secs_f64())
            .collect()
    }

    /// Mean arrival rate over the workload span, requests/second.
    pub fn mean_rate(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let span = self
            .requests
            .last()
            .unwrap()
            .arrival
            .saturating_since(self.requests[0].arrival)
            .as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.requests.len() - 1) as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, at_ms: u64) -> Request {
        Request {
            id: RequestId(id),
            arrival: SimTime::from_millis(at_ms),
            prompt_tokens: 100,
            output_tokens: 20,
            slo: SimDuration::from_secs(5),
        }
    }

    #[test]
    fn workload_rate() {
        let w = Workload::new(vec![req(0, 0), req(1, 500), req(2, 1000)]);
        assert!((w.mean_rate() - 2.0).abs() < 1e-9);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn empty_workload_rate_is_zero() {
        assert_eq!(Workload::default().mean_rate(), 0.0);
        let single = Workload::new(vec![req(0, 10)]);
        assert_eq!(single.mean_rate(), 0.0);
    }

    #[test]
    fn total_tokens() {
        assert_eq!(req(0, 0).total_tokens(), 120);
    }
}
