//! Workload generation for the FlexPipe reproduction: arrival processes
//! with controllable burstiness, synthetic production traces, CV analysis
//! and request length distributions.
//!
//! The paper's entire evaluation is parameterised by the coefficient of
//! variation (CV) of request inter-arrival times; [`arrivals`] provides
//! Gamma-renewal processes hitting any target CV exactly, [`trace`]
//! synthesizes Alibaba/Azure-like multi-day traces whose CV depends on the
//! measurement window (Fig. 1), and [`cv`] hosts both the offline windowed
//! analyzer and the online estimator FlexPipe's controller consumes.

#![warn(missing_docs)]

pub mod arrivals;
pub mod builder;
pub mod cv;
pub mod io;
pub mod lengths;
pub mod request;
pub mod trace;

pub use arrivals::{
    gen_gamma_renewal, gen_mmpp, gen_nhpp, gen_poisson, interarrival_cv, MmppState, RateFn,
};
pub use builder::{ArrivalSpec, WorkloadSpec};
pub use cv::{cv_in_window, windowed_cv_series, CvEstimator, CvPoint};
pub use io::{from_csv, load, save, to_csv, TraceIoError};
pub use lengths::{LengthProfile, LengthSampler};
pub use request::{Request, RequestId, Workload};
pub use trace::{SyntheticTrace, TraceProfile};
