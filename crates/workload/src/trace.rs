//! Synthetic production traces.
//!
//! Fig. 1 of the paper plots the request-distribution CV of a 31-day
//! Alibaba trace and the top-2 Azure applications, computed over 180 s /
//! 3 h / 12 h windows; the three series disagree by up to 7x. We cannot
//! redistribute those traces, so this module synthesizes processes with the
//! same statistical signature: a diurnal daily cycle, day-to-day drift, and
//! Markov-modulated bursting at minute scale. Local windows see the burst
//! CV; long windows additionally see the diurnal rate swings.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimRng, SimTime};

use crate::arrivals::RateFn;

/// Parameters of a synthetic production trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Baseline rate, requests/second.
    pub base_rate: f64,
    /// Diurnal amplitude as a fraction of base (0.6 → peak = 1.6x base).
    pub diurnal_amplitude: f64,
    /// Day-to-day drift amplitude (slow sinusoid over ~1 week).
    pub weekly_amplitude: f64,
    /// Burst multiplier while the burst regime is active.
    pub burst_multiplier: f64,
    /// Fraction of time spent bursting.
    pub burst_duty: f64,
    /// Mean burst duration, seconds.
    pub burst_mean_secs: f64,
}

impl TraceProfile {
    /// Alibaba-GenAI-like aggregate trace (Fig. 1a).
    pub fn alibaba_like() -> Self {
        TraceProfile {
            base_rate: 4.0,
            diurnal_amplitude: 0.9,
            weekly_amplitude: 0.3,
            burst_multiplier: 30.0,
            burst_duty: 0.08,
            burst_mean_secs: 45.0,
        }
    }

    /// Azure top-1 application (Fig. 1b): spikier, lower base.
    pub fn azure_top1_like() -> Self {
        TraceProfile {
            base_rate: 2.0,
            diurnal_amplitude: 0.8,
            weekly_amplitude: 0.25,
            burst_multiplier: 60.0,
            burst_duty: 0.04,
            burst_mean_secs: 20.0,
        }
    }

    /// Azure top-2 application (Fig. 1c): batchy with long calm stretches.
    pub fn azure_top2_like() -> Self {
        TraceProfile {
            base_rate: 1.0,
            diurnal_amplitude: 0.6,
            weekly_amplitude: 0.45,
            burst_multiplier: 100.0,
            burst_duty: 0.02,
            burst_mean_secs: 60.0,
        }
    }
}

/// A realised burst regime timeline plus the deterministic rate envelope.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: TraceProfile,
    /// Sorted `(start, end)` burst intervals in seconds.
    bursts: Vec<(f64, f64)>,
    horizon_secs: f64,
}

impl SyntheticTrace {
    /// Samples the burst regime timeline for `horizon_secs`.
    pub fn generate(profile: TraceProfile, horizon_secs: f64, rng: &mut SimRng) -> Self {
        let mut bursts = Vec::new();
        // Alternate calm/burst with exponential dwell times chosen to hit
        // the target duty cycle.
        let calm_mean =
            profile.burst_mean_secs * (1.0 - profile.burst_duty) / profile.burst_duty.max(1e-6);
        let mut t = 0.0;
        let mut bursting = false;
        while t < horizon_secs {
            let mean = if bursting {
                profile.burst_mean_secs
            } else {
                calm_mean
            };
            let dwell = -mean * rng.f64().max(1e-12).ln();
            let end = (t + dwell).min(horizon_secs);
            if bursting {
                bursts.push((t, end));
            }
            t = end;
            bursting = !bursting;
        }
        SyntheticTrace {
            profile,
            bursts,
            horizon_secs,
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &TraceProfile {
        &self.profile
    }

    /// The horizon in seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    fn bursting_at(&self, t: f64) -> bool {
        // Binary search over sorted intervals.
        match self
            .bursts
            .binary_search_by(|&(s, _)| s.partial_cmp(&t).expect("burst times are finite"))
        {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => t < self.bursts[i - 1].1,
        }
    }

    /// Generates the arrival stream of this trace.
    ///
    /// Uses segment-wise thinning: outside burst intervals the candidate
    /// rate bound excludes the burst multiplier, which makes generation
    /// ~`burst_multiplier`x cheaper than thinning at the global bound for
    /// low-duty traces.
    pub fn arrivals(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let p = &self.profile;
        let envelope_max = p.base_rate * (1.0 + p.diurnal_amplitude) * (1.0 + p.weekly_amplitude);
        // Build the alternating calm/burst segment list.
        let mut segments: Vec<(f64, f64, bool)> = Vec::new();
        let mut cursor = 0.0;
        for &(s, e) in &self.bursts {
            if s > cursor {
                segments.push((cursor, s, false));
            }
            segments.push((s, e, true));
            cursor = e;
        }
        if cursor < self.horizon_secs {
            segments.push((cursor, self.horizon_secs, false));
        }
        let mut out = Vec::new();
        for (s, e, bursting) in segments {
            let bound = if bursting {
                envelope_max * p.burst_multiplier
            } else {
                envelope_max
            };
            let mut t = s;
            loop {
                t += -rng.f64().max(1e-12).ln() / bound;
                if t >= e {
                    break;
                }
                if rng.f64() < self.rate(t) / bound {
                    out.push(SimTime::from_secs_f64(t));
                }
            }
        }
        out
    }
}

impl RateFn for SyntheticTrace {
    fn rate(&self, t: f64) -> f64 {
        let p = &self.profile;
        let day = 86_400.0;
        let diurnal = 1.0 + p.diurnal_amplitude * (2.0 * std::f64::consts::PI * t / day).sin();
        let weekly =
            1.0 + p.weekly_amplitude * (2.0 * std::f64::consts::PI * t / (7.0 * day)).sin();
        let burst = if self.bursting_at(t) {
            p.burst_multiplier
        } else {
            1.0
        };
        (p.base_rate * diurnal * weekly * burst).max(0.01)
    }

    fn max_rate(&self) -> f64 {
        let p = &self.profile;
        p.base_rate * (1.0 + p.diurnal_amplitude) * (1.0 + p.weekly_amplitude) * p.burst_multiplier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::{cv_in_window, windowed_cv_series};
    use flexpipe_sim::SimDuration;

    #[test]
    fn burst_duty_is_respected() {
        let mut rng = SimRng::seed(1);
        let trace = SyntheticTrace::generate(TraceProfile::alibaba_like(), 200_000.0, &mut rng);
        let burst_time: f64 = trace.bursts.iter().map(|(s, e)| e - s).sum();
        let duty = burst_time / 200_000.0;
        assert!((duty - 0.08).abs() < 0.025, "duty {duty}");
    }

    #[test]
    fn rate_envelope_bounds_hold() {
        let mut rng = SimRng::seed(2);
        let trace = SyntheticTrace::generate(TraceProfile::azure_top1_like(), 86_400.0, &mut rng);
        for i in 0..1000 {
            let t = i as f64 * 86.4;
            let r = trace.rate(t);
            assert!(r > 0.0 && r <= trace.max_rate() + 1e-9, "rate {r} at {t}");
        }
    }

    #[test]
    fn window_size_divergence_matches_fig1() {
        // One synthetic day: short-window CV stays near-Poisson while the
        // 6 h window sees diurnal+burst swings — the paper's 7x mismatch
        // (we assert ≥ 2.5x which already breaks static configuration).
        let mut rng = SimRng::seed(3);
        let trace = SyntheticTrace::generate(TraceProfile::alibaba_like(), 86_400.0, &mut rng);
        let arrivals = trace.arrivals(&mut rng);
        assert!(arrivals.len() > 100_000, "got {}", arrivals.len());

        let short = windowed_cv_series(
            &arrivals,
            SimDuration::from_secs(180),
            SimTime::from_secs(86_400),
        );
        let short_med = {
            let mut xs: Vec<f64> = short
                .iter()
                .filter(|p| p.count >= 3)
                .map(|p| p.cv)
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        // The two 12 h halves differ (one spans the diurnal trough);
        // Fig. 1 plots the larger swings, so take the max.
        let long =
            cv_in_window(&arrivals, SimTime::ZERO, SimTime::from_secs(43_200)).max(cv_in_window(
                &arrivals,
                SimTime::from_secs(43_200),
                SimTime::from_secs(86_400),
            ));
        assert!(
            long / short_med > 2.5,
            "12h CV {long} vs 180s median {short_med}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t1 = SyntheticTrace::generate(
            TraceProfile::azure_top2_like(),
            10_000.0,
            &mut SimRng::seed(5),
        );
        let t2 = SyntheticTrace::generate(
            TraceProfile::azure_top2_like(),
            10_000.0,
            &mut SimRng::seed(5),
        );
        assert_eq!(t1.bursts, t2.bursts);
        let a1 = t1.arrivals(&mut SimRng::seed(6));
        let a2 = t2.arrivals(&mut SimRng::seed(6));
        assert_eq!(a1, a2);
    }
}
