//! Workload serialization: save generated request streams and replay them.
//!
//! Experiments become portable artefacts: a generated workload can be
//! exported once and replayed byte-identically (arrival times at
//! nanosecond resolution), independent of generator-version drift.

use std::path::Path;

use flexpipe_sim::{SimDuration, SimTime};

use crate::request::{Request, RequestId, Workload};

/// Errors from workload (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed record with its line number and description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io: {e}"),
            TraceIoError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

const HEADER: &str = "arrival_ns,prompt_tokens,output_tokens,slo_ns";

/// Renders a workload as CSV (ids are positional and omitted).
pub fn to_csv(workload: &Workload) -> String {
    let mut out = String::with_capacity(workload.len() * 32 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in &workload.requests {
        out.push_str(&format!(
            "{},{},{},{}\n",
            r.arrival.as_nanos(),
            r.prompt_tokens,
            r.output_tokens,
            r.slo.as_nanos()
        ));
    }
    out
}

/// Parses a workload from CSV produced by [`to_csv`].
pub fn from_csv(csv: &str) -> Result<Workload, TraceIoError> {
    let mut requests = Vec::new();
    let mut last_arrival = 0u64;
    for (i, line) in csv.lines().enumerate() {
        if i == 0 {
            if line.trim() != HEADER {
                return Err(TraceIoError::Parse {
                    line: 1,
                    reason: format!("expected header '{HEADER}', got '{line}'"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(TraceIoError::Parse {
                line: i + 1,
                reason: format!("expected 4 fields, got {}", parts.len()),
            });
        }
        let field = |idx: usize| -> Result<u64, TraceIoError> {
            parts[idx].trim().parse().map_err(|e| TraceIoError::Parse {
                line: i + 1,
                reason: format!("field {idx}: {e}"),
            })
        };
        let arrival = field(0)?;
        if arrival < last_arrival {
            return Err(TraceIoError::Parse {
                line: i + 1,
                reason: format!("arrivals not sorted: {arrival} after {last_arrival}"),
            });
        }
        last_arrival = arrival;
        requests.push(Request {
            id: RequestId(requests.len() as u64),
            arrival: SimTime::from_nanos(arrival),
            prompt_tokens: field(1)? as u32,
            output_tokens: field(2)? as u32,
            slo: SimDuration::from_nanos(field(3)?),
        });
    }
    Ok(Workload::new(requests))
}

/// Writes a workload to `path` as CSV.
pub fn save(workload: &Workload, path: &Path) -> Result<(), TraceIoError> {
    std::fs::write(path, to_csv(workload))?;
    Ok(())
}

/// Loads a workload from a CSV file.
pub fn load(path: &Path) -> Result<Workload, TraceIoError> {
    from_csv(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ArrivalSpec, WorkloadSpec};
    use crate::lengths::LengthProfile;
    use flexpipe_sim::SimRng;

    fn sample() -> Workload {
        WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal {
                rate: 10.0,
                cv: 2.0,
            },
            lengths: LengthProfile::chat(),
            slo: SimDuration::from_secs(5),
            slo_per_output_token: SimDuration::from_millis(100),
            horizon_secs: 30.0,
        }
        .generate(&mut SimRng::seed(17))
    }

    #[test]
    fn csv_round_trip_is_identical() {
        let w = sample();
        let csv = to_csv(&w);
        let back = from_csv(&csv).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn file_round_trip() {
        let w = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("flexpipe_trace_test.csv");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(w, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_csv("nope\n1,2,3,4\n").unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_rows() {
        let csv = format!("{HEADER}\n1,2,3\n");
        assert!(matches!(
            from_csv(&csv).unwrap_err(),
            TraceIoError::Parse { line: 2, .. }
        ));
        let csv = format!("{HEADER}\n1,2,x,4\n");
        assert!(from_csv(&csv).is_err());
    }

    #[test]
    fn rejects_unsorted_arrivals() {
        let csv = format!("{HEADER}\n100,1,1,1\n50,1,1,1\n");
        let err = from_csv(&csv).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 3, .. }));
    }

    #[test]
    fn empty_trace_loads() {
        let w = from_csv(&format!("{HEADER}\n")).unwrap();
        assert!(w.is_empty());
    }
}
