//! `flexpipe-chaos`: cluster disruption and resilience scripting.
//!
//! FlexPipe's central claim is that pipelines can be refactored *inflight*
//! while fragmented serverless capacity shifts under the tenant. Background
//! load drift alone never exercises the hardest case — capacity being
//! *revoked* while micro-batches are in flight. This crate provides the
//! scenario vocabulary for exactly that:
//!
//! - [`script`] — the declarative [`DisruptionScript`]: timed
//!   [`Disruption`] events (GPU failures, spot preemptions with a grace
//!   window, capacity returns, arrival-rate surges) expressible in JSON or
//!   the fleet's TOML subset;
//! - [`gen`] — seed-derived MTBF-style stochastic generators
//!   ([`RandomDisruptions`]) that realize a script deterministically from a
//!   fleet cell seed, so every policy in a cell group faces the identical
//!   disruption trace;
//! - [`surge`] — rate-surge application: a piecewise time-warp that maps a
//!   workload generated over a *virtual* horizon onto the real horizon so
//!   arrival density multiplies inside surge windows.
//!
//! The execution side lives in `flexpipe-cluster` (capacity revocation) and
//! `flexpipe-serving` (`Event::Revoke` / `Event::Restore`, in-flight
//! micro-batch kill/rescue and recovery accounting); this crate is pure
//! description and stays free of engine dependencies.

#![warn(missing_docs)]

pub mod gen;
pub mod script;
pub mod surge;

pub use gen::RandomDisruptions;
pub use script::{Disruption, DisruptionEvent, DisruptionScript, SurgeWindow};
pub use surge::{virtual_horizon, warp_arrivals};
