//! Rate-surge application: a piecewise-linear time-warp over arrivals.
//!
//! Arrival traces are generated once, up front, by `flexpipe-workload`; a
//! surge therefore cannot be injected at engine runtime. Instead the
//! workload is generated over a *virtual* horizon — the real horizon with
//! every surge window stretched by its factor — and then warped back:
//! arrivals inside a stretched window compress into the real window,
//! multiplying local arrival density by exactly the surge factor while the
//! renewal structure (and the target CV) of the underlying process is
//! preserved.
//!
//! The warp is strictly monotonic, keeps the trace sorted, maps the
//! virtual horizon onto the real horizon, and is the identity when the
//! script has no surges — disruption-free cells stay byte-identical.

use flexpipe_sim::SimTime;
use flexpipe_workload::Workload;

use crate::script::{DisruptionScript, SurgeWindow};

/// One real-time segment with its rate factor (1.0 between windows).
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: f64,
    end: f64,
    factor: f64,
}

/// Splits `[0, horizon]` into contiguous segments by the script's surge
/// windows (clipped to the horizon).
///
/// Overlapping windows compose *multiplicatively*: two independent surge
/// processes both doubling the rate over the same interval yield 4× there
/// — the only composition consistent with each window's own "multiply the
/// rate by `factor`" contract. (An earlier revision silently truncated
/// the second window to start where the first ended, quietly under-
/// driving overlapped scripts; the boundary sweep below makes any window
/// arrangement well-defined.)
fn segments(script: &DisruptionScript, horizon_secs: f64) -> Vec<Segment> {
    let windows: Vec<SurgeWindow> = script
        .surge_windows()
        .into_iter()
        .map(|w| SurgeWindow {
            start: w.start.clamp(0.0, horizon_secs),
            end: w.end.clamp(0.0, horizon_secs),
            factor: w.factor,
        })
        .filter(|w| w.end > w.start)
        .collect();
    // Boundary sweep: every window edge starts a new segment whose factor
    // is the product of the windows covering it.
    let mut cuts: Vec<f64> = vec![0.0, horizon_secs];
    for w in &windows {
        cuts.push(w.start);
        cuts.push(w.end);
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
    cuts.dedup();
    let mut segs = Vec::with_capacity(cuts.len());
    for pair in cuts.windows(2) {
        let (start, end) = (pair[0], pair[1]);
        if end <= start {
            continue;
        }
        let factor: f64 = windows
            .iter()
            .filter(|w| w.start <= start && end <= w.end)
            .map(|w| w.factor)
            .product();
        segs.push(Segment { start, end, factor });
    }
    if segs.is_empty() {
        segs.push(Segment {
            start: 0.0,
            end: horizon_secs,
            factor: 1.0,
        });
    }
    segs
}

/// The virtual horizon a workload must be generated over so that, after
/// [`warp_arrivals`], it spans exactly `horizon_secs` of real time.
pub fn virtual_horizon(horizon_secs: f64, script: &DisruptionScript) -> f64 {
    segments(script, horizon_secs)
        .iter()
        .map(|s| (s.end - s.start) * s.factor)
        .sum()
}

/// Warps a workload generated over [`virtual_horizon`] seconds back onto
/// the real `horizon_secs` axis, densifying arrivals inside each surge
/// window by its factor. No-op for scripts without surges.
pub fn warp_arrivals(workload: &mut Workload, script: &DisruptionScript, horizon_secs: f64) {
    let segs = segments(script, horizon_secs);
    if segs.iter().all(|s| s.factor == 1.0) {
        return;
    }
    // Virtual start offset of each segment.
    let mut vstarts = Vec::with_capacity(segs.len());
    let mut v = 0.0;
    for s in &segs {
        vstarts.push(v);
        v += (s.end - s.start) * s.factor;
    }
    let total_virtual = v;
    for req in &mut workload.requests {
        let vt = req.arrival.as_secs_f64();
        let real = if vt >= total_virtual {
            // Numerical tail: extend past the horizon at factor 1.
            horizon_secs + (vt - total_virtual)
        } else {
            // Find the containing segment (few segments; linear scan).
            let mut idx = 0;
            for (i, &vs) in vstarts.iter().enumerate() {
                if vt >= vs {
                    idx = i;
                } else {
                    break;
                }
            }
            let s = segs[idx];
            s.start + (vt - vstarts[idx]) / s.factor
        };
        req.arrival = SimTime::from_secs_f64(real);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{Disruption, DisruptionEvent};
    use flexpipe_sim::{SimDuration, SimRng};
    use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};

    fn surge_script(at: f64, dur: f64, factor: f64) -> DisruptionScript {
        DisruptionScript {
            name: "surge".into(),
            events: vec![DisruptionEvent {
                at_secs: at,
                kind: Disruption::RateSurge {
                    factor,
                    duration_secs: dur,
                },
            }],
        }
    }

    fn workload(horizon: f64, rate: f64, seed: u64) -> Workload {
        WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal { rate, cv: 1.0 },
            lengths: LengthProfile::fixed(64, 4),
            slo: SimDuration::from_secs(2),
            slo_per_output_token: SimDuration::ZERO,
            horizon_secs: horizon,
        }
        .generate(&mut SimRng::seed(seed))
    }

    #[test]
    fn virtual_horizon_stretches_windows() {
        let s = surge_script(10.0, 5.0, 3.0);
        // 100 s real, 5 s of it at 3x: 100 + 5*2 = 110 virtual.
        assert!((virtual_horizon(100.0, &s) - 110.0).abs() < 1e-9);
        assert_eq!(virtual_horizon(100.0, &DisruptionScript::default()), 100.0);
    }

    #[test]
    fn empty_script_is_identity() {
        let mut w = workload(60.0, 5.0, 3);
        let before: Vec<_> = w.requests.iter().map(|r| r.arrival).collect();
        warp_arrivals(&mut w, &DisruptionScript::default(), 60.0);
        let after: Vec<_> = w.requests.iter().map(|r| r.arrival).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn warp_densifies_the_window_and_preserves_count_and_order() {
        let script = surge_script(20.0, 10.0, 4.0);
        let horizon = 100.0;
        let vh = virtual_horizon(horizon, &script);
        let mut w = workload(vh, 5.0, 11);
        let n = w.requests.len();
        warp_arrivals(&mut w, &script, horizon);
        assert_eq!(w.requests.len(), n);
        // Still sorted.
        assert!(w.requests.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        // Arrivals inside the window are ~4x the base density.
        let count_in = |w: &Workload, a: f64, b: f64| {
            w.requests
                .iter()
                .filter(|r| {
                    let t = r.arrival.as_secs_f64();
                    t >= a && t < b
                })
                .count() as f64
        };
        let in_window = count_in(&w, 20.0, 30.0) / 10.0;
        let outside = count_in(&w, 40.0, 90.0) / 50.0;
        assert!(
            in_window > outside * 2.0,
            "window rate {in_window}/s vs outside {outside}/s"
        );
        // The trace still ends near the real horizon.
        let last = w.requests.last().unwrap().arrival.as_secs_f64();
        assert!(last <= horizon + 1.0, "last arrival {last}");
    }

    #[test]
    fn overlapping_surges_compose_multiplicatively() {
        // 2x over [10, 30) and 3x over [20, 40): the overlap [20, 30)
        // runs at 6x. Virtual horizon:
        // 10·1 + 10·2 + 10·6 + 10·3 + 60·1 = 180.
        let script = DisruptionScript {
            name: "overlap".into(),
            events: vec![
                DisruptionEvent {
                    at_secs: 10.0,
                    kind: Disruption::RateSurge {
                        factor: 2.0,
                        duration_secs: 20.0,
                    },
                },
                DisruptionEvent {
                    at_secs: 20.0,
                    kind: Disruption::RateSurge {
                        factor: 3.0,
                        duration_secs: 20.0,
                    },
                },
            ],
        };
        let horizon = 100.0;
        assert!((virtual_horizon(horizon, &script) - 180.0).abs() < 1e-9);

        let vh = virtual_horizon(horizon, &script);
        let mut w = workload(vh, 20.0, 17);
        let n = w.requests.len();
        warp_arrivals(&mut w, &script, horizon);
        assert_eq!(w.requests.len(), n);
        assert!(w.requests.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        let rate_in = |w: &Workload, a: f64, b: f64| {
            w.requests
                .iter()
                .filter(|r| {
                    let t = r.arrival.as_secs_f64();
                    t >= a && t < b
                })
                .count() as f64
                / (b - a)
        };
        let base = rate_in(&w, 50.0, 100.0);
        let double = rate_in(&w, 10.0, 20.0);
        let sixfold = rate_in(&w, 20.0, 30.0);
        // The overlap region is denser than either single window and near
        // the product; generous bands keep the renewal noise out.
        assert!(
            double > 1.4 * base && double < 2.8 * base,
            "2x window rate {double}/s vs base {base}/s"
        );
        assert!(
            sixfold > 4.0 * base,
            "6x overlap rate {sixfold}/s vs base {base}/s"
        );
        assert!(
            sixfold > 1.8 * double,
            "overlap must out-pace the 2x window"
        );
    }

    #[test]
    fn warp_is_monotonic_across_boundaries() {
        let script = surge_script(5.0, 5.0, 2.0);
        let horizon = 20.0;
        let vh = virtual_horizon(horizon, &script);
        let mut w = workload(vh, 20.0, 5);
        warp_arrivals(&mut w, &script, horizon);
        assert!(w.requests.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }
}
