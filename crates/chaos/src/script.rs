//! The declarative disruption script: timed cluster disruption events.
//!
//! Scripts describe *what the platform does to the tenant*: individual GPU
//! failures (hardware loss, no warning), spot preemptions of whole servers
//! (with the multi-second grace notice public clouds give), capacity
//! returning to the pool, and arrival-rate surges. GPU and server targets
//! are plain indices into the cluster's topology so scripts stay portable
//! across cluster shapes of compatible size.

use serde::{Deserialize, Serialize};

/// One disruption kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Disruption {
    /// Hardware failure of one GPU: immediate, no grace.
    GpuFail {
        /// Topology index of the failing GPU.
        gpu: u32,
    },
    /// Spot preemption of a whole server: every GPU (and the host-memory
    /// parameter cache) on it is revoked after the grace window.
    ServerPreempt {
        /// Topology index of the preempted server.
        server: u32,
        /// Grace between the preemption notice and the revocation.
        grace_secs: f64,
    },
    /// Spot preemption of the `rank`-th *busiest* server — resolved at
    /// event time by serving-leased bytes (ties break toward the lowest
    /// server id). Rank 0 always hits the tenant's deployment regardless
    /// of where a policy placed its stages, which is what an adversarial
    /// resilience test needs.
    HotServerPreempt {
        /// Busyness rank of the victim (0 = busiest).
        rank: u32,
        /// Grace between the preemption notice and the revocation.
        grace_secs: f64,
    },
    /// Previously revoked capacity returns to the pool.
    CapacityReturn {
        /// GPU indices to restore.
        gpus: Vec<u32>,
        /// Server indices to restore (all their GPUs plus host memory).
        servers: Vec<u32>,
    },
    /// Arrival-rate surge: the request rate multiplies by `factor` for
    /// `duration_secs`. Applied at workload-generation time via
    /// [`crate::surge::warp_arrivals`]; the serving engine itself sees
    /// only the densified arrivals. Overlapping surge windows compose
    /// multiplicatively (two 2× surges covering the same instant make
    /// that instant 4×).
    RateSurge {
        /// Rate multiplier (> 0; > 1 densifies, < 1 thins).
        factor: f64,
        /// Surge window length in seconds.
        duration_secs: f64,
    },
}

/// A disruption pinned to a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisruptionEvent {
    /// When the event fires (notice time for graced preemptions), seconds.
    pub at_secs: f64,
    /// What happens.
    pub kind: Disruption,
}

/// A named, ordered list of timed disruptions.
///
/// The default script is empty (no disruptions), which keeps every
/// pre-chaos scenario byte-identical to its previous behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisruptionScript {
    /// Script name (used in fleet cell labels).
    pub name: String,
    /// The events; [`DisruptionScript::sorted`] normalizes the order.
    pub events: Vec<DisruptionEvent>,
}

impl Default for DisruptionScript {
    fn default() -> Self {
        DisruptionScript {
            name: "none".into(),
            events: Vec::new(),
        }
    }
}

/// One rate-surge window extracted from a script.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeWindow {
    /// Window start, seconds.
    pub start: f64,
    /// Window end, seconds.
    pub end: f64,
    /// Rate multiplier inside the window.
    pub factor: f64,
}

impl DisruptionScript {
    /// Whether the script contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A copy with events sorted by `(time, original index)` — the order
    /// the engine schedules them in, stable under equal timestamps.
    pub fn sorted(&self) -> DisruptionScript {
        let mut indexed: Vec<(usize, DisruptionEvent)> =
            self.events.iter().cloned().enumerate().collect();
        indexed.sort_by(|(ia, a), (ib, b)| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.cmp(ib))
        });
        DisruptionScript {
            name: self.name.clone(),
            events: indexed.into_iter().map(|(_, e)| e).collect(),
        }
    }

    /// The script's rate-surge windows, sorted by start time.
    pub fn surge_windows(&self) -> Vec<SurgeWindow> {
        let mut windows: Vec<SurgeWindow> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                Disruption::RateSurge {
                    factor,
                    duration_secs,
                } => Some(SurgeWindow {
                    start: e.at_secs,
                    end: e.at_secs + duration_secs,
                    factor,
                }),
                _ => None,
            })
            .collect();
        windows.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        windows
    }

    /// Validates the script against a cluster of `gpus` GPUs and `servers`
    /// servers, returning the first problem found.
    pub fn validate(&self, gpus: u32, servers: u32) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if !e.at_secs.is_finite() || e.at_secs < 0.0 {
                return Err(format!("event {i}: at_secs must be finite and >= 0"));
            }
            match &e.kind {
                Disruption::GpuFail { gpu } => {
                    if *gpu >= gpus {
                        return Err(format!("event {i}: gpu {gpu} out of range (< {gpus})"));
                    }
                }
                Disruption::ServerPreempt { server, grace_secs } => {
                    if *server >= servers {
                        return Err(format!(
                            "event {i}: server {server} out of range (< {servers})"
                        ));
                    }
                    if !grace_secs.is_finite() || *grace_secs < 0.0 {
                        return Err(format!("event {i}: grace must be finite and >= 0"));
                    }
                }
                Disruption::HotServerPreempt { rank, grace_secs } => {
                    if *rank >= servers {
                        return Err(format!("event {i}: rank {rank} out of range (< {servers})"));
                    }
                    if !grace_secs.is_finite() || *grace_secs < 0.0 {
                        return Err(format!("event {i}: grace must be finite and >= 0"));
                    }
                }
                Disruption::CapacityReturn {
                    gpus: gs,
                    servers: ss,
                } => {
                    if let Some(g) = gs.iter().find(|&&g| g >= gpus) {
                        return Err(format!("event {i}: gpu {g} out of range (< {gpus})"));
                    }
                    if let Some(s) = ss.iter().find(|&&s| s >= servers) {
                        return Err(format!("event {i}: server {s} out of range (< {servers})"));
                    }
                }
                Disruption::RateSurge {
                    factor,
                    duration_secs,
                } => {
                    if !(factor.is_finite() && *factor > 0.0) {
                        return Err(format!("event {i}: surge factor must be finite and > 0"));
                    }
                    if !(duration_secs.is_finite() && *duration_secs > 0.0) {
                        return Err(format!("event {i}: surge duration must be finite and > 0"));
                    }
                }
            }
        }
        // Overlapping surge windows are legal: the warp composes their
        // factors multiplicatively over the overlap (see
        // [`crate::surge`]). An earlier revision rejected overlap because
        // the warp silently truncated the second window; with the
        // boundary-sweep composition there is nothing ambiguous left to
        // reject — per-event sanity (finite, positive factor and
        // duration) above is the whole contract.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preempt(at: f64) -> DisruptionEvent {
        DisruptionEvent {
            at_secs: at,
            kind: Disruption::ServerPreempt {
                server: 0,
                grace_secs: 5.0,
            },
        }
    }

    #[test]
    fn default_is_empty_and_valid() {
        let s = DisruptionScript::default();
        assert!(s.is_empty());
        assert_eq!(s.name, "none");
        s.validate(0, 0).unwrap();
    }

    #[test]
    fn sorted_orders_by_time_then_index() {
        let s = DisruptionScript {
            name: "t".into(),
            events: vec![
                preempt(10.0),
                DisruptionEvent {
                    at_secs: 5.0,
                    kind: Disruption::GpuFail { gpu: 1 },
                },
                DisruptionEvent {
                    at_secs: 10.0,
                    kind: Disruption::GpuFail { gpu: 2 },
                },
            ],
        };
        let sorted = s.sorted();
        assert_eq!(sorted.events[0].at_secs, 5.0);
        // Equal timestamps keep original relative order.
        assert!(matches!(
            sorted.events[1].kind,
            Disruption::ServerPreempt { .. }
        ));
        assert!(matches!(sorted.events[2].kind, Disruption::GpuFail { .. }));
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let s = DisruptionScript {
            name: "bad".into(),
            events: vec![DisruptionEvent {
                at_secs: 1.0,
                kind: Disruption::GpuFail { gpu: 12 },
            }],
        };
        assert!(s.validate(12, 8).is_err());
        assert!(s.validate(13, 8).is_ok());
        let s = DisruptionScript {
            name: "bad".into(),
            events: vec![preempt(-1.0)],
        };
        assert!(s.validate(4, 2).is_err());
    }

    #[test]
    fn validate_accepts_overlapping_surges_and_rejects_degenerate_ones() {
        let surge = |at: f64, dur: f64, factor: f64| DisruptionEvent {
            at_secs: at,
            kind: Disruption::RateSurge {
                factor,
                duration_secs: dur,
            },
        };
        // Overlap is well-defined (multiplicative composition) and legal.
        let s = DisruptionScript {
            name: "s".into(),
            events: vec![surge(10.0, 10.0, 2.0), surge(15.0, 5.0, 3.0)],
        };
        assert!(s.validate(4, 2).is_ok());
        // Per-event sanity still holds the line.
        for bad in [
            surge(10.0, 5.0, 0.0),
            surge(10.0, 5.0, f64::INFINITY),
            surge(10.0, 0.0, 2.0),
            surge(10.0, f64::NAN, 2.0),
        ] {
            let s = DisruptionScript {
                name: "bad".into(),
                events: vec![bad],
            };
            assert!(s.validate(4, 2).is_err());
        }
    }

    #[test]
    fn json_round_trip() {
        let s = DisruptionScript {
            name: "mixed".into(),
            events: vec![
                DisruptionEvent {
                    at_secs: 3.0,
                    kind: Disruption::HotServerPreempt {
                        rank: 0,
                        grace_secs: 8.0,
                    },
                },
                DisruptionEvent {
                    at_secs: 6.0,
                    kind: Disruption::RateSurge {
                        factor: 3.0,
                        duration_secs: 4.0,
                    },
                },
                DisruptionEvent {
                    at_secs: 20.0,
                    kind: Disruption::CapacityReturn {
                        gpus: vec![1, 2],
                        servers: vec![0],
                    },
                },
            ],
        };
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: DisruptionScript = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
