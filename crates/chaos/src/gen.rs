//! MTBF-style stochastic disruption generators.
//!
//! Public spot markets behave like renewal processes: preemptions arrive
//! roughly exponentially with a platform-dependent mean time between
//! failures, capacity returns after a market-dependent delay, and demand
//! surges ride on top. [`RandomDisruptions`] captures those knobs and
//! [`RandomDisruptions::realize`] turns them into a concrete
//! [`DisruptionScript`] from a caller-supplied RNG — in the fleet that RNG
//! derives from the *cell* seed (which excludes the policy axis), so every
//! policy sharing a workload coordinate faces the byte-identical
//! disruption trace.

use serde::{Deserialize, Serialize};

use flexpipe_sim::SimRng;

use crate::script::{Disruption, DisruptionEvent, DisruptionScript};

/// Parameters of a stochastic disruption process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDisruptions {
    /// Label used in fleet cell ids (keep it short and filesystem-safe).
    pub label: String,
    /// Mean time between single-GPU hardware failures, seconds (0 = off).
    pub gpu_fail_mtbf_secs: f64,
    /// Mean time between server spot preemptions, seconds (0 = off).
    pub server_preempt_mtbf_secs: f64,
    /// Grace window between a preemption notice and the revocation.
    pub grace_secs: f64,
    /// Delay until revoked capacity returns to the pool (0 = never).
    pub restore_delay_secs: f64,
    /// No disruptions before this time (lets deployments warm up).
    pub start_secs: f64,
    /// Per-process hard cap on generated revocation events (watchdog for
    /// tiny MTBFs; each process gets its own budget so a runaway one
    /// cannot starve the other).
    pub max_events: u32,
}

impl Default for RandomDisruptions {
    fn default() -> Self {
        RandomDisruptions {
            label: "default".into(),
            gpu_fail_mtbf_secs: 0.0,
            server_preempt_mtbf_secs: 600.0,
            grace_secs: 10.0,
            restore_delay_secs: 120.0,
            start_secs: 30.0,
            max_events: 64,
        }
    }
}

/// Samples an exponential inter-arrival with the given mean.
fn exp_sample(rng: &mut SimRng, mean: f64) -> f64 {
    // Inverse CDF; (1 - u) keeps ln's argument in (0, 1].
    -(1.0 - rng.f64()).ln() * mean
}

impl RandomDisruptions {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("gpu_fail_mtbf_secs", self.gpu_fail_mtbf_secs),
            ("server_preempt_mtbf_secs", self.server_preempt_mtbf_secs),
            ("grace_secs", self.grace_secs),
            ("restore_delay_secs", self.restore_delay_secs),
            ("start_secs", self.start_secs),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0"));
            }
        }
        if self.max_events == 0 {
            return Err("max_events must be positive".into());
        }
        Ok(())
    }

    /// Realizes the process into a concrete script over `[start_secs,
    /// horizon_secs)` for a cluster of `gpus` GPUs and `servers` servers.
    ///
    /// Deterministic given the RNG state: the same seed always yields the
    /// same trace, and the GPU-failure and preemption processes draw from
    /// independent derived streams so enabling one never perturbs the
    /// other.
    pub fn realize(
        &self,
        rng: &SimRng,
        horizon_secs: f64,
        gpus: u32,
        servers: u32,
    ) -> DisruptionScript {
        let mut events: Vec<DisruptionEvent> = Vec::new();

        if self.gpu_fail_mtbf_secs > 0.0 && gpus > 0 {
            let mut budget = self.max_events;
            let mut r = rng.stream_named("gpu-fail");
            let mut t = self.start_secs + exp_sample(&mut r, self.gpu_fail_mtbf_secs);
            while t < horizon_secs && budget > 0 {
                let gpu = r.below(u64::from(gpus)) as u32;
                events.push(DisruptionEvent {
                    at_secs: t,
                    kind: Disruption::GpuFail { gpu },
                });
                if self.restore_delay_secs > 0.0 {
                    events.push(DisruptionEvent {
                        at_secs: t + self.restore_delay_secs,
                        kind: Disruption::CapacityReturn {
                            gpus: vec![gpu],
                            servers: Vec::new(),
                        },
                    });
                }
                budget -= 1;
                t += exp_sample(&mut r, self.gpu_fail_mtbf_secs);
            }
        }

        if self.server_preempt_mtbf_secs > 0.0 && servers > 0 {
            let mut budget = self.max_events;
            let mut r = rng.stream_named("server-preempt");
            let mut t = self.start_secs + exp_sample(&mut r, self.server_preempt_mtbf_secs);
            while t < horizon_secs && budget > 0 {
                let server = r.below(u64::from(servers)) as u32;
                events.push(DisruptionEvent {
                    at_secs: t,
                    kind: Disruption::ServerPreempt {
                        server,
                        grace_secs: self.grace_secs,
                    },
                });
                if self.restore_delay_secs > 0.0 {
                    events.push(DisruptionEvent {
                        at_secs: t + self.grace_secs + self.restore_delay_secs,
                        kind: Disruption::CapacityReturn {
                            gpus: Vec::new(),
                            servers: vec![server],
                        },
                    });
                }
                budget -= 1;
                t += exp_sample(&mut r, self.server_preempt_mtbf_secs);
            }
        }

        DisruptionScript {
            name: self.label.clone(),
            events,
        }
        .sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> RandomDisruptions {
        RandomDisruptions {
            label: "t".into(),
            gpu_fail_mtbf_secs: 50.0,
            server_preempt_mtbf_secs: 80.0,
            grace_secs: 5.0,
            restore_delay_secs: 30.0,
            start_secs: 10.0,
            max_events: 64,
        }
    }

    #[test]
    fn realization_is_deterministic() {
        let g = gen();
        let a = g.realize(&SimRng::seed(7), 400.0, 12, 8);
        let b = g.realize(&SimRng::seed(7), 400.0, 12, 8);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = g.realize(&SimRng::seed(8), 400.0, 12, 8);
        assert_ne!(a, c, "different seeds must yield different traces");
    }

    #[test]
    fn events_respect_start_and_horizon() {
        let g = gen();
        let s = g.realize(&SimRng::seed(3), 300.0, 12, 8);
        s.validate(12, 8).unwrap();
        for e in &s.events {
            match e.kind {
                // Restores may land past the horizon (the engine simply
                // never fires them); revocations must not.
                Disruption::CapacityReturn { .. } => assert!(e.at_secs >= g.start_secs),
                _ => assert!(e.at_secs >= g.start_secs && e.at_secs < 300.0),
            }
        }
        // Sorted by time.
        assert!(s.events.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
    }

    #[test]
    fn disabled_processes_generate_nothing() {
        let g = RandomDisruptions {
            gpu_fail_mtbf_secs: 0.0,
            server_preempt_mtbf_secs: 0.0,
            ..gen()
        };
        assert!(g.realize(&SimRng::seed(1), 1000.0, 12, 8).is_empty());
    }

    #[test]
    fn max_events_caps_tiny_mtbf() {
        let g = RandomDisruptions {
            gpu_fail_mtbf_secs: 0.001,
            server_preempt_mtbf_secs: 0.0,
            restore_delay_secs: 0.0,
            max_events: 5,
            ..gen()
        };
        let s = g.realize(&SimRng::seed(1), 1000.0, 12, 8);
        assert_eq!(s.events.len(), 5);
    }

    #[test]
    fn budgets_are_per_process() {
        // A runaway GPU-failure process must not starve the preemption
        // process of its event budget.
        let g = RandomDisruptions {
            gpu_fail_mtbf_secs: 0.001,
            server_preempt_mtbf_secs: 100.0,
            restore_delay_secs: 0.0,
            max_events: 5,
            ..gen()
        };
        let s = g.realize(&SimRng::seed(1), 1000.0, 12, 8);
        let preempts = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, Disruption::ServerPreempt { .. }))
            .count();
        assert!(preempts > 0, "preemption process was starved");
        assert!(preempts <= 5);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut g = gen();
        g.grace_secs = f64::NAN;
        assert!(g.validate().is_err());
        let mut g = gen();
        g.max_events = 0;
        assert!(g.validate().is_err());
        assert!(gen().validate().is_ok());
    }
}
