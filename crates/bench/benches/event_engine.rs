//! Substrate performance: event-queue throughput and a short end-to-end
//! serving simulation (the cost of one experiment second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flexpipe_bench::setup::{paper_scenario, E2eParams};
use flexpipe_bench::systems::static_pipeline;
use flexpipe_model::{zoo, CostModel};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};
use flexpipe_serving::Engine;
use flexpipe_sim::{EventQueue, SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(i * 37 % 100_000), i)
                    .unwrap();
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let graph = Arc::new(zoo::llama2_7b());
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice =
        Arc::new(GranularityLattice::build(&partitioner, &graph, 8, &[1, 2, 4, 8], &cost).unwrap());
    let mut group = c.benchmark_group("end_to_end_sim");
    group.sample_size(10);
    group.bench_function("llama_30s_at_8qps", |b| {
        b.iter(|| {
            let mut p = E2eParams::paper(1.0);
            p.horizon_secs = 30.0;
            p.warmup_secs = 0.0;
            let workload = WorkloadSpec {
                arrivals: ArrivalSpec::GammaRenewal { rate: 8.0, cv: 1.0 },
                lengths: LengthProfile::fixed(256, 16),
                slo: SimDuration::from_secs(5),
                slo_per_output_token: SimDuration::ZERO,
                horizon_secs: 30.0,
            }
            .generate(&mut SimRng::seed(1));
            let scenario = paper_scenario(&p, workload);
            let report = Engine::new(
                scenario,
                graph.clone(),
                lattice.clone(),
                static_pipeline(2, 1),
            )
            .run();
            black_box(report.completed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_end_to_end);
criterion_main!(benches);
