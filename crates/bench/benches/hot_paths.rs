//! PR 5's incremental hot paths in isolation: the per-instance
//! decode-slot tracker vs the micro-batch recount, and the cluster's
//! server-load ranking vs the rebuild-and-sort reference, across fleet
//! sizes (the admission twin lives in `admission.rs`).
//!
//! Each measurement drives the deterministic churn harnesses from
//! `flexpipe_serving::engine::indexes`, so the numbers isolate the
//! query cost from the event loop. Expected shape: both naive paths grow
//! linearly (the server one with servers × GPUs), both indexed paths
//! stay flat / logarithmic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flexpipe_serving::{decode_slot_churn, server_load_churn, EngineMode};

fn bench_decode_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode-slot");
    const OPS: usize = 10_000;
    for n in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| black_box(decode_slot_churn(n, OPS, EngineMode::Indexed)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| black_box(decode_slot_churn(n, OPS, EngineMode::NaiveScan)))
        });
    }
    group.finish();
}

fn bench_server_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("hottest-server");
    const OPS: usize = 1_000;
    for servers in [16usize, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::new("indexed", servers),
            &servers,
            |b, &servers| {
                b.iter(|| black_box(server_load_churn(servers, OPS, EngineMode::Indexed)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", servers),
            &servers,
            |b, &servers| {
                b.iter(|| black_box(server_load_churn(servers, OPS, EngineMode::NaiveScan)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decode_slots, bench_server_load);
criterion_main!(benches);
