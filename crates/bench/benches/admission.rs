//! The gateway admission path in isolation: the indexed fast path vs the
//! retained naive reference scan, across fleet sizes.
//!
//! Each measurement drives `flexpipe_serving::churn` — 10k admission
//! decisions with deterministic completion/hold churn — so the numbers
//! isolate selection cost from the event loop. Expected shape: naive
//! grows linearly with the instance count, indexed logarithmically;
//! they cross within noise at tiny fleets and separate by an order of
//! magnitude from a few hundred instances up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flexpipe_serving::{churn, AdmissionMode};

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission");
    const OPS: usize = 10_000;
    for n in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| black_box(churn(n, OPS, AdmissionMode::Indexed)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| black_box(churn(n, OPS, AdmissionMode::NaiveScan)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
