//! §5 partitioner performance: the constrained DP and lattice construction
//! across stage counts and models (offline-phase costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flexpipe_model::{zoo, CostModel, ModelId};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};

fn bench_partition(c: &mut Criterion) {
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let graph = zoo::opt_66b();
    let mut group = c.benchmark_group("partition_opt66b");
    for k in [4u32, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| partitioner.partition(black_box(&graph), k).unwrap())
        });
    }
    group.finish();
}

fn bench_lattice(c: &mut Criterion) {
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let mut group = c.benchmark_group("lattice_build");
    for model in ModelId::all() {
        let graph = model.graph();
        let finest = if model == ModelId::Opt66B { 32 } else { 16 };
        let levels: Vec<u32> = [1u32, 2, 4, 8, 16, 32]
            .into_iter()
            .filter(|&l| l <= finest)
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &graph,
            |b, graph| {
                b.iter(|| {
                    GranularityLattice::build(
                        &partitioner,
                        black_box(graph),
                        finest,
                        &levels,
                        &cost,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition, bench_lattice);
criterion_main!(benches);
