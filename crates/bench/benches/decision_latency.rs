//! §6.3 claim: refactoring decisions stay under 5 ms across 2-32 stage
//! configurations. Benchmarks the Eq. (4) scoring pass and the full
//! granularity-selection + instance-planning decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flexpipe_cluster::LinkSpec;
use flexpipe_core::{build_profiles, instances_needed, select, GranularityParams};
use flexpipe_model::{zoo, CostModel};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};

fn bench_decision(c: &mut Criterion) {
    let graph = zoo::opt_66b();
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let params = GranularityParams::default();

    let mut group = c.benchmark_group("decision_latency");
    for levels in [vec![2u32, 4], vec![2, 4, 8, 16], vec![2, 4, 8, 16, 32]] {
        let lattice = GranularityLattice::build(&partitioner, &graph, 32, &levels, &cost).unwrap();
        let profiles = build_profiles(&graph, &cost, &lattice, &LinkSpec::default(), &params);
        group.bench_with_input(
            BenchmarkId::new("select_and_plan", levels.len()),
            &profiles,
            |b, profiles| {
                b.iter(|| {
                    // One full Algorithm-1 decision: score every level at the
                    // current CV, pick g*, size the replica set.
                    let target = select(black_box(profiles), &params, black_box(3.7)).unwrap();
                    instances_needed(&target, black_box(22.0), 2.0)
                })
            },
        );
    }
    group.finish();
}

fn bench_transition_planning(c: &mut Criterion) {
    let graph = zoo::opt_66b();
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice =
        GranularityLattice::build(&partitioner, &graph, 32, &[2, 4, 8, 16, 32], &cost).unwrap();
    c.bench_function("transition_plan_4_to_16", |b| {
        b.iter(|| lattice.plan_transition(black_box(&graph), 4, 16))
    });
    c.bench_function("transition_plan_32_to_4", |b| {
        b.iter(|| lattice.plan_transition(black_box(&graph), 32, 4))
    });
}

criterion_group!(benches, bench_decision, bench_transition_planning);
criterion_main!(benches);
