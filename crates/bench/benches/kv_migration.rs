//! §6.3 / §8 KV-consistency costs: validity-mask algebra and migration
//! planning (the in-decision-path pieces that must stay cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flexpipe_core::{MigrationModel, ValidityMask};
use flexpipe_sim::SimDuration;

fn bench_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("validity_mask");
    for tokens in [1024u32, 8192, 65536] {
        let a = ValidityMask::valid_prefix(tokens, tokens * 3 / 4);
        let b = ValidityMask::valid_prefix(tokens, tokens / 2);
        group.bench_with_input(
            BenchmarkId::new("union_mask_delta", tokens),
            &tokens,
            |bch, _| {
                bch.iter(|| {
                    // The Eq. (10) consistency step: union, mask, delta, count.
                    let merged = black_box(&a).or(black_box(&b));
                    let masked = merged.and(&a);
                    let delta = a.minus(&b);
                    masked.count_valid() + delta.count_valid()
                })
            },
        );
    }
    group.finish();
}

fn bench_migration_planning(c: &mut Criterion) {
    let model = MigrationModel::default();
    c.bench_function("migration_plan", |b| {
        b.iter(|| {
            model.plan(
                black_box(36_864),
                black_box(160_000),
                black_box(2_000.0),
                SimDuration::from_secs(2),
                8,
            )
        })
    });
}

criterion_group!(benches, bench_masks, bench_migration_planning);
criterion_main!(benches);
