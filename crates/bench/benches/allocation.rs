//! §6.2 / §7 placement performance: the Eq. (6)-(9) optimizer and the HRG
//! topology-aware path on a fragmented 82-GPU cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use flexpipe_cluster::{BackgroundProfile, BackgroundTenants, Cluster, ClusterSpec};
use flexpipe_core::{AllocationOptimizer, AllocationParams, Hrg, HrgParams, StageNeed};
use flexpipe_model::{even_layer_ranges, zoo, CostModel};
use flexpipe_sim::{SimRng, SimTime};

fn fragmented_cluster() -> Cluster {
    let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
    let mut bg = BackgroundTenants::new(BackgroundProfile::testbed_like(), SimRng::seed(7));
    bg.populate(&mut cluster);
    cluster
}

fn needs(stages: u32) -> (flexpipe_model::ModelGraph, CostModel, Vec<StageNeed>) {
    let graph = zoo::opt_66b();
    let cost = CostModel::default();
    let needs = even_layer_ranges(&graph, stages)
        .into_iter()
        .map(|r| StageNeed {
            range: r,
            mem_bytes: cost.stage_mem_bytes(&graph, r, 8),
        })
        .collect();
    (graph, cost, needs)
}

fn bench_optimizer(c: &mut Criterion) {
    let cluster = fragmented_cluster();
    let opt = AllocationOptimizer::new(AllocationParams::default());
    let candidates: Vec<_> = cluster.topology().gpus().iter().map(|g| g.id).collect();
    let mut group = c.benchmark_group("allocation_assign");
    for stages in [4u32, 8, 16] {
        let (graph, cost, stage_needs) = needs(stages);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                opt.assign(
                    black_box(&cluster),
                    &graph,
                    &cost,
                    0.6,
                    &stage_needs,
                    &candidates,
                    &[],
                    black_box(2.0),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_hrg(c: &mut Criterion) {
    let cluster = fragmented_cluster();
    let opt = AllocationOptimizer::new(AllocationParams::default());
    let (graph, cost, stage_needs) = needs(8);
    c.bench_function("hrg_place_8_stages", |b| {
        let mut hrg = Hrg::new(HrgParams::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            hrg.place(
                black_box(&cluster),
                &graph,
                &cost,
                &opt,
                0.6,
                &stage_needs,
                &[],
                2.0,
                SimTime::from_secs(t),
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_optimizer, bench_hrg);
criterion_main!(benches);
