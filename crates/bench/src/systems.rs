//! Constructors for the compared systems with paper-faithful sizing.

use flexpipe_baselines::{
    AlpaServeConfig, AlpaServeLike, MuxServeConfig, MuxServeLike, ServerlessLlmConfig,
    ServerlessLlmLike, StaticPipeline, TetrisConfig, TetrisLike,
};
use flexpipe_core::{FlexPipeConfig, FlexPipePolicy, GranularityParams};
use flexpipe_serving::ControlPolicy;
use serde::{Deserialize, Serialize};

/// The five compared systems.
///
/// Serializable so sweep specifications (`flexpipe-fleet`) can name
/// systems declaratively and reuse this registry instead of duplicating
/// the constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemId {
    /// FlexPipe (this paper).
    FlexPipe,
    /// AlpaServe-like offline-optimised baseline.
    AlpaServe,
    /// MuxServe-like multiplexing baseline.
    MuxServe,
    /// ServerlessLLM-like fast-loading baseline.
    ServerlessLlm,
    /// Tetris-like memory-packing baseline.
    Tetris,
}

impl SystemId {
    /// All systems in the paper's legend order.
    pub fn all() -> [SystemId; 5] {
        [
            SystemId::FlexPipe,
            SystemId::AlpaServe,
            SystemId::MuxServe,
            SystemId::ServerlessLlm,
            SystemId::Tetris,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemId::FlexPipe => "FlexPipe",
            SystemId::AlpaServe => "AlpaServe",
            SystemId::MuxServe => "MuxServe",
            SystemId::ServerlessLlm => "ServerlessLLM",
            SystemId::Tetris => "Tetris",
        }
    }

    /// Builds the policy, sized for `rate` requests/second mean demand with
    /// Splitwise-like lengths (prompt ≈ 1024, output ≈ 64).
    pub fn policy(self, rate: f64) -> Box<dyn ControlPolicy> {
        match self {
            SystemId::FlexPipe => Box::new(FlexPipePolicy::new(flexpipe_config(rate))),
            SystemId::AlpaServe => Box::new(AlpaServeLike::new(AlpaServeConfig {
                expected_rate: rate,
                ..AlpaServeConfig::default()
            })),
            SystemId::MuxServe => Box::new(MuxServeLike::new(MuxServeConfig {
                expected_rate: rate,
                ..MuxServeConfig::default()
            })),
            SystemId::ServerlessLlm => {
                Box::new(ServerlessLlmLike::new(ServerlessLlmConfig::default()))
            }
            SystemId::Tetris => Box::new(TetrisLike::new(TetrisConfig::default())),
        }
    }
}

impl std::fmt::Display for SystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The FlexPipe configuration used across the evaluation: 30% of peak
/// pinned always-on, 4-stage sweet spot at CV=1, Splitwise-like length
/// assumptions.
pub fn flexpipe_config(rate: f64) -> FlexPipeConfig {
    // Peak GPU estimate mirrors what the static baselines provision for:
    // peak ≈ 2.5x mean demand at ~4 GPUs per 4-stage replica. The old
    // clamp at 24 GPUs / 12 replicas saturated the fleet around 120 QPS
    // (≈10 req/s per 4-stage replica on this length mix), collapsing SLO
    // attainment to ~5% at 200 QPS; both ceilings now scale with the
    // sizing rate.
    let peak_gpus = (((rate * 2.5) / 40.0).ceil() as u32 * 4).clamp(4, 96);
    let max_replicas = (((rate * 1.5) / 10.0).ceil() as u32).clamp(12, 32);
    FlexPipeConfig {
        granularity: GranularityParams {
            base_stages: 4,
            mean_prompt_tokens: 1540.0, // splitwise mean (median 1024, σ=0.9)
            mean_output_tokens: 64.0,
            ..GranularityParams::default()
        },
        peak_gpus,
        expected_rate: rate,
        max_replicas,
        gradient_boost: 1.0,
        headroom: 2.0,
        ..FlexPipeConfig::default()
    }
}

/// A static pipeline sized like the paper's motivation experiments
/// (one replica at the given depth).
pub fn static_pipeline(stages: u32, replicas: u32) -> Box<dyn ControlPolicy> {
    Box::new(StaticPipeline::new(stages, replicas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_construct() {
        for s in SystemId::all() {
            let p = s.policy(20.0);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn peak_gpus_scales_with_rate() {
        assert!(flexpipe_config(40.0).peak_gpus >= flexpipe_config(10.0).peak_gpus);
        assert!(flexpipe_config(20.0).peak_gpus >= 4);
    }

    #[test]
    fn high_rate_sizing_is_not_clamped_to_the_low_rate_fleet() {
        // The 200 QPS saturation bug: sizing used to clamp at 24 GPUs and
        // 12 replicas regardless of rate, so the policy could never build
        // the fleet the arrival rate requires.
        let low = flexpipe_config(20.0);
        let high = flexpipe_config(200.0);
        assert!(high.max_replicas > low.max_replicas);
        assert!(high.peak_gpus > low.peak_gpus);
        assert!(high.max_replicas >= 30, "200 QPS needs ~20+ replicas");
        assert!(high.peak_gpus >= 48, "200 QPS needs a real GPU budget");
        // Low-rate sizing is unchanged by the fix.
        assert_eq!(low.max_replicas, 12);
        assert!(low.peak_gpus <= 24);
    }
}
