//! Result output: every experiment prints its table(s) to stdout and
//! writes text + CSV copies under `results/`.

use std::fs;
use std::path::PathBuf;

use flexpipe_metrics::Table;

/// The results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FP_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = fs::create_dir_all(&path);
    path
}

/// Prints `table` and persists it as `results/<name>.txt` and `.csv`.
pub fn write_result(name: &str, table: &Table) {
    let rendered = table.render();
    println!("{rendered}");
    let dir = results_dir();
    let _ = fs::write(dir.join(format!("{name}.txt")), &rendered);
    let _ = fs::write(dir.join(format!("{name}.csv")), table.to_csv());
}

/// Appends free-form notes next to a result.
pub fn write_notes(name: &str, notes: &str) {
    println!("{notes}");
    let dir = results_dir();
    let _ = fs::write(dir.join(format!("{name}.notes.txt")), notes);
}

/// A measurement window helper shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct SteadyWindow {
    /// Warmup seconds excluded from measurement.
    pub warmup_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
