//! Shared experiment setup: model artefacts, scenarios and run drivers.

use std::sync::Arc;

use flexpipe_cluster::{BackgroundProfile, ClusterSpec, TierConfig};
use flexpipe_metrics::{OutcomeLog, OutcomeSummary};
use flexpipe_model::{CostModel, ModelGraph, ModelId};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};
use flexpipe_serving::{ControlPolicy, Engine, EngineConfig, RunReport, Scenario};
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{LengthProfile, Workload, WorkloadSpec};

/// Reads an `f64` experiment knob from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` experiment knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Model artefacts + lattice for one evaluation model.
#[derive(Clone)]
pub struct PaperSetup {
    /// The model graph.
    pub graph: Arc<ModelGraph>,
    /// The granularity lattice.
    pub lattice: Arc<GranularityLattice>,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// Lattice stage counts.
    pub levels: Vec<u32>,
}

impl PaperSetup {
    /// Builds the setup for `model` with model-appropriate lattice levels.
    pub fn for_model(model: ModelId) -> PaperSetup {
        let graph = model.graph();
        let cost = CostModel::default();
        let partitioner = Partitioner::new(PartitionParams::default(), cost);
        // Finest unit count and levels scale with layer count; small models
        // can run single-stage, OPT-66B cannot (123 GiB > 80 GiB).
        let (finest, levels): (u32, Vec<u32>) = match model {
            ModelId::Opt66B => (32, vec![2, 4, 8, 16, 32]),
            ModelId::Bert21B => (16, vec![1, 2, 4, 8, 16]),
            ModelId::Whisper9B => (16, vec![1, 2, 4, 8, 16]),
            ModelId::Llama2_7B => (16, vec![1, 2, 4, 8, 16]),
        };
        let lattice = GranularityLattice::build(&partitioner, &graph, finest, &levels, &cost)
            .expect("lattice construction");
        let levels = lattice.stage_counts();
        PaperSetup {
            graph: Arc::new(graph),
            lattice: Arc::new(lattice),
            cost,
            levels,
        }
    }

    /// The paper's workhorse setup (OPT-66B).
    pub fn opt66b() -> PaperSetup {
        Self::for_model(ModelId::Opt66B)
    }
}

/// Parameters of one end-to-end serving run.
#[derive(Debug, Clone, Copy)]
pub struct E2eParams {
    /// Arrival CV.
    pub cv: f64,
    /// Mean arrival rate, requests/second (paper baseline: 20 QPS).
    pub rate: f64,
    /// Measured horizon, seconds.
    pub horizon_secs: f64,
    /// Extra warmup before the measured window (deployment + monitor).
    pub warmup_secs: f64,
    /// Root seed.
    pub seed: u64,
}

impl E2eParams {
    /// The paper's §9.1 setup at a given CV. Horizon defaults to 300
    /// simulated seconds (the paper ran 2 h; the shape stabilises within
    /// minutes — override with `FP_HORIZON`).
    pub fn paper(cv: f64) -> E2eParams {
        E2eParams {
            cv,
            rate: env_f64("FP_RATE", 20.0),
            horizon_secs: env_f64("FP_HORIZON", 300.0),
            warmup_secs: env_f64("FP_WARMUP", 60.0),
            seed: env_u64("FP_SEED", 42),
        }
    }

    /// Total simulated span (warmup + horizon + drain).
    pub fn total_secs(&self) -> f64 {
        self.warmup_secs + self.horizon_secs + 30.0
    }
}

/// Builds the paper's workload: Gamma-renewal arrivals at the target CV
/// with Splitwise-like lengths and a 5 s SLO.
pub fn paper_workload(p: &E2eParams) -> Workload {
    WorkloadSpec {
        arrivals: flexpipe_workload::ArrivalSpec::GammaRenewal {
            rate: p.rate,
            cv: p.cv,
        },
        lengths: LengthProfile::splitwise_like(),
        slo: SimDuration::from_secs(2),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: p.warmup_secs + p.horizon_secs,
    }
    .generate(&mut SimRng::seed(p.seed))
}

/// Builds the testbed scenario around a workload.
pub fn paper_scenario(p: &E2eParams, workload: Workload) -> Scenario {
    Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost: CostModel::default(),
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs_f64(p.total_secs()),
        seed: p.seed,
    }
}

/// Runs one end-to-end experiment.
pub fn run_e2e(setup: &PaperSetup, p: &E2eParams, policy: Box<dyn ControlPolicy>) -> RunReport {
    let workload = paper_workload(p);
    let scenario = paper_scenario(p, workload);
    Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy).run()
}

/// Runs with an explicit workload (for time-series experiments).
pub fn run_with_workload(
    setup: &PaperSetup,
    p: &E2eParams,
    workload: Workload,
    policy: Box<dyn ControlPolicy>,
) -> RunReport {
    let scenario = paper_scenario(p, workload);
    Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy).run()
}

/// Outcome summary restricted to completions after `warmup_secs`
/// (steady-state measurement, excluding deployment cold start).
pub fn steady_summary(report: &RunReport, warmup_secs: f64) -> OutcomeSummary {
    let cut = SimTime::from_secs_f64(warmup_secs);
    let mut log = OutcomeLog::new();
    for o in report.outcomes.outcomes() {
        if o.completion >= cut {
            log.record(*o);
        }
    }
    log.summarize(report.horizon_secs - warmup_secs)
}

/// Offered load (arrivals) after warmup — the goodput denominator.
///
/// Regenerates the (deterministic) workload and counts arrivals inside the
/// measured window exactly.
pub fn steady_offered(p: &E2eParams) -> usize {
    let cut = SimTime::from_secs_f64(p.warmup_secs);
    paper_workload(p)
        .requests
        .iter()
        .filter(|r| r.arrival >= cut)
        .count()
}
