//! Experiment harness regenerating every table and figure of the FlexPipe
//! paper.
//!
//! One binary per artefact lives in `src/bin/` (`table1`, `table2`,
//! `fig1`–`fig13`, `eq1`, `case_study`, plus `run_all`); Criterion
//! microbenchmarks live in `benches/`. This library holds the shared
//! setup: the paper's evaluation scenario (42-server/82-GPU testbed,
//! OPT-66B, 20 QPS Splitwise-like workload), system constructors, and
//! result output helpers.

#![warn(missing_docs)]

pub mod output;
pub mod setup;
pub mod systems;

pub use output::{results_dir, write_result, SteadyWindow};
pub use setup::{env_f64, env_u64, E2eParams, PaperSetup};
pub use systems::SystemId;
