//! Table 1 — GPU cluster utilisation statistics for the two Alibaba-like
//! clusters (C1 inference-only, C2 hybrid).
//!
//! Regenerates the SM / memory utilisation distributions from the
//! calibrated background-tenant model and prints them in the paper's row
//! layout, averaged over several churn snapshots.

use flexpipe_bench::{env_u64, write_result};
use flexpipe_cluster::{
    BackgroundProfile, BackgroundTenants, Cluster, ClusterSpec, FragmentationStats,
};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_sim::{SimDuration, SimRng};

fn measure(
    spec: ClusterSpec,
    profile: BackgroundProfile,
    seed: u64,
    snapshots: u32,
) -> FragmentationStats {
    let mut cluster = Cluster::new(spec);
    let mut bg = BackgroundTenants::new(profile, SimRng::seed(seed));
    bg.populate(&mut cluster);
    let mut acc = FragmentationStats::default();
    let n = f64::from(snapshots);
    for _ in 0..snapshots {
        bg.step(&mut cluster, SimDuration::from_secs(600));
        let s = BackgroundTenants::stats(&cluster);
        acc.sm_mean += s.sm_mean / n;
        acc.sm_p50 += s.sm_p50 / n;
        acc.sm_p95 += s.sm_p95 / n;
        acc.sm_frac_10_30 += s.sm_frac_10_30 / n;
        acc.mem_mean += s.mem_mean / n;
        acc.mem_p50 += s.mem_p50 / n;
        acc.mem_p95 += s.mem_p95 / n;
        acc.mem_frac_10_30 += s.mem_frac_10_30 / n;
        acc.subscription_pct += s.subscription_pct / n;
        acc.p_single_free += s.p_single_free / n;
        acc.p_colocate4 += s.p_colocate4 / n;
    }
    acc
}

fn main() {
    let seed = env_u64("FP_SEED", 42);
    let c1 = measure(
        ClusterSpec::alibaba_c1(),
        BackgroundProfile::c1_like(),
        seed,
        16,
    );
    let c2 = measure(
        ClusterSpec::alibaba_c2(),
        BackgroundProfile::c2_like(),
        seed + 1,
        16,
    );

    let mut t = Table::new(
        "Table 1 — GPU cluster statistics (paper values in parentheses)",
        &["Metric", "Cluster C1", "(paper)", "Cluster C2", "(paper)"],
    );
    let row = |t: &mut Table, name: &str, a: f64, pa: &str, b: f64, pb: &str| {
        t.row(vec![
            name.into(),
            fmt_f(a, 2),
            pa.into(),
            fmt_f(b, 2),
            pb.into(),
        ]);
    };
    t.row(vec![
        "Nodes / GPUs".into(),
        "430 / 468".into(),
        "430 / 468".into(),
        "927 / 1175".into(),
        "927 / 1175".into(),
    ]);
    row(
        &mut t,
        "SM util mean (%)",
        c1.sm_mean,
        "16.91",
        c2.sm_mean,
        "23.74",
    );
    row(
        &mut t,
        "SM util P50 (%)",
        c1.sm_p50,
        "9.16",
        c2.sm_p50,
        "10.85",
    );
    row(
        &mut t,
        "SM util P95 (%)",
        c1.sm_p95,
        "80.53",
        c2.sm_p95,
        "85.37",
    );
    row(
        &mut t,
        "SM 10-30% bucket (%)",
        c1.sm_frac_10_30 * 100.0,
        "31.26",
        c2.sm_frac_10_30 * 100.0,
        "20.98",
    );
    row(
        &mut t,
        "Mem util mean (%)",
        c1.mem_mean,
        "43.48",
        c2.mem_mean,
        "50.92",
    );
    row(
        &mut t,
        "Mem util P50 (%)",
        c1.mem_p50,
        "28.78",
        c2.mem_p50,
        "53.69",
    );
    row(
        &mut t,
        "Mem util P95 (%)",
        c1.mem_p95,
        "99.09",
        c2.mem_p95,
        "99.34",
    );
    row(
        &mut t,
        "Mem 10-30% bucket (%)",
        c1.mem_frac_10_30 * 100.0,
        "38.44",
        c2.mem_frac_10_30 * 100.0,
        "17.78",
    );
    row(
        &mut t,
        "Subscription rate (%)",
        c1.subscription_pct,
        "~216",
        c2.subscription_pct,
        "~216",
    );
    row(
        &mut t,
        "P(GPU >85% free) (%)",
        c1.p_single_free * 100.0,
        "8.7",
        c2.p_single_free * 100.0,
        "8.7",
    );
    t.row(vec![
        "P(4-GPU colocation) (%)".into(),
        format!("{:.4}", c1.p_colocate4 * 100.0),
        "0.02".into(),
        format!("{:.4}", c2.p_colocate4 * 100.0),
        "0.02".into(),
    ]);
    write_result("table1", &t);
}
