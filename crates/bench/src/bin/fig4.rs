//! Fig. 4 — latency distributions of 4/8/16-stage static pipelines across
//! CV values.
//!
//! Paper shape: at low CV the 16-stage pipeline is ~2.7x slower than
//! 4-stage (hop + overhead accumulation); at CV = 4 the relationship
//! inverts and the deep pipeline's distributed buffering wins by ~3x.

use flexpipe_bench::setup::{paper_workload, run_with_workload};
use flexpipe_bench::systems::static_pipeline;
use flexpipe_bench::{write_result, E2eParams, PaperSetup};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_sim::SimTime;

fn main() {
    let setup = PaperSetup::opt66b();
    let mut t = Table::new(
        "Fig. 4a — latency percentiles by pipeline depth and CV (OPT-66B, 16 QPS)",
        &[
            "Stages", "CV", "P25(s)", "P50(s)", "P75(s)", "P95(s)", "Mean(s)",
        ],
    );
    let mut cv4_meds: Vec<(u32, f64)> = Vec::new();
    let mut cv4_digests = Vec::new();
    for stages in [4u32, 8, 16] {
        for cv in [0.1, 1.0, 2.0, 4.0] {
            let mut p = E2eParams::paper(cv);
            // Lighter rate than the e2e experiments so low-CV rows expose
            // pure service latency (one replica per depth, as in §3.3).
            p.rate = flexpipe_bench::env_f64("FP_FIG4_RATE", 16.0);
            let workload = paper_workload(&p);
            let report = run_with_workload(&setup, &p, workload, static_pipeline(stages, 1));
            let mut d = report.outcomes.latency_digest_in(
                SimTime::from_secs_f64(p.warmup_secs),
                SimTime::from_secs_f64(p.warmup_secs + p.horizon_secs),
            );
            t.row(vec![
                stages.to_string(),
                fmt_f(cv, 1),
                fmt_f(d.quantile(0.25), 2),
                fmt_f(d.quantile(0.50), 2),
                fmt_f(d.quantile(0.75), 2),
                fmt_f(d.quantile(0.95), 2),
                fmt_f(d.mean(), 2),
            ]);
            if (cv - 4.0).abs() < 1e-9 {
                cv4_meds.push((stages, d.quantile(0.5)));
                cv4_digests.push((stages, d));
            }
        }
    }
    write_result("fig4a", &t);

    // Fig. 4b: the CV=4 distribution, as a coarse text histogram.
    let mut hist = Table::new(
        "Fig. 4b — latency distribution at CV=4 (fraction of requests per bucket)",
        &["Bucket(s)", "4-stage", "8-stage", "16-stage"],
    );
    let edges = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, f64::INFINITY];
    let mut fractions: Vec<Vec<f64>> = Vec::new();
    for (_, d) in cv4_digests.iter_mut() {
        let total = d.count().max(1) as f64;
        // Reconstruct bucket counts from quantile sweeps.
        let mut fs = Vec::new();
        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let count = (0..=1000)
                .map(|i| d.quantile(i as f64 / 1000.0))
                .filter(|&x| x >= lo && x < hi)
                .count() as f64
                / 1001.0;
            let _ = total;
            fs.push(count);
        }
        fractions.push(fs);
    }
    for (b, w) in edges.windows(2).enumerate() {
        let label = if w[1].is_infinite() {
            format!(">{}", w[0])
        } else {
            format!("{}-{}", w[0], w[1])
        };
        hist.row(vec![
            label,
            fmt_f(fractions[0][b] * 100.0, 1),
            fmt_f(fractions[1][b] * 100.0, 1),
            fmt_f(fractions[2][b] * 100.0, 1),
        ]);
    }
    write_result("fig4b", &hist);

    let med = |s: u32| {
        cv4_meds
            .iter()
            .find(|(st, _)| *st == s)
            .map(|(_, m)| *m)
            .unwrap_or(0.0)
    };
    println!(
        "CV=4 median latency: 4-stage {:.2}s vs 16-stage {:.2}s -> deep-pipeline advantage {:.1}x (paper: ~3x)",
        med(4),
        med(16),
        med(4) / med(16).max(1e-9)
    );
}
