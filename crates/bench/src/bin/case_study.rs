//! §9.6 — production case study: phased rollout of FlexPipe against the
//! conservative static-elastic baseline.
//!
//! The baseline mirrors pre-FlexPipe production practice: 75% of peak
//! capacity pinned always-on, the rest provisioned reactively with cold
//! checkpoint loads. FlexPipe pins 30% of peak, scales at fine granularity
//! and turns cold starts warm via the host-memory cache + affinity
//! scheduler. Reported: always-on reservation, allocation wait, instance
//! initialisation latency, and goodput (service quality must not regress).

use flexpipe_baselines::{ServerlessLlmConfig, ServerlessLlmLike};
use flexpipe_bench::setup::{paper_scenario, steady_offered, steady_summary, E2eParams};
use flexpipe_bench::systems::flexpipe_config;
use flexpipe_bench::{write_result, PaperSetup};
use flexpipe_core::FlexPipePolicy;
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_serving::Engine;
use flexpipe_sim::{SimDuration, SimRng};
use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};

fn main() {
    let setup = PaperSetup::opt66b();
    let mut p = E2eParams::paper(3.0);
    p.horizon_secs = flexpipe_bench::env_f64("FP_HORIZON", 420.0);
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::Burst {
            calm_rate: 12.0,
            burst_rate: 60.0,
            calm_secs: 45.0,
            burst_secs: 10.0,
        },
        lengths: LengthProfile::splitwise_like(),
        slo: SimDuration::from_secs(3),
        slo_per_output_token: SimDuration::from_millis(200),
        horizon_secs: p.warmup_secs + p.horizon_secs,
    }
    .generate(&mut SimRng::seed(p.seed));

    // Phase A: static-elastic production baseline. 75% of peak pinned,
    // reactive whole-instance scaling, cold checkpoint loads (no host
    // staging).
    let baseline_cfg = ServerlessLlmConfig {
        min_replicas: 3,
        max_replicas: 6,
        prewarm_servers: 0, // no fast-load tier: production cold starts
        always_on_fraction: 0.75,
        ..ServerlessLlmConfig::default()
    };
    let scenario_a = paper_scenario(&p, workload.clone());
    let report_a = Engine::new(
        scenario_a,
        setup.graph.clone(),
        setup.lattice.clone(),
        Box::new(ServerlessLlmLike::new(baseline_cfg)),
    )
    .run();

    // Phase B: FlexPipe with 30% of peak pinned.
    let flex_cfg = flexpipe_config(20.0);
    let scenario_b = paper_scenario(&p, workload);
    let report_b = Engine::new(
        scenario_b,
        setup.graph.clone(),
        setup.lattice.clone(),
        Box::new(FlexPipePolicy::new(flex_cfg)),
    )
    .run();

    let offered = steady_offered(&p);
    let sa = steady_summary(&report_a, p.warmup_secs);
    let sb = steady_summary(&report_b, p.warmup_secs);
    let pinned_a =
        (baseline_cfg.min_replicas * baseline_cfg.stages) as f64 * baseline_cfg.always_on_fraction;
    let pinned_b = f64::from(flex_cfg.peak_gpus) * flex_cfg.always_on_fraction;

    let mut t = Table::new(
        "§9.6 case study — static-elastic baseline vs FlexPipe",
        &["Metric", "Baseline", "FlexPipe", "Change"],
    );
    let pct = |a: f64, b: f64| -> String {
        if a.abs() < 1e-12 {
            "n/a".into()
        } else {
            format!("{:+.0}%", (b - a) / a * 100.0)
        }
    };
    t.row(vec![
        "Always-on GPUs pinned".into(),
        fmt_f(pinned_a, 1),
        fmt_f(pinned_b, 1),
        pct(pinned_a, pinned_b),
    ]);
    t.row(vec![
        "Mean allocation wait (s)".into(),
        fmt_f(report_a.mean_alloc_wait_secs, 2),
        fmt_f(report_b.mean_alloc_wait_secs, 2),
        pct(report_a.mean_alloc_wait_secs, report_b.mean_alloc_wait_secs),
    ]);
    t.row(vec![
        "Mean elastic init latency (s)".into(),
        fmt_f(report_a.mean_init_secs, 2),
        fmt_f(report_b.mean_init_secs, 2),
        pct(report_a.mean_init_secs, report_b.mean_init_secs),
    ]);
    t.row(vec![
        "Warm-start load fraction".into(),
        fmt_f(report_a.warm_load_fraction(), 2),
        fmt_f(report_b.warm_load_fraction(), 2),
        "-".into(),
    ]);
    t.row(vec![
        "Goodput (% of offered)".into(),
        fmt_f(sa.within_slo as f64 / offered.max(1) as f64 * 100.0, 1),
        fmt_f(sb.within_slo as f64 / offered.max(1) as f64 * 100.0, 1),
        "-".into(),
    ]);
    t.row(vec![
        "Mean GPUs held".into(),
        fmt_f(report_a.mean_gpus_held(), 1),
        fmt_f(report_b.mean_gpus_held(), 1),
        pct(report_a.mean_gpus_held(), report_b.mean_gpus_held()),
    ]);
    write_result("case_study", &t);
    println!("paper reference: always-on 75% -> 30% of peak; allocation wait -85%; instance init -72%; service quality preserved");
}
