//! Fig. 3 — impact of request-distribution variability on a *static*
//! 4-stage OPT-66B pipeline at 20 QPS: goodput, queue length and stall
//! cycles as CV sweeps 0.1 → 8.
//!
//! Paper shape: goodput −37%, queue ~4x, stall cycle ~22x from CV 0.1 to 8.

use flexpipe_bench::setup::{paper_workload, run_with_workload, steady_offered, steady_summary};
use flexpipe_bench::systems::static_pipeline;
use flexpipe_bench::{write_result, E2eParams, PaperSetup};
use flexpipe_metrics::{analyze_stalls, fmt_f, StallConfig, Table};
use flexpipe_sim::SimTime;

fn main() {
    let setup = PaperSetup::opt66b();
    let mut t = Table::new(
        "Fig. 3 — static 4-stage pipeline (2 replicas) vs CV (OPT-66B, 20 QPS)",
        &[
            "CV",
            "Goodput(req/s)",
            "Goodput(%)",
            "MeanQueue",
            "MaxQueue",
            "StallCycle(s)",
            "StallFrac(%)",
        ],
    );
    for cv in [0.1, 1.0, 2.0, 4.0, 8.0] {
        let p = E2eParams::paper(cv);
        let workload = paper_workload(&p);
        let report = run_with_workload(&setup, &p, workload, static_pipeline(4, 2));
        let steady = steady_summary(&report, p.warmup_secs);
        let offered = steady_offered(&p);
        let warm = SimTime::from_secs_f64(p.warmup_secs);
        let end = SimTime::from_secs_f64(p.warmup_secs + p.horizon_secs);
        let mean_q = report.inflight_timeline.mean_in(warm, end);
        let max_q = report.inflight_timeline.max_in(warm, end);
        let stalls = analyze_stalls(&report.outcomes, StallConfig::default(), 0.15);
        t.row(vec![
            fmt_f(cv, 1),
            fmt_f(steady.goodput_per_sec, 1),
            fmt_f(steady.within_slo as f64 / offered.max(1) as f64 * 100.0, 1),
            fmt_f(mean_q, 1),
            fmt_f(max_q, 0),
            fmt_f(stalls.mean_recovery_secs(), 2),
            fmt_f(
                stalls.stall_fraction(flexpipe_sim::SimDuration::from_secs_f64(
                    report.horizon_secs,
                )) * 100.0,
                1,
            ),
        ]);
    }
    write_result("fig3", &t);
    println!("paper reference: goodput 20.0/20.0/20.4/15.4/12.7 req/s; queue 12.5/16.0/25.8/51.2/48.8; stall 0.15/0.24/0.49/2.28/3.36 s");
}
