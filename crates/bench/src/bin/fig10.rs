//! Fig. 10 — performance-stability percentiles (P50/P75/P90/P95/P99) for
//! the serverless-oriented systems (FlexPipe, ServerlessLLM, Tetris)
//! across CV = 1, 2, 4.

use flexpipe_bench::setup::{run_e2e, steady_summary};
use flexpipe_bench::{write_result, E2eParams, PaperSetup, SystemId};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_sim::SimTime;

fn main() {
    let setup = PaperSetup::opt66b();
    let systems = [
        SystemId::FlexPipe,
        SystemId::ServerlessLlm,
        SystemId::Tetris,
    ];
    let mut t = Table::new(
        "Fig. 10 — latency percentiles in serverless deployments (OPT-66B, 20 QPS)",
        &["CV", "System", "P50(s/tok)", "P75", "P90", "P95", "P99"],
    );
    for cv in [1.0, 2.0, 4.0] {
        let p = E2eParams::paper(cv);
        for system in systems {
            let report = run_e2e(&setup, &p, system.policy(p.rate));
            // Normalise per output token: the raw distribution is dominated
            // by the (lognormal) output-length tail, which would mask the
            // system differences the figure is about.
            let cut_lo = SimTime::from_secs_f64(p.warmup_secs);
            let cut_hi = SimTime::from_secs_f64(p.warmup_secs + p.horizon_secs);
            let mut d = flexpipe_metrics::Digest::new();
            for o in report.outcomes.outcomes() {
                if o.completion >= cut_lo && o.completion < cut_hi {
                    d.record(o.latency().as_secs_f64() / f64::from(o.output_tokens.max(1)));
                }
            }
            let row = d.percentile_row();
            let _ = steady_summary(&report, p.warmup_secs);
            t.row(vec![
                fmt_f(cv, 0),
                system.name().into(),
                fmt_f(row[0], 3),
                fmt_f(row[1], 3),
                fmt_f(row[2], 3),
                fmt_f(row[3], 3),
                fmt_f(row[4], 3),
            ]);
        }
    }
    write_result("fig10", &t);
    println!("paper reference (P50/P95/P99, s): CV=1 FlexPipe 0.8/1.1/1.3, ServerlessLLM 1.2/2.1/4.1, Tetris 2.0/4.4/6.1");
    println!("                                  CV=4 FlexPipe 1.3/2.3/3.3, ServerlessLLM 3.2/7.0/8.8, Tetris 3.5/6.0/6.6");
}
