//! Table 2 — performance metrics for different pipeline granularities:
//! OPT-66B at sequence length 4096 sliced into 4/8/16/32 stages.
//!
//! Columns: parameter load time from cold storage, per-stage compute time
//! of one 4096-token pass, total inter-stage communication per iteration,
//! and the memory-bound max batch on 80 GiB devices.

use flexpipe_bench::{write_result, PaperSetup};
use flexpipe_cluster::{Route, TransferEngine};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_model::OpId;

fn main() {
    let setup = PaperSetup::opt66b();
    let graph = &setup.graph;
    let cost = &setup.cost;
    let transfer = TransferEngine::new(flexpipe_cluster::LinkSpec::default());
    const GIB: u64 = 1 << 30;
    // Paper reference rows: (stages, load s, compute ms, comm ms, batch).
    let paper = [
        (4u32, 47.14, 69.94, 6.3, 128u32),
        (8, 13.05, 36.63, 14.7, 256),
        (16, 9.19, 18.67, 31.5, 512),
        (32, 5.43, 9.67, 65.1, 1024),
    ];

    let mut t = Table::new(
        "Table 2 — pipeline granularity metrics, OPT-66B @ seq 4096 (paper values in parentheses)",
        &[
            "Stages",
            "Load(s)",
            "(paper)",
            "Compute(ms)",
            "(paper)",
            "Comm(ms)",
            "(paper)",
            "Max Batch",
            "(paper)",
        ],
    );
    for (stages, p_load, p_compute, p_comm, p_batch) in paper {
        let level = setup.lattice.level(stages).expect("lattice level present");
        // Interior stage (pure transformer layers).
        let mid = level.ranges[level.ranges.len() / 2];
        let load = cost.stage_load(graph, mid, 0.7e9).as_secs_f64();
        let compute = cost.stage_compute(graph, mid, 4096).as_millis_f64();
        // Total per-iteration communication: the paper profiles a ~1280
        // token micro-batch; per-hop bytes are the block-tail activations.
        let hop_tokens = 1280u64;
        let comm: f64 = level.ranges[..level.ranges.len() - 1]
            .iter()
            .map(|r| {
                let bytes = cost.hop_bytes(graph, OpId(r.end - 1), hop_tokens);
                transfer.duration_on(Route::Rdma, bytes).as_millis_f64()
            })
            .sum();
        let batch = level
            .ranges
            .iter()
            .map(|&r| cost.max_batch(graph, r, 80 * GIB))
            .min()
            .unwrap_or(0);
        t.row(vec![
            stages.to_string(),
            fmt_f(load, 2),
            format!("({p_load})"),
            fmt_f(compute, 2),
            format!("({p_compute})"),
            fmt_f(comm, 1),
            format!("({p_comm})"),
            batch.to_string(),
            format!("({p_batch})"),
        ]);
    }
    write_result("table2", &t);

    // Headline shape checks (also recorded in EXPERIMENTS.md).
    let l4 = cost
        .stage_load(graph, setup.lattice.level(4).unwrap().ranges[2], 0.7e9)
        .as_secs_f64();
    let l32 = cost
        .stage_load(graph, setup.lattice.level(32).unwrap().ranges[16], 0.7e9)
        .as_secs_f64();
    println!(
        "load elasticity ratio 4->32 stages: {:.1}x (paper: 8.7x)",
        l4 / l32
    );
}
