//! Fig. 13 — prefill latency across model scales (WHISPER-9B, LLAMA2-7B,
//! BERT-21B, OPT-66B) under production-like traffic for FlexPipe,
//! AlpaServe and ServerlessLLM.

use flexpipe_baselines::{AlpaServeConfig, AlpaServeLike};
use flexpipe_bench::setup::{paper_scenario, E2eParams, PaperSetup};
use flexpipe_bench::systems::flexpipe_config;
use flexpipe_bench::{write_result, SystemId};
use flexpipe_core::FlexPipePolicy;
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_model::ModelId;
use flexpipe_serving::ControlPolicy;
use flexpipe_serving::Engine;
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};

fn lengths_for(model: ModelId) -> LengthProfile {
    match model {
        ModelId::Opt66B => LengthProfile::splitwise_like(),
        ModelId::Llama2_7B | ModelId::Whisper9B => LengthProfile::chat(),
        ModelId::Bert21B => LengthProfile::encoder(),
    }
}

fn main() {
    let systems = [
        SystemId::FlexPipe,
        SystemId::AlpaServe,
        SystemId::ServerlessLlm,
    ];
    let mut t = Table::new(
        "Fig. 13 — prefill latency across model scales (production-like traffic)",
        &[
            "Model",
            "System",
            "Mean prefill(s)",
            "P95 prefill(s)",
            "Completed",
        ],
    );
    let mut improvements = Vec::new();
    for model in ModelId::all() {
        let setup = PaperSetup::for_model(model);
        let mut p = E2eParams::paper(2.0);
        p.rate = 12.0;
        let workload = WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal {
                rate: p.rate,
                cv: p.cv,
            },
            lengths: lengths_for(model),
            slo: SimDuration::from_secs(3),
            slo_per_output_token: SimDuration::from_millis(200),
            horizon_secs: p.warmup_secs + p.horizon_secs,
        }
        .generate(&mut SimRng::seed(p.seed));

        let lengths = lengths_for(model);
        let mean_prompt = lengths.prompt_median * 1.2;
        let mean_output = lengths.output_mean;
        let mut means = Vec::new();
        for system in systems {
            // Every planner receives the model's actual length statistics.
            let policy: Box<dyn ControlPolicy> = match system {
                SystemId::FlexPipe => {
                    let mut cfg = flexpipe_config(p.rate);
                    cfg.granularity.mean_prompt_tokens = mean_prompt;
                    cfg.granularity.mean_output_tokens = mean_output;
                    cfg.granularity.base_stages = if model == ModelId::Opt66B { 4 } else { 2 };
                    Box::new(FlexPipePolicy::new(cfg))
                }
                SystemId::AlpaServe => Box::new(AlpaServeLike::new(AlpaServeConfig {
                    expected_rate: p.rate,
                    mean_prompt_tokens: mean_prompt,
                    mean_output_tokens: mean_output,
                    ..AlpaServeConfig::default()
                })),
                other => other.policy(p.rate),
            };
            let scenario = paper_scenario(&p, workload.clone());
            let report =
                Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy).run();
            let cut = SimTime::from_secs_f64(p.warmup_secs);
            let mut d = flexpipe_metrics::Digest::new();
            for o in report.outcomes.outcomes() {
                if o.completion >= cut {
                    d.record(o.prefill.as_secs_f64());
                }
            }
            means.push(d.mean());
            t.row(vec![
                model.name().into(),
                system.name().into(),
                fmt_f(d.mean(), 3),
                fmt_f(d.quantile(0.95), 3),
                d.count().to_string(),
            ]);
        }
        // FlexPipe vs the better of the two baselines.
        let baseline = means[1].min(means[2]);
        if baseline > 1e-9 {
            improvements.push((model, (1.0 - means[0] / baseline) * 100.0));
        }
    }
    write_result("fig13", &t);
    for (model, imp) in improvements {
        println!("{model}: FlexPipe prefill improvement vs best baseline: {imp:.1}% (paper: 6.4%-24.4%, largest on OPT-66B)");
    }
}
