//! Fig. 12 — resource efficiency: goodput vs GPU utilisation per system
//! and CV.
//!
//! Two readings per system: utilisation of the GPUs it actually held
//! (static packers like Tetris run these hot without converting the cycles
//! into goodput) and goodput per held GPU (the efficiency ratio behind the
//! paper's 8.5x headline).

use flexpipe_bench::setup::{run_e2e, steady_offered, steady_summary};
use flexpipe_bench::{write_result, E2eParams, PaperSetup, SystemId};
use flexpipe_metrics::{fmt_f, Table};

fn main() {
    let setup = PaperSetup::opt66b();
    let mut t = Table::new(
        "Fig. 12 — goodput vs GPU utilisation (OPT-66B, 20 QPS)",
        &[
            "CV",
            "System",
            "Goodput(req/s)",
            "Goodput(%)",
            "MeanGPUs",
            "HeldUtil(%)",
            "Goodput/GPU",
        ],
    );
    let mut flex_eff = [0.0; 3];
    let mut tetris_eff = [0.0; 3];
    for (ci, cv) in [1.0, 2.0, 4.0].into_iter().enumerate() {
        let p = E2eParams::paper(cv);
        let offered = steady_offered(&p);
        for system in SystemId::all() {
            let report = run_e2e(&setup, &p, system.policy(p.rate));
            let s = steady_summary(&report, p.warmup_secs);
            let eff = if report.mean_gpus_held() > 0.0 {
                s.goodput_per_sec / report.mean_gpus_held()
            } else {
                0.0
            };
            if system == SystemId::FlexPipe {
                flex_eff[ci] = eff;
            }
            if system == SystemId::Tetris {
                tetris_eff[ci] = eff;
            }
            t.row(vec![
                fmt_f(cv, 0),
                system.name().into(),
                fmt_f(s.goodput_per_sec, 1),
                fmt_f(s.within_slo as f64 / offered.max(1) as f64 * 100.0, 1),
                fmt_f(report.mean_gpus_held(), 1),
                fmt_f(report.held_utilization() * 100.0, 1),
                fmt_f(eff, 2),
            ]);
        }
    }
    write_result("fig12", &t);
    for (ci, cv) in [1.0, 2.0, 4.0].into_iter().enumerate() {
        let ratio = if tetris_eff[ci] > 1e-9 {
            flex_eff[ci] / tetris_eff[ci]
        } else {
            f64::INFINITY
        };
        println!("CV={cv}: FlexPipe vs Tetris goodput-per-GPU ratio = {ratio:.1}x (paper: up to 8.5x at CV=4)");
    }
}
