//! Fig. 9 — latency under extreme variability (CV = 8), first 300 s:
//! 15-second-window arrival CV and response-time series for FlexPipe,
//! AlpaServe and MuxServe on the identical workload.

use flexpipe_bench::setup::{paper_workload, run_with_workload};
use flexpipe_bench::{write_result, E2eParams, PaperSetup, SystemId};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_sim::{SimDuration, SimTime};
use flexpipe_workload::cv_in_window;

fn main() {
    let setup = PaperSetup::opt66b();
    let p = E2eParams::paper(8.0);
    let systems = [SystemId::FlexPipe, SystemId::AlpaServe, SystemId::MuxServe];
    let workload = paper_workload(&p);
    let arrivals: Vec<SimTime> = workload.requests.iter().map(|r| r.arrival).collect();

    let mut series = Vec::new();
    for system in systems {
        let report = run_with_workload(&setup, &p, workload.clone(), system.policy(p.rate));
        series.push(report);
    }

    let mut t = Table::new(
        "Fig. 9 — CV=8 time series (15 s windows, after warmup)",
        &[
            "t(s)",
            "windowCV",
            "FlexPipe RT(s)",
            "AlpaServe RT(s)",
            "MuxServe RT(s)",
        ],
    );
    let start = p.warmup_secs as u64;
    let end = (p.warmup_secs + p.horizon_secs.min(300.0)) as u64;
    let mut w = start;
    while w < end {
        let from = SimTime::from_secs(w);
        let to = SimTime::from_secs(w + 15);
        let cv = cv_in_window(&arrivals, from, to);
        let mut row = vec![(w - start).to_string(), fmt_f(cv, 2)];
        for report in &series {
            let d = report.outcomes.latency_digest_in(from, to);
            row.push(fmt_f(d.mean(), 2));
        }
        t.row(row);
        w += 15;
    }
    write_result("fig9", &t);
    let _ = SimDuration::ZERO;
    println!("paper shape: 15s-window CV swings 0.59-3.47; FlexPipe's series stays low and flat while MuxServe spikes >10s and AlpaServe shows periodic spikes");
}
