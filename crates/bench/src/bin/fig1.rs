//! Fig. 1 — request-distribution CV computed over 180 s / 3 h / 12 h
//! windows for three synthetic production traces (Alibaba-like aggregate,
//! Azure top-1-like, Azure top-2-like).
//!
//! The paper's point: the same trace reads as CV ≈ 1 locally and CV ≈ 4–6
//! over long windows — a 7x mismatch no static configuration can satisfy.
//! Days default to 3 (`FP_DAYS` overrides; the paper shows 31).

use flexpipe_bench::{env_u64, write_result};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{cv_in_window, windowed_cv_series, SyntheticTrace, TraceProfile};

fn daily_cvs(name: &str, profile: TraceProfile, days: u64, seed: u64, t: &mut Table) -> f64 {
    let horizon = days as f64 * 86_400.0;
    let mut rng = SimRng::seed(seed);
    let trace = SyntheticTrace::generate(profile, horizon, &mut rng);
    let arrivals = trace.arrivals(&mut rng);

    let mut worst_ratio: f64 = 0.0;
    for day in 0..days {
        let start = SimTime::from_secs(day * 86_400);
        let end = SimTime::from_secs((day + 1) * 86_400);
        // 180 s windows: median CV across the day's windows.
        let short_series = windowed_cv_series(
            &arrivals
                .iter()
                .copied()
                .filter(|a| *a >= start && *a < end)
                .map(|a| SimTime::from_secs_f64(a.as_secs_f64() - start.as_secs_f64()))
                .collect::<Vec<_>>(),
            SimDuration::from_secs(180),
            SimTime::from_secs(86_400),
        );
        let mut short: Vec<f64> = short_series
            .iter()
            .filter(|p| p.count >= 3)
            .map(|p| p.cv)
            .collect();
        short.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cv_180s = if short.is_empty() {
            0.0
        } else {
            short[short.len() / 2]
        };
        // 3 h windows: max CV over the day's eight windows.
        let cv_3h = (0..8)
            .map(|w| {
                cv_in_window(
                    &arrivals,
                    start + SimDuration::from_secs(w * 10_800),
                    start + SimDuration::from_secs((w + 1) * 10_800),
                )
            })
            .fold(0.0, f64::max);
        // 12 h windows: max of the two halves.
        let cv_12h = cv_in_window(&arrivals, start, start + SimDuration::from_secs(43_200)).max(
            cv_in_window(&arrivals, start + SimDuration::from_secs(43_200), end),
        );
        if cv_180s > 0.0 {
            worst_ratio = worst_ratio.max(cv_12h / cv_180s);
        }
        t.row(vec![
            name.into(),
            format!("D{}", day + 1),
            fmt_f(cv_180s, 2),
            fmt_f(cv_3h, 2),
            fmt_f(cv_12h, 2),
        ]);
    }
    worst_ratio
}

fn main() {
    let days = env_u64("FP_DAYS", 3);
    let seed = env_u64("FP_SEED", 42);
    let mut t = Table::new(
        "Fig. 1 — request CV vs measurement window (paper: up to 7x mismatch)",
        &["Trace", "Day", "CV@180s", "CV@3h", "CV@12h"],
    );
    let r1 = daily_cvs(
        "Alibaba-like",
        TraceProfile::alibaba_like(),
        days,
        seed,
        &mut t,
    );
    let r2 = daily_cvs(
        "Azure-top1-like",
        TraceProfile::azure_top1_like(),
        days,
        seed + 1,
        &mut t,
    );
    let r3 = daily_cvs(
        "Azure-top2-like",
        TraceProfile::azure_top2_like(),
        days,
        seed + 2,
        &mut t,
    );
    write_result("fig1", &t);
    println!(
        "worst 12h/180s CV mismatch: Alibaba {:.1}x, Azure-1 {:.1}x, Azure-2 {:.1}x (paper: up to 7x)",
        r1, r2, r3
    );
}
