//! Fig. 8 — end-to-end latency breakdown and goodput across request
//! distributions (CV = 1, 2, 4) for all five systems.
//!
//! Paper shape: FlexPipe trades slightly higher communication time for
//! large queue-time reductions, holding goodput near 100% while MuxServe /
//! ServerlessLLM / Tetris degrade as CV rises.

use flexpipe_bench::setup::{run_e2e, steady_offered, steady_summary};
use flexpipe_bench::{write_result, E2eParams, PaperSetup, SystemId};
use flexpipe_metrics::{fmt_f, Table};

fn main() {
    let setup = PaperSetup::opt66b();
    let mut t = Table::new(
        "Fig. 8 — E2E latency breakdown + goodput (OPT-66B, 20 QPS)",
        &[
            "CV",
            "System",
            "Resp(s)",
            "Queue(s)",
            "Exec(s)",
            "Comm(ms)",
            "Goodput(%)",
            "Refactors",
            "MeanGPUs",
        ],
    );
    for cv in [1.0, 2.0, 4.0] {
        let p = E2eParams::paper(cv);
        let offered = steady_offered(&p);
        for system in SystemId::all() {
            let report = run_e2e(&setup, &p, system.policy(p.rate));
            let s = steady_summary(&report, p.warmup_secs);
            t.row(vec![
                fmt_f(cv, 0),
                system.name().into(),
                fmt_f(s.mean_latency, 2),
                fmt_f(s.mean_queue, 2),
                fmt_f(s.mean_execution, 2),
                fmt_f(s.mean_communication * 1e3, 0),
                fmt_f(s.within_slo as f64 / offered.max(1) as f64 * 100.0, 1),
                report.refactors.to_string(),
                fmt_f(report.mean_gpus_held(), 1),
            ]);
        }
    }
    write_result("fig8", &t);
    println!("paper reference (response time, s): CV=1: FlexPipe 0.83 / AlpaServe 1.34 / MuxServe 1.35 / ServerlessLLM 1.34 / Tetris 4.31");
    println!("                                    CV=2: 1.00 / 1.58 / 2.35 / 1.87 / 5.06");
    println!("                                    CV=4: 1.45 / 2.19 / 4.85 / 4.29 / 6.22");
    println!("paper goodput at CV=4: FlexPipe 100% / AlpaServe 100% / MuxServe 71% / ServerlessLLM 88% / Tetris 13%");
}
