//! Runs every experiment binary in paper order, collecting all outputs
//! under `results/`.
//!
//! Expects to live next to its sibling binaries (the normal
//! `cargo run --release -p flexpipe-bench --bin run_all` invocation).

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    let experiments = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "eq1",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "case_study",
        "ablations",
    ];
    let mut failed = Vec::new();
    for name in experiments {
        let path = dir.join(name);
        println!("\n=================== {name} ===================");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failed.push(name);
            }
            Err(e) => {
                eprintln!("could not run {name}: {e} (build all bins first: cargo build --release -p flexpipe-bench)");
                failed.push(name);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; outputs in results/");
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
