//! Fig. 11 — pipeline-stall recovery time across systems and CV.
//!
//! Stall methodology per §9.3: stall when (output-normalised) latency
//! exceeds 1.5x the P25 baseline, recovery when it returns under 1.2x.

use flexpipe_bench::setup::run_e2e;
use flexpipe_bench::{write_result, E2eParams, PaperSetup, SystemId};
use flexpipe_metrics::{analyze_stalls, fmt_f, StallConfig, Table};
use flexpipe_sim::SimDuration;

fn main() {
    let setup = PaperSetup::opt66b();
    let mut t = Table::new(
        "Fig. 11 — stall recovery time (OPT-66B, 20 QPS)",
        &[
            "CV",
            "System",
            "Median rec(s)",
            "Mean rec(s)",
            "Episodes",
            "Stalled(%)",
            "Refactors",
        ],
    );
    for cv in [1.0, 2.0, 4.0] {
        let p = E2eParams::paper(cv);
        for system in SystemId::all() {
            let report = run_e2e(&setup, &p, system.policy(p.rate));
            let stalls = analyze_stalls(&report.outcomes, StallConfig::default(), 0.15);
            t.row(vec![
                fmt_f(cv, 0),
                system.name().into(),
                fmt_f(stalls.median_recovery_secs(), 2),
                fmt_f(stalls.mean_recovery_secs(), 2),
                stalls.episodes.len().to_string(),
                fmt_f(
                    stalls.stall_fraction(SimDuration::from_secs_f64(report.horizon_secs)) * 100.0,
                    1,
                ),
                report.refactors.to_string(),
            ]);
        }
    }
    write_result("fig11", &t);
    println!("paper reference (median recovery): CV=1 FlexPipe 88ms ~ AlpaServe 83ms < MuxServe 131 / ServerlessLLM 115 / Tetris 179ms");
    println!("                                   CV=4 FlexPipe 9ms << AlpaServe 16ms << MuxServe 48 / ServerlessLLM 50ms");
}
