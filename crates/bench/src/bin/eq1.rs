//! Eq. (1) — the extended G/G/S queueing model, validated against the
//! simulator.
//!
//! The analytic model predicts the qualitative coupling between pipeline
//! depth, arrival CV and sojourn time; this binary prints model predictions
//! next to simulated mean latencies for the §3.3 static-pipeline setup and
//! checks the `S ∝ √CV` depth heuristic.

use flexpipe_bench::setup::{paper_workload, run_with_workload, steady_summary};
use flexpipe_bench::systems::static_pipeline;
use flexpipe_bench::{write_result, E2eParams, PaperSetup};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_serving::{optimal_depth_heuristic, predict, GgsParams};

fn main() {
    let setup = PaperSetup::opt66b();
    let mut t = Table::new(
        "Eq. (1) — G/G/S model vs simulation (static pipelines, OPT-66B, 16 QPS)",
        &[
            "Stages",
            "CV",
            "Model pipe(s)",
            "Model queue(s)",
            "Model total(s)",
            "Sim/token(s)",
        ],
    );
    for stages in [4u32, 8, 16] {
        let level = setup.lattice.level(stages).expect("level");
        // Per-request per-stage busy time (the G/G/S service time).
        let cost = &setup.cost;
        let overhead = cost.stage_overhead.as_secs_f64();
        let busy: f64 = level
            .ranges
            .iter()
            .map(|&r| {
                let per_tok =
                    (cost.stage_compute(&setup.graph, r, 1000).as_secs_f64() - overhead) / 1000.0;
                per_tok * (1024.0 + 64.0) + (overhead + 0.002) * 65.0 / 16.0
            })
            .fold(0.0, f64::max);
        for cv in [0.5, 1.0, 2.0, 4.0] {
            let params = GgsParams {
                stages,
                stage_service_secs: cost
                    .stage_compute(&setup.graph, level.ranges[level.ranges.len() / 2], 16)
                    .as_secs_f64(),
                hop_secs: 0.002,
                arrival_rate: 16.0,
                stage_service_rate: 1.0 / busy,
                cv_arrival: cv,
                cv_service: 0.5,
            };
            let prediction = predict(&params);
            let mut p = E2eParams::paper(cv);
            p.rate = 16.0;
            let workload = paper_workload(&p);
            let report = run_with_workload(&setup, &p, workload, static_pipeline(stages, 1));
            // The G/G/S service unit is one decode pass; compare against the
            // simulated per-output-token sojourn.
            let sim = steady_summary(&report, p.warmup_secs).mean_latency / 64.0;
            match prediction {
                Some(pred) => t.row(vec![
                    stages.to_string(),
                    fmt_f(cv, 1),
                    fmt_f(pred.pipe_secs, 3),
                    fmt_f(pred.queue_secs + pred.congestion_secs, 3),
                    fmt_f(pred.total_secs(), 3),
                    fmt_f(sim, 3),
                ]),
                None => t.row(vec![
                    stages.to_string(),
                    fmt_f(cv, 1),
                    "unstable".into(),
                    "unstable".into(),
                    "unstable".into(),
                    fmt_f(sim, 3),
                ]),
            };
        }
    }
    write_result("eq1", &t);
    println!("S ∝ √CV heuristic (base 4 stages at CV=1):");
    for cv in [1.0, 2.0, 4.0, 8.0, 16.0] {
        println!(
            "  CV={cv:>4}: suggested depth {}",
            optimal_depth_heuristic(cv, 4, 2, 32)
        );
    }
}
