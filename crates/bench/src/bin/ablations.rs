//! Ablation study over the design choices DESIGN.md §5 calls out:
//!
//! 1. the Eq. (4) CV-affinity term (`exp(−|ν_t−ν_k|/σ)`) vs a pure
//!    throughput/latency score (σ → ∞);
//! 2. refactoring hysteresis + debounce vs none;
//! 3. HRG topology-aware placement vs the engine's naive best-fit;
//! 4. the host-memory parameter cache (warm starts) — isolated through the
//!    migration/scaling path by zeroing the cache TTL;
//! 5. burst-aware Eq. (11) scale-out granularity vs always-coarse.
//!
//! Each variant serves the same CV=4 OPT-66B workload; the table reports
//! goodput, latency and adaptation activity.

use flexpipe_bench::setup::{paper_workload, run_with_workload, steady_offered, steady_summary};
use flexpipe_bench::systems::flexpipe_config;
use flexpipe_bench::{write_result, E2eParams, PaperSetup};
use flexpipe_core::{FlexPipeConfig, FlexPipePolicy, ScalingParams};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_serving::{ControlPolicy, Ctx, Placement};
use flexpipe_sim::SimDuration;

/// FlexPipe with HRG placement replaced by the engine's naive best-fit.
struct NaivePlacement(FlexPipePolicy, FlexPipeConfig);
impl ControlPolicy for NaivePlacement {
    fn name(&self) -> &'static str {
        "no-HRG"
    }
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        // Same sizing as FlexPipe's init, but FirstFit placement.
        self.0.init(ctx);
        let ids: Vec<_> = ctx.instances().iter().map(|i| i.id).collect();
        for id in ids {
            ctx.retire(id);
        }
        let target = self.0.profiles().iter().find(|p| p.stages == 4).copied();
        if let Some(t) = target {
            let n = flexpipe_core::instances_needed(&t, self.1.expected_rate, self.1.headroom);
            for _ in 0..n {
                let _ = ctx.spawn_prewarmed(t.stages, Placement::FirstFit);
            }
        }
    }
    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        self.0.on_tick(ctx)
    }
}

fn run_variant(
    setup: &PaperSetup,
    p: &E2eParams,
    name: &'static str,
    policy: Box<dyn ControlPolicy>,
    t: &mut Table,
) {
    let workload = paper_workload(p);
    let report = run_with_workload(setup, p, workload, policy);
    let s = steady_summary(&report, p.warmup_secs);
    let offered = steady_offered(p);
    t.row(vec![
        name.into(),
        fmt_f(s.within_slo as f64 / offered.max(1) as f64 * 100.0, 1),
        fmt_f(s.mean_latency, 2),
        fmt_f(s.p99_latency, 2),
        report.refactors.to_string(),
        report.spawns.to_string(),
        fmt_f(report.mean_gpus_held(), 1),
        fmt_f(report.warm_load_fraction() * 100.0, 0),
    ]);
}

fn main() {
    let setup = PaperSetup::opt66b();
    let p = E2eParams::paper(4.0);
    let mut t = Table::new(
        "Ablations — FlexPipe design choices at CV=4 (OPT-66B, 20 QPS)",
        &[
            "Variant",
            "Goodput(%)",
            "Mean(s)",
            "P99(s)",
            "Refactors",
            "Spawns",
            "MeanGPUs",
            "Warm(%)",
        ],
    );

    // Full system.
    run_variant(
        &setup,
        &p,
        "full FlexPipe",
        Box::new(FlexPipePolicy::new(flexpipe_config(p.rate))),
        &mut t,
    );

    // 1. CV-affinity off: σ → huge makes every level equally "matching",
    //    so selection degenerates to the pure quality score.
    let mut cfg = flexpipe_config(p.rate);
    cfg.granularity.sigma = 1e9;
    run_variant(
        &setup,
        &p,
        "no CV-affinity (σ→∞)",
        Box::new(FlexPipePolicy::new(cfg)),
        &mut t,
    );

    // 2. No hysteresis/debounce: refactor on any score improvement,
    //    immediately.
    let mut cfg = flexpipe_config(p.rate);
    cfg.hysteresis = 1.0;
    cfg.confirm_ticks = 1;
    cfg.min_dwell = SimDuration::ZERO;
    run_variant(
        &setup,
        &p,
        "no hysteresis",
        Box::new(FlexPipePolicy::new(cfg)),
        &mut t,
    );

    // 3. Naive placement instead of HRG + Eq. (6)-(9).
    let cfg = flexpipe_config(p.rate);
    run_variant(
        &setup,
        &p,
        "no HRG (best-fit)",
        Box::new(NaivePlacement(
            FlexPipePolicy::new(cfg),
            flexpipe_config(p.rate),
        )),
        &mut t,
    );

    // 4. Burst granularity off: Eq. (11) forced coarse (β huge keeps the
    //    sigmoid at its floor), so scale-outs always deploy the coarse
    //    target with its 33 GB stage loads.
    let mut cfg = flexpipe_config(p.rate);
    cfg.scaling = ScalingParams {
        beta: 1e12,
        ..ScalingParams::default()
    };
    run_variant(
        &setup,
        &p,
        "coarse-only scale-out",
        Box::new(FlexPipePolicy::new(cfg)),
        &mut t,
    );

    write_result("ablations", &t);
    println!("Interpretation: each row removes one §5/§6/§7 mechanism; degradation vs the full system quantifies its contribution.");
}
