//! Fig. 2 — resource fragmentation: (a) GPU subscription rate over time,
//! (b) the scattered-availability heatmap.
//!
//! (a) samples the mean services-per-GPU as the tenant population churns;
//! (b) renders a server × time grid of free ("securable") GPU counts,
//! showing availability appearing and vanishing across the cluster.

use flexpipe_bench::{env_u64, write_result};
use flexpipe_cluster::{BackgroundProfile, BackgroundTenants, Cluster, ClusterSpec};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_sim::{SimDuration, SimRng};

fn main() {
    let seed = env_u64("FP_SEED", 42);
    let mut cluster = Cluster::new(ClusterSpec::alibaba_c1());
    let mut bg = BackgroundTenants::new(BackgroundProfile::c1_like(), SimRng::seed(seed));
    bg.populate(&mut cluster);

    // (a) Subscription-rate time series over 24 hours of churn.
    let mut t = Table::new(
        "Fig. 2a — GPU subscription rate over time (paper: ~216% average)",
        &[
            "Hour",
            "Subscription(%)",
            "P(single free)(%)",
            "P(colocate-4)(%)",
        ],
    );
    let mut avg = 0.0;
    let hours = 24;
    for h in 0..hours {
        bg.step(&mut cluster, SimDuration::from_secs(3600));
        let s = BackgroundTenants::stats(&cluster);
        avg += s.subscription_pct / hours as f64;
        t.row(vec![
            h.to_string(),
            fmt_f(s.subscription_pct, 1),
            fmt_f(s.p_single_free * 100.0, 2),
            fmt_f(s.p_colocate4 * 100.0, 3),
        ]);
    }
    write_result("fig2a", &t);
    println!("mean subscription rate: {avg:.1}% (paper: 216%)\n");

    // (b) Availability heatmap: 24 servers x 24 snapshots, each cell the
    // number of securable GPUs on that server (.=0).
    let mut heat = String::from(
        "Fig. 2b - availability heatmap (rows: first 24 servers, cols: hourly snapshots; cell = securable GPUs, '.' = none)\n",
    );
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); 24];
    let mut cluster = Cluster::new(ClusterSpec::alibaba_c1());
    let mut bg = BackgroundTenants::new(BackgroundProfile::c1_like(), SimRng::seed(seed + 7));
    bg.populate(&mut cluster);
    for _snap in 0..24 {
        for (row, server) in grid.iter_mut().zip(0u32..) {
            let free = cluster
                .topology()
                .gpus_on(flexpipe_cluster::ServerId(server))
                .iter()
                .filter(|&&g| {
                    let l = cluster.load(g);
                    cluster.free_frac(g) > 0.85 && l.bg_sm < 0.30 && l.bg_services <= 1
                })
                .count() as u32;
            row.push(free);
        }
        bg.step(&mut cluster, SimDuration::from_secs(3600));
    }
    for (server, row) in grid.iter().enumerate() {
        heat.push_str(&format!("s{server:02} "));
        for &c in row {
            heat.push(if c == 0 {
                '.'
            } else {
                char::from_digit(c.min(9), 10).unwrap()
            });
        }
        heat.push('\n');
    }
    println!("{heat}");
    let _ = std::fs::write(flexpipe_bench::results_dir().join("fig2b.txt"), heat);
}
