//! TTFT-vs-rate monotonicity, promoted from compile-only figure debt into
//! an asserted integration test: on a *fixed* deployment, time-to-first-
//! token (queue + prefill — everything before the first output token)
//! must grow monotonically with the offered rate, and the saturated
//! endpoint must sit far above the uncongested one. This is the queueing
//! backbone behind Fig. 3/Fig. 8's degradation curves: a static 4-stage
//! OPT-66B pipeline absorbs 10 QPS, strains at 20, and convoys at 40.
//!
//! Bounded sim window: 60 s measured + 15 s warmup per rate, three rates.

use flexpipe_bench::setup::{paper_workload, run_with_workload};
use flexpipe_bench::systems::static_pipeline;
use flexpipe_bench::{E2eParams, PaperSetup};
use flexpipe_metrics::Digest;
use flexpipe_sim::SimTime;

/// Median TTFT over requests arriving in the measured window, seconds.
fn p50_ttft(setup: &PaperSetup, rate: f64) -> f64 {
    let p = E2eParams {
        cv: 1.0,
        rate,
        horizon_secs: 60.0,
        warmup_secs: 15.0,
        seed: 42,
    };
    let workload = paper_workload(&p);
    let report = run_with_workload(setup, &p, workload, static_pipeline(4, 1));
    let cut = SimTime::from_secs_f64(p.warmup_secs);
    let mut d = Digest::new();
    for o in report.outcomes.outcomes() {
        if o.arrival >= cut {
            d.record(o.queue.as_secs_f64() + o.prefill.as_secs_f64());
        }
    }
    assert!(d.count() > 100, "too few completions at rate {rate}");
    d.quantile(0.5)
}

#[test]
fn ttft_grows_monotonically_with_rate_on_a_static_pipeline() {
    let setup = PaperSetup::opt66b();
    let rates = [10.0, 20.0, 40.0];
    let ttfts: Vec<f64> = rates.iter().map(|&r| p50_ttft(&setup, r)).collect();
    eprintln!(
        "static 4-stage p50 TTFT: {:.3}s @ 10 QPS, {:.3}s @ 20 QPS, {:.3}s @ 40 QPS",
        ttfts[0], ttfts[1], ttfts[2]
    );
    // Monotone in rate (5% slack absorbs batching discretisation).
    for w in ttfts.windows(2) {
        assert!(
            w[1] >= w[0] * 0.95,
            "TTFT fell as rate grew: {:.3}s -> {:.3}s",
            w[0],
            w[1]
        );
    }
    // The saturated endpoint is not mere noise above the uncongested one.
    assert!(
        ttfts[2] > ttfts[0] * 1.5,
        "saturation should dominate TTFT: {:.3}s vs {:.3}s",
        ttfts[2],
        ttfts[0]
    );
}
