//! Fragmentation sensitivity, promoted from compile-only figure debt into
//! an asserted integration test: the same FlexPipe deployment on the same
//! traffic must degrade as background-tenant fragmentation deepens — the
//! scattered-availability regime of Fig. 2 is what the whole paper
//! responds to. Heavier fragmentation means less free device memory
//! (smaller memory-bound batch capacities, Table 2) and more SM
//! interference, so goodput can only fall from a dedicated cluster to the
//! Alibaba-C2-like profile.
//!
//! Bounded sim window: 60 s measured + 15 s warmup per profile, three
//! profiles on the paper testbed.

use flexpipe_bench::setup::{paper_workload, E2eParams};
use flexpipe_bench::{PaperSetup, SystemId};
use flexpipe_cluster::{BackgroundProfile, ClusterSpec, TierConfig};
use flexpipe_model::CostModel;
use flexpipe_serving::{Engine, EngineConfig, Scenario};
use flexpipe_sim::SimTime;

/// Goodput ratio (within-SLO completions over offered load, counted by
/// arrival in the measured window) under one fragmentation profile.
fn goodput_under(setup: &PaperSetup, p: &E2eParams, background: BackgroundProfile) -> f64 {
    let workload = paper_workload(p);
    let cut = SimTime::from_secs_f64(p.warmup_secs);
    let offered = workload
        .requests
        .iter()
        .filter(|r| r.arrival >= cut)
        .count();
    assert!(offered > 300, "offered load too small: {offered}");
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background,
        tier: TierConfig::default(),
        cost: CostModel::default(),
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs_f64(p.total_secs()),
        seed: p.seed,
    };
    let policy = SystemId::FlexPipe.policy(p.rate);
    let report = Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy).run();
    let within = report
        .outcomes
        .outcomes()
        .iter()
        .filter(|o| o.arrival >= cut && o.within_slo())
        .count();
    within as f64 / offered as f64
}

#[test]
fn goodput_degrades_as_fragmentation_deepens() {
    let setup = PaperSetup::opt66b();
    let p = E2eParams {
        cv: 4.0,
        rate: 50.0,
        horizon_secs: 60.0,
        warmup_secs: 15.0,
        seed: 42,
    };
    let idle = goodput_under(&setup, &p, BackgroundProfile::none());
    let testbed = goodput_under(&setup, &p, BackgroundProfile::testbed_like());
    let c2 = goodput_under(&setup, &p, BackgroundProfile::c2_like());
    eprintln!(
        "FlexPipe goodput vs fragmentation: idle {idle:.3}, testbed-like {testbed:.3}, \
         c2-like {c2:.3}"
    );
    // A dedicated cluster serves essentially everything...
    assert!(idle > 0.9, "idle-cluster goodput collapsed: {idle:.3}");
    // ...and fragmentation only costs goodput, never buys it (3% slack
    // absorbs placement luck on the shared-seed workload).
    assert!(
        idle >= testbed - 0.03,
        "testbed fragmentation should not beat a dedicated cluster: {testbed:.3} vs {idle:.3}"
    );
    assert!(
        testbed >= c2 - 0.03,
        "deeper fragmentation should not beat the testbed profile: {c2:.3} vs {testbed:.3}"
    );
    // The end-to-end spread is a real sensitivity, not a tie.
    assert!(
        idle > c2,
        "no fragmentation sensitivity at all: idle {idle:.3} vs c2 {c2:.3}"
    );
}
