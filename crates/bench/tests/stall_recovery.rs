//! Fig. 11's stall-recovery claim, promoted from the compile-only figure
//! binary (`src/bin/fig11.rs`) into an asserted time-series test — paying
//! down the seed-test debt for the first stall-path figure.
//!
//! Methodology per §9.3 (`flexpipe_metrics::analyze_stalls`): a stall
//! begins when smoothed per-token latency exceeds 1.5× the P25 baseline
//! and recovers below 1.2×. Here a mid-run hot-server preemption injects
//! the latency shock; the paper's claim is that FlexPipe's inflight
//! refactoring recovers far faster than a baseline that cold-respawns, so
//! we assert episode *shape* (well-formed, ordered, inside the horizon)
//! and the cross-system *ordering* of time spent stalled rather than
//! absolute figures.

use flexpipe_baselines::StaticPipeline;
use flexpipe_bench::{PaperSetup, SystemId};
use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
use flexpipe_cluster::{BackgroundProfile, ClusterSpec, TierConfig};
use flexpipe_metrics::{analyze_stalls, StallConfig, StallReport};
use flexpipe_model::{CostModel, ModelId};
use flexpipe_serving::{ControlPolicy, Engine, EngineConfig, RunReport, Scenario};
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};

const RATE: f64 = 4.0;
const SPAN_SECS: f64 = 60.0;
const SEED: u64 = 20_260_731;

/// The busiest server takes a 15 s grace preemption at t = 20 s, well
/// inside the measured window (same shock as the chaos acceptance tests).
fn preempt_script() -> DisruptionScript {
    DisruptionScript {
        name: "stall-preempt".into(),
        events: vec![DisruptionEvent {
            at_secs: 20.0,
            kind: Disruption::HotServerPreempt {
                rank: 0,
                grace_secs: 15.0,
            },
        }],
    }
}

fn run_system(setup: &PaperSetup, policy: Box<dyn ControlPolicy>) -> RunReport {
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal {
            rate: RATE,
            cv: 1.0,
        },
        lengths: LengthProfile::fixed(128, 128),
        slo: SimDuration::from_secs(2),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: SPAN_SECS,
    }
    .generate(&mut SimRng::seed(SEED));
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::heterogeneous("stall-bed", 8, 12, 4),
        background: BackgroundProfile::none(),
        tier: TierConfig::default(),
        cost: CostModel::default(),
        workload,
        disruptions: preempt_script(),
        horizon: SimTime::from_secs_f64(SPAN_SECS + 30.0),
        seed: SEED,
    };
    Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy).run()
}

fn stalls_of(report: &RunReport) -> StallReport {
    // The first ~30% of completions land before the t = 20 s shock and
    // calibrate the baseline quantile.
    analyze_stalls(&report.outcomes, StallConfig::default(), 0.3)
}

/// Seconds of the run spent in (or still inside) a stall: completed
/// episodes plus an open, unrecovered tail out to the last completion.
fn stalled_secs(report: &RunReport, stalls: &StallReport) -> f64 {
    let mut total: f64 = stalls
        .episodes
        .iter()
        .map(|e| e.recovery().as_secs_f64())
        .sum();
    if stalls.unrecovered {
        total += report.horizon_secs;
    }
    total
}

#[test]
fn fig11_stall_episodes_are_well_formed_and_flexpipe_recovers_fastest() {
    let setup = PaperSetup::for_model(ModelId::Llama2_7B);
    let flex = run_system(&setup, SystemId::FlexPipe.policy(RATE));
    let stat = run_system(&setup, Box::new(StaticPipeline::new(2, 1)));
    let flex_stalls = stalls_of(&flex);
    let stat_stalls = stalls_of(&stat);

    // Both systems served real traffic and faced the same revocation.
    for (name, report) in [("FlexPipe", &flex), ("Static-2x1", &stat)] {
        assert!(
            report.summary.completed > 100,
            "{name} completed too little: {}",
            report.summary.completed
        );
        assert_eq!(
            report.disruptions.revocation_events, 1,
            "{name} revocations"
        );
    }

    // Shape: every detected episode is well-formed — positive-length,
    // chronologically ordered, inside the simulated horizon, and not
    // before the disruption that causes it (the calibration window is
    // pre-shock by construction).
    for (name, report, stalls) in [
        ("FlexPipe", &flex, &flex_stalls),
        ("Static-2x1", &stat, &stat_stalls),
    ] {
        assert!(stalls.baseline_secs > 0.0, "{name} baseline missing");
        for e in &stalls.episodes {
            assert!(e.start < e.end, "{name} episode inverted: {e:?}");
            assert!(
                e.end.as_secs_f64() <= report.horizon_secs,
                "{name} episode past horizon: {e:?}"
            );
        }
        for w in stalls.episodes.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "{name} episodes overlap or are unordered: {w:?}"
            );
        }
        eprintln!(
            "{name}: baseline {:.3}s/token, {} episodes, stalled {:.1}s, unrecovered={}",
            stalls.baseline_secs,
            stalls.episodes.len(),
            stalled_secs(report, stalls),
            stalls.unrecovered,
        );
    }

    // The shock is visible: the cold-respawning static pipeline stalls
    // detectably (an episode or an unrecovered tail)...
    assert!(
        !stat_stalls.episodes.is_empty() || stat_stalls.unrecovered,
        "static pipeline showed no stall after losing its hot server"
    );
    // ...and Fig. 11's ordering holds: FlexPipe's inflight recovery
    // spends strictly less time stalled than the cold respawn, by a
    // margin (the paper reports an order of magnitude at high CV).
    let flex_stalled = stalled_secs(&flex, &flex_stalls);
    let stat_stalled = stalled_secs(&stat, &stat_stalls);
    assert!(
        flex_stalled < stat_stalled,
        "FlexPipe stalled {flex_stalled:.1}s, static {stat_stalled:.1}s"
    );
    assert!(
        flex_stalled <= 0.5 * stat_stalled,
        "FlexPipe should recover much faster: {flex_stalled:.1}s vs {stat_stalled:.1}s"
    );
}
