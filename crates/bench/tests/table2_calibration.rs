//! Table 2 calibration, promoted from a compile-only figure binary into
//! an asserted integration test (mirroring the Fig. 8 goodput-ordering
//! promotion): the cost model's per-granularity metrics for OPT-66B at
//! sequence length 4096 must stay inside a tolerance band of the paper's
//! profiled values.
//!
//! Paper reference rows (stages, load s, compute ms, comm ms, max batch):
//! (4, 47.14, 69.94, 6.3, 128), (8, 13.05, 36.63, 14.7, 256),
//! (16, 9.19, 18.67, 31.5, 512), (32, 5.43, 9.67, 65.1, 1024).
//!
//! Bands are metric-specific: compute and communication are calibrated
//! tightly (≤ 5% per row); the memory-bound max batch runs above paper
//! (our KV accounting is slightly leaner) within 35%; cold-storage load
//! uses the layout-aware model (setup term + capped small-partition
//! bandwidth gain), which lands every row within 15% and the mean within
//! 12% — down from ~80% error on the 8-stage row under the old
//! linear-in-partition-size model — plus the 4→32 load-elasticity ratio
//! that drives the paper's fast-scaling argument.

use flexpipe_bench::PaperSetup;
use flexpipe_cluster::{LinkSpec, Route, TransferEngine};
use flexpipe_model::OpId;

const GIB: u64 = 1 << 30;

/// (stages, load s, compute ms, comm ms, max batch) from the paper.
const PAPER: [(u32, f64, f64, f64, u32); 4] = [
    (4, 47.14, 69.94, 6.3, 128),
    (8, 13.05, 36.63, 14.7, 256),
    (16, 9.19, 18.67, 31.5, 512),
    (32, 5.43, 9.67, 65.1, 1024),
];

struct Row {
    stages: u32,
    load_s: f64,
    compute_ms: f64,
    comm_ms: f64,
    batch: u32,
}

/// Reproduces the table2 binary's computation exactly.
fn computed_rows(setup: &PaperSetup) -> Vec<Row> {
    let graph = &setup.graph;
    let cost = &setup.cost;
    let transfer = TransferEngine::new(LinkSpec::default());
    PAPER
        .iter()
        .map(|&(stages, ..)| {
            let level = setup.lattice.level(stages).expect("lattice level");
            let mid = level.ranges[level.ranges.len() / 2];
            let load_s = cost.stage_load(graph, mid, 0.7e9).as_secs_f64();
            let compute_ms = cost.stage_compute(graph, mid, 4096).as_millis_f64();
            let hop_tokens = 1280u64;
            let comm_ms: f64 = level.ranges[..level.ranges.len() - 1]
                .iter()
                .map(|r| {
                    let bytes = cost.hop_bytes(graph, OpId(r.end - 1), hop_tokens);
                    transfer.duration_on(Route::Rdma, bytes).as_millis_f64()
                })
                .sum();
            let batch = level
                .ranges
                .iter()
                .map(|&r| cost.max_batch(graph, r, 80 * GIB))
                .min()
                .unwrap_or(0);
            Row {
                stages,
                load_s,
                compute_ms,
                comm_ms,
                batch,
            }
        })
        .collect()
}

fn rel_err(ours: f64, paper: f64) -> f64 {
    (ours - paper).abs() / paper
}

#[test]
fn table2_calibration_error_stays_within_tolerance() {
    let setup = PaperSetup::opt66b();
    let rows = computed_rows(&setup);

    let mut load_errs = Vec::new();
    let mut batch_errs = Vec::new();
    for (row, &(stages, p_load, p_compute, p_comm, p_batch)) in rows.iter().zip(&PAPER) {
        assert_eq!(row.stages, stages);
        let e_compute = rel_err(row.compute_ms, p_compute);
        let e_comm = rel_err(row.comm_ms, p_comm);
        let e_load = rel_err(row.load_s, p_load);
        let e_batch = rel_err(f64::from(row.batch), f64::from(p_batch));
        eprintln!(
            "table2 @ {stages:2} stages: load {:.2}s ({p_load}, {:.0}%), compute {:.2}ms \
             ({p_compute}, {:.0}%), comm {:.1}ms ({p_comm}, {:.0}%), batch {} ({p_batch}, {:.0}%)",
            row.load_s,
            e_load * 100.0,
            row.compute_ms,
            e_compute * 100.0,
            row.comm_ms,
            e_comm * 100.0,
            row.batch,
            e_batch * 100.0,
        );
        assert!(
            e_compute <= 0.05,
            "compute at {stages} stages off by {:.1}%",
            e_compute * 100.0
        );
        assert!(
            e_comm <= 0.05,
            "comm at {stages} stages off by {:.1}%",
            e_comm * 100.0
        );
        assert!(
            e_batch <= 0.35,
            "max batch at {stages} stages off by {:.1}%",
            e_batch * 100.0
        );
        assert!(
            e_load <= 0.15,
            "load at {stages} stages off by {:.1}%",
            e_load * 100.0
        );
        load_errs.push(e_load);
        batch_errs.push(e_batch);
    }
    let mean_load = load_errs.iter().sum::<f64>() / load_errs.len() as f64;
    let mean_batch = batch_errs.iter().sum::<f64>() / batch_errs.len() as f64;
    assert!(
        mean_load <= 0.12,
        "mean load calibration error {:.1}% beyond band",
        mean_load * 100.0
    );
    assert!(
        mean_batch <= 0.20,
        "mean max-batch calibration error {:.1}% beyond band",
        mean_batch * 100.0
    );
}

#[test]
fn table2_shape_holds_across_granularities() {
    let setup = PaperSetup::opt66b();
    let rows = computed_rows(&setup);
    for w in rows.windows(2) {
        // Finer pipelines: smaller per-stage loads and computes, more
        // total hop communication, larger memory-bound batches.
        assert!(w[1].load_s < w[0].load_s, "load not shrinking");
        assert!(w[1].compute_ms < w[0].compute_ms, "compute not shrinking");
        assert!(w[1].comm_ms > w[0].comm_ms, "comm not growing");
        assert!(w[1].batch > w[0].batch, "batch not growing");
    }

    // The fast-scaling headline: loading a 32-stage slice is ~8.7x faster
    // than a 4-stage slice (interior stages; the figure the paper's
    // elasticity argument leans on). Our calibrated ratio is ~9.8x.
    let cost = &setup.cost;
    let l4 = cost
        .stage_load(
            &setup.graph,
            setup.lattice.level(4).unwrap().ranges[2],
            0.7e9,
        )
        .as_secs_f64();
    let l32 = cost
        .stage_load(
            &setup.graph,
            setup.lattice.level(32).unwrap().ranges[16],
            0.7e9,
        )
        .as_secs_f64();
    let ratio = l4 / l32;
    assert!(
        (6.5..=10.5).contains(&ratio),
        "load elasticity ratio {ratio:.1}x outside [6.5, 10.5] (paper: 8.7x)"
    );
}
