//! Fig. 1's time-series claim, promoted from compile-only figure debt
//! into an asserted integration test: the same production-like trace
//! reads as near-Poisson (CV ≈ 1) over 180 s windows but several times
//! burstier over 12 h windows. That window mismatch is the paper's
//! motivation for reconfigurable serving — no static configuration can
//! satisfy both readings. Bounded: one simulated day per trace profile.

use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{cv_in_window, windowed_cv_series, SyntheticTrace, TraceProfile};

const DAY: u64 = 86_400;

/// (median 180 s-window CV, max 12 h-window CV) over one simulated day.
fn window_cvs(profile: TraceProfile, seed: u64) -> (f64, f64) {
    let mut rng = SimRng::seed(seed);
    let trace = SyntheticTrace::generate(profile, DAY as f64, &mut rng);
    let arrivals = trace.arrivals(&mut rng);
    assert!(arrivals.len() > 1000, "trace too sparse to be meaningful");

    let short_series = windowed_cv_series(
        &arrivals,
        SimDuration::from_secs(180),
        SimTime::from_secs(DAY),
    );
    let mut short: Vec<f64> = short_series
        .iter()
        .filter(|p| p.count >= 3)
        .map(|p| p.cv)
        .collect();
    assert!(!short.is_empty(), "no populated 180s windows");
    short.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cv_180s = short[short.len() / 2];

    let cv_12h = cv_in_window(
        &arrivals,
        SimTime::from_secs(0),
        SimTime::from_secs(DAY / 2),
    )
    .max(cv_in_window(
        &arrivals,
        SimTime::from_secs(DAY / 2),
        SimTime::from_secs(DAY),
    ));
    (cv_180s, cv_12h)
}

#[test]
fn long_window_cv_dwarfs_short_window_cv_on_production_like_traces() {
    let profiles = [
        ("Alibaba-like", TraceProfile::alibaba_like(), 42),
        ("Azure-top1-like", TraceProfile::azure_top1_like(), 43),
        ("Azure-top2-like", TraceProfile::azure_top2_like(), 44),
    ];
    let mut worst = 0.0f64;
    for (name, profile, seed) in profiles {
        let (cv_180s, cv_12h) = window_cvs(profile, seed);
        let ratio = cv_12h / cv_180s;
        eprintln!("{name}: CV@180s {cv_180s:.2}, CV@12h {cv_12h:.2} ({ratio:.1}x)");
        // Locally the trace reads near-Poisson…
        assert!(
            (0.3..2.5).contains(&cv_180s),
            "{name}: short-window CV {cv_180s:.2} is not near-Poisson"
        );
        // …but every long window reads strictly burstier.
        assert!(
            ratio > 1.2,
            "{name}: 12h CV {cv_12h:.2} does not exceed 180s CV {cv_180s:.2}"
        );
        worst = worst.max(ratio);
    }
    // And at least one trace shows the multi-x mismatch the paper leads
    // with (up to 7x over 31 days; one day is enough for >2x).
    assert!(
        worst > 2.0,
        "no trace showed a material window mismatch (worst {worst:.1}x)"
    );
}
