//! The 200 QPS saturation bug, as a regression test: the evaluation
//! sizing used to clamp FlexPipe at 24 peak GPUs / 12 replicas regardless
//! of rate, so a 200 QPS arrival stream ran against a fleet sized for
//! ~120 QPS and SLO attainment collapsed to ~5%. The fix scales both
//! ceilings with the sizing rate and lets the runtime cap track observed
//! demand; this test pins the recovery (≥ 90% attainment at 200 QPS) and
//! keeps the characterized failure reproducible by re-clamping the config
//! to the old constants.

use flexpipe_bench::setup::{paper_workload, run_with_workload};
use flexpipe_bench::systems::flexpipe_config;
use flexpipe_bench::{E2eParams, PaperSetup};
use flexpipe_core::FlexPipePolicy;
use flexpipe_sim::SimTime;

const RATE: f64 = 200.0;

fn params() -> E2eParams {
    E2eParams {
        cv: 4.0,
        rate: RATE,
        horizon_secs: 45.0,
        warmup_secs: 10.0,
        seed: 42,
    }
}

/// Within-SLO completions over offered load in the measured window.
fn slo_attainment(setup: &PaperSetup, policy: FlexPipePolicy) -> f64 {
    let p = params();
    let workload = paper_workload(&p);
    let cut = SimTime::from_secs_f64(p.warmup_secs);
    let offered = workload
        .requests
        .iter()
        .filter(|r| r.arrival >= cut)
        .count();
    assert!(offered > 1000, "200 QPS must offer a real load");
    let report = run_with_workload(setup, &p, workload, Box::new(policy));
    let within = report
        .outcomes
        .outcomes()
        .iter()
        .filter(|o| o.arrival >= cut && o.within_slo())
        .count();
    within as f64 / offered as f64
}

#[test]
fn rate_adaptive_caps_recover_200_qps_slo_attainment() {
    let setup = PaperSetup::opt66b();

    let fixed = slo_attainment(&setup, FlexPipePolicy::new(flexpipe_config(RATE)));
    eprintln!(
        "200 QPS, rate-scaled caps: {:.1}% within SLO",
        fixed * 100.0
    );
    assert!(
        fixed >= 0.90,
        "200 QPS attainment regressed to {:.1}% (the saturation bug was ~5%)",
        fixed * 100.0
    );

    // Re-clamp to the pre-fix constants: the characterized failure must
    // stay reproducible, or this test is vacuously green.
    let mut clamped = flexpipe_config(RATE);
    clamped.max_replicas = 12;
    clamped.peak_gpus = 24;
    // The old runtime cap never scaled with demand either: pretend the
    // config was sized for the observed rate so the adaptive cap is inert.
    clamped.expected_rate = RATE;
    let old = slo_attainment(&setup, FlexPipePolicy::new(clamped));
    eprintln!("200 QPS, pre-fix clamps:   {:.1}% within SLO", old * 100.0);
    assert!(
        old < 0.50,
        "the re-clamped config no longer saturates ({:.1}%) — the \
         regression fixture drifted",
        old * 100.0
    );
    assert!(fixed > old * 4.0, "recovery must be decisive");
}
