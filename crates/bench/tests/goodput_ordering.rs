//! Fig. 8's headline ordering, promoted from a compile-only figure binary
//! into an asserted integration test: at high arrival burstiness (CV = 4)
//! FlexPipe's goodput beats the restart/multiplex/packing baselines and
//! stays at the top of the field.
//!
//! Paper reference (goodput at CV = 4): FlexPipe 100% / AlpaServe 100% /
//! MuxServe 71% / ServerlessLLM 88% / Tetris 13%. The simulated horizon
//! here is shorter than the paper's two hours (the separation between
//! FlexPipe and ServerlessLLM only emerges at the sweep's CV = 8
//! endpoint under a 2-minute window), so we assert the *ordering* and
//! coarse magnitudes rather than exact percentages.

use flexpipe_bench::setup::run_e2e;
use flexpipe_bench::{E2eParams, PaperSetup, SystemId};
use flexpipe_sim::SimTime;

/// Within-SLO completions over offered load, both counted by *arrival*
/// inside the measured window (the fleet's attainment definition: a
/// system cannot look good by completing only what it kept).
fn goodput(setup: &PaperSetup, p: &E2eParams, system: SystemId, offered: usize) -> f64 {
    let report = run_e2e(setup, p, system.policy(p.rate));
    let cut = SimTime::from_secs_f64(p.warmup_secs);
    let within = report
        .outcomes
        .outcomes()
        .iter()
        .filter(|o| o.arrival >= cut && o.within_slo())
        .count();
    within as f64 / offered.max(1) as f64
}

#[test]
fn fig8_flexpipe_leads_goodput_at_high_cv() {
    let setup = PaperSetup::opt66b();
    let p = E2eParams {
        cv: 8.0,
        rate: 20.0,
        horizon_secs: 120.0,
        warmup_secs: 30.0,
        seed: 42,
    };
    let cut = SimTime::from_secs_f64(p.warmup_secs);
    let offered = flexpipe_bench::setup::paper_workload(&p)
        .requests
        .iter()
        .filter(|r| r.arrival >= cut)
        .count();
    assert!(offered > 1000, "offered load too small: {offered}");

    let flex = goodput(&setup, &p, SystemId::FlexPipe, offered);
    let mux = goodput(&setup, &p, SystemId::MuxServe, offered);
    let sllm = goodput(&setup, &p, SystemId::ServerlessLlm, offered);
    let tetris = goodput(&setup, &p, SystemId::Tetris, offered);

    eprintln!(
        "goodput @ CV={}: FlexPipe {flex:.3}, MuxServe {mux:.3}, ServerlessLLM {sllm:.3}, Tetris {tetris:.3}",
        p.cv
    );

    // FlexPipe holds near-full goodput under burst...
    assert!(flex > 0.9, "FlexPipe goodput collapsed: {flex:.3}");
    // ...and leads every degrading baseline (Fig. 8's ordering).
    assert!(flex > mux, "FlexPipe {flex:.3} !> MuxServe {mux:.3}");
    assert!(flex > sllm, "FlexPipe {flex:.3} !> ServerlessLLM {sllm:.3}");
    assert!(flex > tetris, "FlexPipe {flex:.3} !> Tetris {tetris:.3}");
    // Tetris's memory-packing collapses hardest under burst, by a wide
    // margin (paper: 13% vs 100%).
    assert!(
        flex - tetris > 0.2,
        "Tetris should trail far behind: {tetris:.3} vs {flex:.3}"
    );
}
