//! Cache-invalidation coverage for the campaign cell keys: mutating any
//! semantically meaningful spec field must change the affected cells'
//! content keys, while cosmetic variation — JSON key order, TOML-lite
//! formatting, numeric spelling, spec renames, watchdog budgets — must
//! not. Precision matters in both directions: a key that misses a
//! meaningful field replays stale results; a key that includes a
//! cosmetic one defeats resume.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
use flexpipe_fleet::spec::DisruptionShape;
use flexpipe_fleet::{cell_key, parse_spec, BenchSpec, ClusterShape, PolicySpec, SweepSpec};
use flexpipe_model::ModelId;
use proptest::prelude::*;
use serde::{Serialize, Value};

/// Every cell key of a sweep, as a set (mutations may add/remove cells).
fn sweep_keys(spec: &SweepSpec) -> BTreeSet<String> {
    spec.expand()
        .iter()
        .map(|c| cell_key(&spec.cell_semantics(c)))
        .collect()
}

/// Cell-id → key map, for dirty-cell precision checks.
fn sweep_key_map(spec: &SweepSpec) -> BTreeMap<String, String> {
    spec.expand()
        .iter()
        .map(|c| (c.id(), cell_key(&spec.cell_semantics(c))))
        .collect()
}

fn bench_keys(spec: &BenchSpec) -> BTreeSet<String> {
    spec.expand()
        .iter()
        .map(|c| cell_key(&spec.cell_semantics(c)))
        .collect()
}

/// Number of distinct semantically meaningful sweep mutations below.
const SWEEP_MUTATIONS: u64 = 14;

/// Applies meaningful mutation `k` to `spec`.
fn mutate_sweep(spec: &mut SweepSpec, k: u64) -> &'static str {
    match k {
        0 => {
            spec.seed += 1;
            "seed"
        }
        1 => {
            spec.horizon_secs += 1.0;
            "horizon_secs"
        }
        2 => {
            spec.warmup_secs += 1.0;
            "warmup_secs"
        }
        3 => {
            spec.slo_secs += 0.5;
            "slo_secs"
        }
        4 => {
            spec.slo_per_output_token_ms += 10.0;
            "slo_per_output_token_ms"
        }
        5 => {
            spec.background = flexpipe_fleet::BackgroundShape::C1Like;
            "background"
        }
        6 => {
            spec.lengths.prompt_median += 1.0;
            "lengths.prompt_median"
        }
        7 => {
            spec.lengths.output_mean += 1.0;
            "lengths.output_mean"
        }
        8 => {
            let last = spec.cvs.len() - 1;
            spec.cvs[last] += 0.25;
            "cvs"
        }
        9 => {
            let last = spec.rates.len() - 1;
            spec.rates[last] += 1.0;
            "rates"
        }
        10 => {
            spec.clusters = vec![ClusterShape::AlibabaC1];
            "clusters"
        }
        11 => {
            spec.policies[0] = PolicySpec::Static {
                stages: 4,
                replicas: 2,
            };
            "policies"
        }
        12 => {
            spec.disruptions = vec![DisruptionShape::Script(DisruptionScript {
                name: "one-preempt".into(),
                events: vec![DisruptionEvent {
                    at_secs: 5.0,
                    kind: Disruption::HotServerPreempt {
                        rank: 0,
                        grace_secs: 2.0,
                    },
                }],
            })];
            "disruptions"
        }
        13 => {
            spec.model = ModelId::Llama2_7B;
            "model"
        }
        _ => unreachable!("mutation index out of range"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(28))]

    /// Any semantically meaningful spec edit moves at least one cell key
    /// (usually every key of the touched coordinate), under every
    /// mutation in the catalogue.
    #[test]
    fn meaningful_mutations_change_cell_keys(k in 0u64..SWEEP_MUTATIONS) {
        let base = SweepSpec::template();
        let base_keys = sweep_keys(&base);
        let mut mutated = base.clone();
        let field = mutate_sweep(&mut mutated, k);
        let mutated_keys = sweep_keys(&mutated);
        prop_assert!(
            base_keys != mutated_keys,
            "mutating `{}` left every cell key unchanged", field
        );
    }
}

#[test]
fn cosmetic_fields_leave_every_key_unchanged() {
    let base = SweepSpec::template();
    let base_keys = sweep_keys(&base);

    let mut renamed = base.clone();
    renamed.name = "renamed-but-identical".into();
    assert_eq!(
        sweep_keys(&renamed),
        base_keys,
        "spec rename must not re-key"
    );

    // The step budget is a watchdog, not a parameter: raising it must keep
    // the cache warm (that exclusion is the resume-after-truncation
    // mechanism — incomplete cells are never cached in the first place).
    let mut budget = base.clone();
    budget.max_events *= 2;
    assert_eq!(
        sweep_keys(&budget),
        base_keys,
        "watchdog budget must not re-key"
    );
}

#[test]
fn json_key_order_and_toml_formatting_do_not_re_key() {
    let base = SweepSpec::template();
    let base_keys = sweep_keys(&base);

    // Reverse every map's key order recursively (sequence order is
    // semantic and stays). The reparsed spec must key identically.
    fn reverse_maps(v: &Value) -> Value {
        match v {
            Value::Map(m) => Value::Map(
                m.iter()
                    .rev()
                    .map(|(k, x)| (k.clone(), reverse_maps(x)))
                    .collect(),
            ),
            Value::Seq(xs) => Value::Seq(xs.iter().map(reverse_maps).collect()),
            other => other.clone(),
        }
    }
    let reordered = serde_json::to_string(&reverse_maps(&base.to_value())).unwrap();
    let reparsed: SweepSpec = serde_json::from_str(&reordered).unwrap();
    assert_eq!(reparsed, base);
    assert_eq!(
        sweep_keys(&reparsed),
        base_keys,
        "JSON key order must not re-key"
    );

    // The TOML-lite spelling of the same sweep (different formatting,
    // comments, integral-float spelling like `seed = 42`) keys identically.
    let toml = r#"
        # same sweep, different surface syntax
        name = "cv-rate-sensitivity"
        model = "Opt66B"
        seed = 42
        horizon_secs = 120.0
        warmup_secs = 30.0
        slo_secs = 2.0
        slo_per_output_token_ms = 100.0
        background = "TestbedLike"
        max_events = 200000000
        cvs = [0.5, 2.0, 4.0, 8.0]
        rates = [10.0, 20.0]
        clusters = ["PaperTestbed"]
        policies = [{ Paper = "FlexPipe" }, { Paper = "AlpaServe" }, { Paper = "ServerlessLlm" }]

        [lengths]
        prompt_median = 1024.0
        prompt_sigma = 0.9
        prompt_range = [16, 8192]
        output_mean = 64.0
        output_range = [1, 1024]
    "#;
    let from_toml = parse_spec("sweep.toml", toml).unwrap();
    assert_eq!(from_toml, base);
    assert_eq!(
        sweep_keys(&from_toml),
        base_keys,
        "TOML formatting must not re-key"
    );
}

#[test]
fn integral_number_spelling_does_not_re_key() {
    // `120` and `120.0` parse to the same f64 field; keys hash the typed
    // struct, so the spelling cannot leak in.
    let base = SweepSpec::template();
    let json = serde_json::to_string(&base.to_value()).unwrap();
    assert!(json.contains("\"horizon_secs\":120.0"), "{json}");
    let respelled = json.replace("\"horizon_secs\":120.0", "\"horizon_secs\":120");
    let reparsed: SweepSpec = serde_json::from_str(&respelled).unwrap();
    assert_eq!(sweep_keys(&reparsed), sweep_keys(&base));
}

#[test]
fn editing_one_axis_value_dirties_only_that_coordinate() {
    let base = SweepSpec::template();
    let before = sweep_key_map(&base);

    // Append a rate: every pre-existing cell keeps its key; only the new
    // coordinate's cells are new. This is the "edited specs only
    // recompute dirty cells" contract at key granularity.
    let mut appended = base.clone();
    appended.rates.push(40.0);
    let after = sweep_key_map(&appended);
    for (id, key) in &before {
        assert_eq!(
            after.get(id),
            Some(key),
            "cell {id} was dirtied by an append"
        );
    }
    assert_eq!(
        after.len(),
        before.len() + base.cvs.len() * base.policies.len()
    );

    // Edit one CV in place: cells of other CVs keep their keys, cells of
    // the edited CV all move.
    let mut edited = base.clone();
    edited.cvs[0] = 1.0;
    let after = sweep_key_map(&edited);
    for (id, key) in &before {
        if id.starts_with("cv0p5-") {
            assert!(
                !after.values().any(|k| k == key),
                "stale key survived for {id}"
            );
        } else {
            assert_eq!(after.get(id), Some(key), "undirtied cell {id} moved");
        }
    }
}

#[test]
fn policies_do_not_share_keys_even_with_shared_seeds() {
    // Policies in one cell group share traffic seeds by design, but their
    // metrics differ — their cache entries must too.
    let base = SweepSpec::template();
    let cells = base.expand();
    assert_eq!(cells[0].seed, cells[1].seed);
    assert_ne!(
        cell_key(&base.cell_semantics(&cells[0])),
        cell_key(&base.cell_semantics(&cells[1]))
    );
}

#[test]
fn bench_keys_track_tunables_and_modes() {
    let base = BenchSpec::template();
    let base_keys = bench_keys(&base);

    // Tunable edits re-key.
    let mut m = base.clone();
    m.ubatch_sizes[0] += 1;
    assert_ne!(bench_keys(&m), base_keys);
    let mut m = base.clone();
    m.prefill_token_caps[0] += 1;
    assert_ne!(bench_keys(&m), base_keys);
    let mut m = base.clone();
    m.cv += 1.0;
    assert_ne!(bench_keys(&m), base_keys);
    let mut m = base.clone();
    m.seed += 1;
    assert_ne!(bench_keys(&m), base_keys);

    // Bench cells keep the admission mode in their identity (the A/B rows
    // are distinct artifact rows), so the two modes never alias.
    let cells = base.expand();
    let mut two_modes = base.clone();
    two_modes.admission = vec![
        flexpipe_serving::AdmissionMode::Indexed,
        flexpipe_serving::AdmissionMode::NaiveScan,
    ];
    let ab = two_modes.expand();
    assert_eq!(ab.len(), cells.len() * 2);
    assert_ne!(
        cell_key(&two_modes.cell_semantics(&ab[0])),
        cell_key(&two_modes.cell_semantics(&ab[1]))
    );

    // Cosmetics stay cosmetic.
    let mut renamed = base.clone();
    renamed.name = "other".into();
    assert_eq!(bench_keys(&renamed), base_keys);
    let mut budget = base.clone();
    budget.max_events *= 2;
    assert_eq!(bench_keys(&budget), base_keys);

    // Sweep and bench cells can never collide: the semantics are tagged.
    let sweep = SweepSpec::template();
    let sweep_all = sweep_keys(&sweep);
    assert!(base_keys.is_disjoint(&sweep_all));
}
