//! End-to-end exercise of the `flexpipe-fleet` binary: init → run →
//! compare → gate, including the non-zero exit on an injected regression.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexpipe-fleet"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexpipe-fleet-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A fast spec for CLI runs (smaller than the template's 24 cells).
fn small_spec_json() -> String {
    r#"{
  "name": "cli-e2e",
  "model": "Llama2_7B",
  "seed": 11,
  "horizon_secs": 12.0,
  "warmup_secs": 3.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {
    "prompt_median": 128.0,
    "prompt_sigma": 0.0,
    "prompt_range": [128, 128],
    "output_mean": 8.0,
    "output_range": [8, 8]
  },
  "max_events": 20000000,
  "cvs": [1.0, 4.0],
  "rates": [3.0],
  "clusters": [{"Custom": {"nodes": 6, "total_gpus": 8, "servers_per_rack": 3}}],
  "policies": [{"Paper": "FlexPipe"}, {"Static": {"stages": 2, "replicas": 1}}]
}
"#
    .to_string()
}

#[test]
fn init_run_compare_gate_pipeline() {
    let dir = tmp_dir("pipeline");
    let spec_path = dir.join("sweep.json");
    let report_path = dir.join("report.json");

    // init writes a parseable template.
    let out = bin()
        .arg("init")
        .arg(dir.join("template.json"))
        .output()
        .expect("run init");
    assert!(out.status.success(), "init failed: {out:?}");
    let template = std::fs::read_to_string(dir.join("template.json")).unwrap();
    assert!(template.contains("\"cvs\""));

    // run executes a small sweep and writes the artifact.
    std::fs::write(&spec_path, small_spec_json()).unwrap();
    let out = bin()
        .arg("run")
        .arg(&spec_path)
        .arg("--out")
        .arg(&report_path)
        .arg("--quiet")
        .output()
        .expect("run sweep");
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("per-policy summary"),
        "missing table: {stdout}"
    );
    assert!(stdout.contains("FlexPipe"));

    // compare renders the artifact.
    let out = bin().arg("compare").arg(&report_path).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("per-cell results"));

    // gate against itself passes with exit 0.
    let out = bin()
        .arg("gate")
        .arg(&report_path)
        .arg("--baseline")
        .arg(&report_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "self-gate failed");
    assert!(String::from_utf8_lossy(&out.stdout).contains("GATE PASS"));

    // Injecting a regression into the candidate makes gate exit non-zero.
    let degraded_path = dir.join("degraded.json");
    let report = std::fs::read_to_string(&report_path).unwrap();
    let mut parsed = flexpipe_fleet::FleetReport::from_json(&report).unwrap();
    for cell in &mut parsed.cells {
        cell.metrics.slo_attainment *= 0.5;
        cell.metrics.goodput_per_sec *= 0.5;
    }
    std::fs::write(&degraded_path, parsed.to_json()).unwrap();
    let out = bin()
        .arg("gate")
        .arg(&degraded_path)
        .arg("--baseline")
        .arg(&report_path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "gate must exit 2 on regression: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("GATE FAIL"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The gate covers recovery metrics: a candidate whose mean
/// time-to-recover worsened against the baseline exits 2.
#[test]
fn gate_catches_recovery_regressions_from_the_cli() {
    let dir = tmp_dir("recovery-gate");
    let spec_path = dir.join("sweep.json");
    let report_path = dir.join("report.json");
    std::fs::write(&spec_path, small_spec_json()).unwrap();
    let out = bin()
        .arg("run")
        .arg(&spec_path)
        .arg("--out")
        .arg(&report_path)
        .arg("--quiet")
        .output()
        .expect("run sweep");
    assert!(out.status.success());

    // Stamp disruption outcomes onto the report to form a chaos baseline,
    // then worsen the candidate's recovery metrics.
    let report = std::fs::read_to_string(&report_path).unwrap();
    let mut baseline = flexpipe_fleet::FleetReport::from_json(&report).unwrap();
    for cell in &mut baseline.cells {
        cell.metrics.revocations = 2;
        cell.metrics.mean_ttr_secs = 8.0;
        cell.metrics.requests_replayed = 3;
    }
    let mut candidate = baseline.clone();
    for cell in &mut candidate.cells {
        cell.metrics.mean_ttr_secs = 20.0;
        cell.metrics.requests_replayed = 9;
    }
    let baseline_path = dir.join("chaos-baseline.json");
    let candidate_path = dir.join("chaos-candidate.json");
    std::fs::write(&baseline_path, baseline.to_json()).unwrap();
    std::fs::write(&candidate_path, candidate.to_json()).unwrap();

    let out = bin()
        .arg("gate")
        .arg(&candidate_path)
        .arg("--baseline")
        .arg(&baseline_path)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "worsened recovery metrics must exit 2: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mean_ttr_secs"), "{stdout}");
    assert!(stdout.contains("requests_replayed"), "{stdout}");

    // The unmodified chaos baseline still self-gates clean.
    let out = bin()
        .arg("gate")
        .arg(&baseline_path)
        .arg("--baseline")
        .arg(&baseline_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "chaos self-gate must pass");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_gate_is_a_one_shot_ci_mode() {
    let dir = tmp_dir("run-gate");
    let spec_path = dir.join("sweep.json");
    let baseline_path = dir.join("baseline.json");
    std::fs::write(&spec_path, small_spec_json()).unwrap();

    // Produce the baseline artifact.
    let out = bin()
        .arg("run")
        .arg(&spec_path)
        .arg("--out")
        .arg(&baseline_path)
        .arg("--quiet")
        .output()
        .expect("baseline run");
    assert!(out.status.success());

    // run --gate against the (identical) baseline passes with exit 0.
    let out = bin()
        .arg("run")
        .arg(&spec_path)
        .arg("--out")
        .arg(dir.join("fresh.json"))
        .arg("--quiet")
        .arg("--gate")
        .arg(&baseline_path)
        .output()
        .expect("run --gate");
    assert!(
        out.status.success(),
        "run --gate failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("GATE PASS"));

    // A doctored (better-than-achievable) baseline makes the same run
    // exit 2, matching the `gate` subcommand's contract.
    let report = std::fs::read_to_string(&baseline_path).unwrap();
    let mut parsed = flexpipe_fleet::FleetReport::from_json(&report).unwrap();
    for cell in &mut parsed.cells {
        cell.metrics.goodput_per_sec *= 10.0;
    }
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, parsed.to_json()).unwrap();
    let out = bin()
        .arg("run")
        .arg(&spec_path)
        .arg("--out")
        .arg(dir.join("fresh2.json"))
        .arg("--quiet")
        .arg("--gate")
        .arg(&doctored_path)
        .output()
        .expect("run --gate vs doctored");
    assert_eq!(
        out.status.code(),
        Some(2),
        "run --gate must exit 2 on regression: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rerunning_the_cli_reproduces_the_artifact_byte_identically() {
    let dir = tmp_dir("rerun");
    let spec_path = dir.join("sweep.json");
    std::fs::write(&spec_path, small_spec_json()).unwrap();

    let mut artifacts = Vec::new();
    for (i, threads) in ["4", "1"].iter().enumerate() {
        let report_path = dir.join(format!("report-{i}.json"));
        let out = bin()
            .arg("run")
            .arg(&spec_path)
            .arg("--out")
            .arg(&report_path)
            .arg("--threads")
            .arg(threads)
            .arg("--quiet")
            .output()
            .expect("run sweep");
        assert!(
            out.status.success(),
            "run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        artifacts.push(std::fs::read(&report_path).unwrap());
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "CLI reruns must reproduce the report byte-for-byte"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_one() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin()
        .arg("run")
        .arg("/nonexistent/spec.json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin().arg("gate").arg("x.json").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}
