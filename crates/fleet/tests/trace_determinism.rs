//! The observability contract, pinned: tracing is *semantics-neutral*
//! (reports byte-identical with the recorder off, ring or full, in both
//! admission modes) and traces themselves are *deterministic artifacts*
//! (byte-identical JSONL no matter how many threads record concurrently),
//! including under proptest-randomized disruption churn. This is what
//! makes `fleet trace diff` a meaningful equivalence check.

use std::sync::OnceLock;

use flexpipe_bench::{PaperSetup, SystemId};
use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
use flexpipe_fleet::{
    parse_spec, record_cell_trace, run_cell_in_mode, run_cell_observed, run_sweep, BackgroundShape,
    CellResult, ClusterShape, DisruptionShape, FleetReport, PolicySpec, RunOptions, SweepSpec,
};
use flexpipe_model::ModelId;
use flexpipe_obs::{first_divergence, parse_jsonl, TraceSummary};
use flexpipe_serving::{AdmissionMode, TraceMode};
use flexpipe_workload::LengthProfile;
use proptest::prelude::*;

fn llama_setup() -> &'static PaperSetup {
    static SETUP: OnceLock<PaperSetup> = OnceLock::new();
    SETUP.get_or_init(|| PaperSetup::for_model(ModelId::Llama2_7B))
}

/// A small churny sweep: FlexPipe + a static baseline under a preemption
/// → failure → capacity-return script, so traces carry the full request,
/// instance and disruption-episode vocabularies.
fn churn_spec(cv: f64, rate: f64, at_secs: f64, grace_secs: f64, fail_gpu: u32) -> SweepSpec {
    SweepSpec {
        name: "trace-determinism".into(),
        model: ModelId::Llama2_7B,
        seed: 31,
        horizon_secs: 12.0,
        warmup_secs: 3.0,
        slo_secs: 2.0,
        slo_per_output_token_ms: 100.0,
        background: BackgroundShape::Idle,
        lengths: LengthProfile::fixed(96, 6),
        max_events: 20_000_000,
        cvs: vec![cv],
        rates: vec![rate],
        clusters: vec![ClusterShape::Custom {
            nodes: 8,
            total_gpus: 12,
            servers_per_rack: 4,
        }],
        policies: vec![
            PolicySpec::Paper(SystemId::FlexPipe),
            PolicySpec::Static {
                stages: 2,
                replicas: 1,
            },
        ],
        disruptions: vec![DisruptionShape::Script(DisruptionScript {
            name: "trace-churn".into(),
            events: vec![
                DisruptionEvent {
                    at_secs,
                    kind: Disruption::HotServerPreempt {
                        rank: 0,
                        grace_secs,
                    },
                },
                DisruptionEvent {
                    at_secs: at_secs + 1.0,
                    kind: Disruption::GpuFail { gpu: fail_gpu },
                },
                DisruptionEvent {
                    at_secs: at_secs + 4.0,
                    kind: Disruption::CapacityReturn {
                        gpus: vec![fail_gpu],
                        servers: Vec::new(),
                    },
                },
            ],
        })],
        replicas: 1,
    }
}

fn default_churn_spec() -> SweepSpec {
    churn_spec(2.0, 5.0, 5.0, 1.5, 3)
}

#[test]
fn trace_modes_never_perturb_metrics_in_either_engine_mode() {
    let spec = default_churn_spec();
    let setup = llama_setup();
    for cell in spec.expand() {
        for admission in [AdmissionMode::Indexed, AdmissionMode::NaiveScan] {
            let plain = run_cell_in_mode(&spec, &cell, setup, admission);
            for mode in [TraceMode::Off, TraceMode::Ring(64), TraceMode::Full] {
                let (metrics, observed) =
                    run_cell_observed(&spec, &cell, setup, admission, mode, false);
                assert_eq!(
                    plain,
                    metrics,
                    "trace mode {mode} perturbed cell {} under {admission:?}",
                    cell.id()
                );
                match mode {
                    TraceMode::Off => assert!(observed.trace.is_empty()),
                    TraceMode::Ring(cap) => {
                        assert!(observed.trace.len() <= cap);
                        assert_eq!(
                            observed.trace.len() as u64 + observed.trace.evicted(),
                            observed.trace.total_seen(),
                            "ring accounting broke"
                        );
                        // The registry counts everything, evicted or not.
                        assert_eq!(
                            observed.trace.registry().total(),
                            observed.trace.total_seen()
                        );
                    }
                    TraceMode::Full => {
                        assert!(!observed.trace.is_empty(), "full mode recorded nothing");
                        assert_eq!(observed.trace.evicted(), 0);
                    }
                }
            }
        }
    }
}

#[test]
fn traces_are_byte_identical_across_concurrent_recorders() {
    let spec = default_churn_spec();
    let cell = spec.expand().remove(0);
    let reference = record_cell_trace(&spec, &cell, AdmissionMode::Indexed, TraceMode::Full)
        .1
        .trace
        .to_jsonl();
    assert!(!reference.is_empty());

    // Four threads recording the same cell simultaneously — each engine
    // run is single-threaded and deterministic, so concurrency (and by
    // extension the fleet runner's thread count) cannot perturb a trace.
    let traces: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    record_cell_trace(&spec, &cell, AdmissionMode::Indexed, TraceMode::Full)
                        .1
                        .trace
                        .to_jsonl()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for t in &traces {
        assert!(
            first_divergence(&reference, t).is_none(),
            "concurrent recording diverged"
        );
    }

    // The JSONL round-trips and carries the expected vocabularies:
    // request lifecycle, instance lifecycle, and the disruption episode.
    let records = parse_jsonl(&reference).expect("trace parses");
    let summary = TraceSummary::from_records(&records);
    assert_eq!(summary.records, records.len());
    for kind in [
        "request_arrival",
        "request_admit",
        "request_complete",
        "instance_spawn",
        "instance_ready",
        "revocation",
        "control_tick",
    ] {
        assert!(
            summary.registry.count(kind) > 0,
            "trace is missing `{kind}` events"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized churn: whatever the arrival shape and disruption
    /// interleaving, full tracing leaves the metrics untouched in both
    /// admission modes, and two recordings of the same cell are
    /// byte-identical.
    #[test]
    fn random_churn_traces_are_neutral_and_stable(
        cv in 0.5f64..6.0,
        rate in 2.0f64..8.0,
        at_secs in 3.0f64..8.0,
        grace_secs in 0.0f64..3.0,
    ) {
        let fail_gpu = (at_secs * 1e3) as u32 % 12;
        let spec = churn_spec(cv, rate, at_secs, grace_secs, fail_gpu);
        prop_assert!(spec.validate().is_ok());
        let setup = llama_setup();
        for cell in spec.expand() {
            for admission in [AdmissionMode::Indexed, AdmissionMode::NaiveScan] {
                let plain = run_cell_in_mode(&spec, &cell, setup, admission);
                let (traced, first) =
                    run_cell_observed(&spec, &cell, setup, admission, TraceMode::Full, false);
                prop_assert_eq!(
                    &plain, &traced,
                    "tracing perturbed cell {} under {:?}", cell.id(), admission
                );
                let (_, second) =
                    run_cell_observed(&spec, &cell, setup, admission, TraceMode::Full, false);
                prop_assert!(
                    first_divergence(&first.trace.to_jsonl(), &second.trace.to_jsonl()).is_none(),
                    "re-recording cell {} diverged", cell.id()
                );
            }
        }
    }
}

/// The committed sweep specs, loaded from the repo's `specs/` directory.
fn committed_spec(file: &str) -> SweepSpec {
    let path = format!("{}/../../specs/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("committed spec readable");
    parse_spec(&path, &text).expect("committed spec parses")
}

/// Acceptance sweep (heavy — run with `cargo test -- --ignored`): the
/// committed sweep specs produce byte-identical reports whether cells run
/// untraced on N threads or traced (off/ring/full) sequentially.
#[test]
#[ignore = "acceptance: full committed-spec grids under three trace modes"]
fn committed_spec_reports_are_byte_identical_in_every_trace_mode() {
    for file in ["cv-rate-sensitivity.json", "disruption-recovery.json"] {
        let spec = committed_spec(file);
        let setup = PaperSetup::for_model(spec.model);
        let baseline = run_sweep(
            &spec,
            &RunOptions {
                threads: 4,
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap()
        .to_json();
        for mode in [TraceMode::Off, TraceMode::Ring(512), TraceMode::Full] {
            let results: Vec<CellResult> = spec
                .expand()
                .into_iter()
                .map(|cell| {
                    let (metrics, _) = run_cell_observed(
                        &spec,
                        &cell,
                        &setup,
                        AdmissionMode::default(),
                        mode,
                        false,
                    );
                    CellResult { cell, metrics }
                })
                .collect();
            let traced = FleetReport::assemble(spec.clone(), results).to_json();
            assert_eq!(baseline, traced, "trace mode {mode} perturbed {file}");
        }
    }
}
