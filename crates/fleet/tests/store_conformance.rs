//! The `CacheStore` conformance suite: one set of behavioral contracts,
//! executed verbatim against every backend (`localdisk`, `log`). Any
//! future backend must pass this suite unchanged — the cache layer,
//! worker protocol and `assemble` are written against exactly these
//! semantics and nothing backend-specific.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use flexpipe_fleet::{open_store, CacheStore, ClaimOutcome, StoreKind};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexpipe-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `f` once per backend, each against a fresh directory.
fn conformance(tag: &str, f: impl Fn(&dyn CacheStore)) {
    for kind in [StoreKind::LocalDisk, StoreKind::Log] {
        let dir = tmp(&format!("{tag}-{}", kind.name()));
        let store = open_store(&dir, Some(kind)).unwrap();
        assert_eq!(store.kind(), kind.name(), "backend identifies itself");
        assert_eq!(store.root(), dir.as_path());
        f(store.as_ref());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn puts_are_last_writer_wins_and_gets_are_exact() {
    conformance("putget", |s| {
        assert_eq!(s.get("aa11").unwrap(), None);
        s.put("aa11", "first").unwrap();
        s.put("bb22", "other").unwrap();
        assert_eq!(s.get("aa11").unwrap().as_deref(), Some("first"));
        assert_eq!(s.get("bb22").unwrap().as_deref(), Some("other"));
        // Same-key re-put replaces atomically: last writer wins.
        s.put("aa11", "second").unwrap();
        assert_eq!(s.get("aa11").unwrap().as_deref(), Some("second"));
        // Keys are exact strings, no prefix aliasing.
        assert_eq!(s.get("aa1").unwrap(), None);
        assert_eq!(s.get("aa111").unwrap(), None);
    });
}

#[test]
fn payloads_round_trip_arbitrary_json_content() {
    conformance("payload", |s| {
        // Entry payloads are JSON documents with quotes, braces, escapes
        // and newlines — they must come back byte-exact.
        let payload = "{\n  \"k\": \"va\\\"lue\",\n  \"n\": [1, 2.5, -3]\n}\n";
        s.put("cc33", payload).unwrap();
        assert_eq!(s.get("cc33").unwrap().as_deref(), Some(payload));
    });
}

#[test]
fn list_enumerates_entries_with_payloads_but_never_claims() {
    conformance("list", |s| {
        assert!(s.list().unwrap().is_empty());
        s.put("aa11", "one").unwrap();
        s.put("bb22", "two").unwrap();
        s.try_claim("cc33", "w1").unwrap();
        let mut objs = s.list().unwrap();
        objs.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(objs.len(), 2, "claims must not appear in list()");
        assert_eq!(objs[0].key, "aa11");
        assert_eq!(objs[0].payload.as_deref(), Some("one"));
        assert!(objs[0].bytes > 0);
        assert_eq!(objs[1].key, "bb22");
    });
}

#[test]
fn remove_reports_whether_anything_was_there() {
    conformance("remove", |s| {
        s.put("aa11", "x").unwrap();
        assert!(s.remove("aa11").unwrap());
        assert_eq!(s.get("aa11").unwrap(), None);
        assert!(!s.remove("aa11").unwrap(), "second remove is a no-op");
        assert!(!s.remove("zz99").unwrap());
    });
}

#[test]
fn claims_are_exclusive_reentrant_and_owner_released() {
    conformance("claims", |s| {
        // First claim wins.
        assert_eq!(s.try_claim("aa11", "w1").unwrap(), ClaimOutcome::Acquired);
        // A peer is told who holds it.
        match s.try_claim("aa11", "w2").unwrap() {
            ClaimOutcome::Held { worker, .. } => assert_eq!(worker, "w1"),
            other => panic!("expected Held, got {other:?}"),
        }
        // The holder itself re-acquires (restart after a crash on the
        // same machine must not deadlock on its own stale claim).
        assert_eq!(s.try_claim("aa11", "w1").unwrap(), ClaimOutcome::Acquired);
        // Only the owner can release.
        assert!(!s.release_claim("aa11", "w2").unwrap());
        assert!(s.release_claim("aa11", "w1").unwrap());
        assert!(!s.release_claim("aa11", "w1").unwrap(), "already released");
        // Released means claimable by anyone.
        assert_eq!(s.try_claim("aa11", "w2").unwrap(), ClaimOutcome::Acquired);
    });
}

#[test]
fn claim_listing_refresh_and_reaping() {
    conformance("reap", |s| {
        s.try_claim("aa11", "w1").unwrap();
        s.try_claim("bb22", "w2").unwrap();
        let mut claims = s.list_claims().unwrap();
        claims.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(claims.len(), 2);
        assert_eq!(
            (claims[0].key.as_str(), claims[0].worker.as_str()),
            ("aa11", "w1")
        );
        assert_eq!(
            (claims[1].key.as_str(), claims[1].worker.as_str()),
            ("bb22", "w2")
        );
        assert!(claims[0].age < Duration::from_secs(30), "fresh claim");
        // Only the holder can heartbeat.
        assert!(s.refresh_claim("aa11", "w1").unwrap());
        assert!(!s.refresh_claim("aa11", "w2").unwrap());
        assert!(!s.refresh_claim("zz99", "w1").unwrap());
        // A generous TTL reaps nothing; TTL zero reaps everything.
        assert_eq!(s.reap_stale_claims(Duration::from_secs(3600)).unwrap(), 0);
        assert_eq!(s.list_claims().unwrap().len(), 2);
        assert_eq!(s.reap_stale_claims(Duration::ZERO).unwrap(), 2);
        assert!(s.list_claims().unwrap().is_empty());
    });
}

#[test]
fn claim_races_have_exactly_one_winner() {
    conformance("race", |s| {
        // N threads race one key; the claim protocol's whole job is that
        // exactly one sees Acquired. (Claims are an optimization — a
        // duplicated compute would still be correct — but the protocol
        // itself must be atomic or it optimizes nothing.)
        let workers = 8;
        let store: Arc<dyn CacheStore> = open_store(s.root(), None).unwrap();
        let acquired: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        matches!(
                            store.try_claim("dd44", &format!("w{w}")).unwrap(),
                            ClaimOutcome::Acquired
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            acquired.iter().filter(|&&a| a).count(),
            1,
            "exactly one racer must win: {acquired:?}"
        );
        assert_eq!(s.list_claims().unwrap().len(), 1);
    });
}

#[test]
fn gc_evicts_oldest_first_and_never_touches_live_claims() {
    conformance("gc", |s| {
        for (i, key) in ["aa01", "bb02", "cc03"].iter().enumerate() {
            s.put(key, &format!("payload-{i}")).unwrap();
        }
        s.try_claim("dd44", "w1").unwrap();
        // Generous bounds: nothing happens.
        let out = s
            .gc(Some(Duration::from_secs(3600)), Some(u64::MAX))
            .unwrap();
        assert_eq!(out.removed, 0);
        assert_eq!(out.kept, 3);
        // Size cap 0 with no age bound: every entry goes, the claim and
        // the claim's exclusivity survive.
        let out = s.gc(None, Some(0)).unwrap();
        assert_eq!(out.removed, 3);
        assert!(out.bytes_freed > 0);
        assert!(s.list().unwrap().is_empty());
        assert_eq!(
            s.list_claims().unwrap().len(),
            1,
            "gc must never reap claims"
        );
        match s.try_claim("dd44", "w2").unwrap() {
            ClaimOutcome::Held { worker, .. } => assert_eq!(worker, "w1"),
            other => panic!("claim lost its exclusivity across gc: {other:?}"),
        }
    });
}

#[test]
fn reopening_a_store_sees_everything_and_autodetects_the_backend() {
    for kind in [StoreKind::LocalDisk, StoreKind::Log] {
        let dir = tmp(&format!("reopen-{}", kind.name()));
        {
            let store = open_store(&dir, Some(kind)).unwrap();
            store.put("aa11", "persisted").unwrap();
            store.try_claim("bb22", "w1").unwrap();
        }
        // Reopen with no preference: autodetection must find the same
        // backend and all its state (this is what lets N worker
        // processes share one directory without agreeing on flags).
        let store = open_store(&dir, None).unwrap();
        assert_eq!(store.kind(), kind.name());
        assert_eq!(store.get("aa11").unwrap().as_deref(), Some("persisted"));
        assert_eq!(store.list_claims().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn stale_claims_can_be_taken_over_after_reaping() {
    conformance("takeover", |s| {
        // w1 claims and "dies" (no heartbeat). A peer reaps by TTL and
        // takes the cell over — the liveness half of the protocol.
        s.try_claim("aa11", "w1").unwrap();
        match s.try_claim("aa11", "w2").unwrap() {
            ClaimOutcome::Held { worker, .. } => assert_eq!(worker, "w1"),
            other => panic!("expected Held, got {other:?}"),
        }
        assert_eq!(s.reap_stale_claims(Duration::ZERO).unwrap(), 1);
        assert_eq!(s.try_claim("aa11", "w2").unwrap(), ClaimOutcome::Acquired);
    });
}

#[test]
fn log_backend_compacts_on_gc_without_losing_live_state() {
    // Log-specific shape check (the seam the second backend proves): gc
    // rewrites the append log, dropping dead put/claim records while
    // keeping live entries and claims readable.
    let dir = tmp("compact");
    let store = open_store(&dir, Some(StoreKind::Log)).unwrap();
    for i in 0..5 {
        store.put("aa11", &format!("version-{i}")).unwrap();
    }
    store.put("bb22", "keep").unwrap();
    store.try_claim("cc33", "w1").unwrap();
    store.try_claim("dd44", "w2").unwrap();
    store.release_claim("dd44", "w2").unwrap();
    let before = std::fs::metadata(dir.join("cells.log")).unwrap().len();
    // A no-op-bounds gc still compacts the five dead aa11 versions and
    // the released claim out of the log.
    let out = store.gc(None, None).unwrap();
    assert_eq!(out.removed, 0);
    let after = std::fs::metadata(dir.join("cells.log")).unwrap().len();
    assert!(
        after < before,
        "compaction should shrink the log: {before} -> {after}"
    );
    assert_eq!(store.get("aa11").unwrap().as_deref(), Some("version-4"));
    assert_eq!(store.get("bb22").unwrap().as_deref(), Some("keep"));
    let claims = store.list_claims().unwrap();
    assert_eq!(claims.len(), 1);
    assert_eq!(claims[0].key, "cc33");
    let _ = std::fs::remove_dir_all(&dir);
}
