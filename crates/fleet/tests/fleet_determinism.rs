//! The fleet's reproducibility contract: the same spec produces a
//! byte-identical JSON report on every run, at any thread count — and the
//! regression gate catches injected degradations.

use flexpipe_bench::SystemId;
use flexpipe_fleet::{
    gate::gate, run_sweep, BackgroundShape, ClusterShape, GateConfig, PolicySpec, RunOptions,
    SweepSpec,
};
use flexpipe_model::ModelId;
use flexpipe_workload::LengthProfile;

/// A small but real grid: 2 policies × 4 workload cells = 8 cells on a
/// fragmented 12-GPU cluster with background churn.
fn grid_spec() -> SweepSpec {
    SweepSpec {
        name: "determinism-grid".into(),
        model: ModelId::Llama2_7B,
        seed: 20_260_731,
        horizon_secs: 20.0,
        warmup_secs: 5.0,
        slo_secs: 2.0,
        slo_per_output_token_ms: 100.0,
        background: BackgroundShape::TestbedLike,
        lengths: LengthProfile::fixed(128, 8),
        max_events: 20_000_000,
        cvs: vec![1.0, 4.0],
        rates: vec![3.0, 6.0],
        clusters: vec![ClusterShape::Custom {
            nodes: 8,
            total_gpus: 12,
            servers_per_rack: 4,
        }],
        policies: vec![
            PolicySpec::Paper(SystemId::FlexPipe),
            PolicySpec::Static {
                stages: 2,
                replicas: 1,
            },
        ],
        disruptions: vec![flexpipe_fleet::DisruptionShape::None],
        replicas: 1,
    }
}

#[test]
fn rerun_is_byte_identical_across_thread_counts() {
    let spec = grid_spec();
    let quiet = |threads| RunOptions {
        threads,
        quiet: true,
        ..Default::default()
    };
    let first = run_sweep(&spec, &quiet(4)).unwrap().to_json();
    let second = run_sweep(&spec, &quiet(4)).unwrap().to_json();
    assert_eq!(
        first, second,
        "two runs of the same spec must serialize identically"
    );
    // Parallelism must not leak into results: serial run, same bytes.
    let serial = run_sweep(&spec, &quiet(1)).unwrap().to_json();
    assert_eq!(first, serial, "thread count changed the artifact");
}

#[test]
fn grid_actually_serves_and_covers_both_policies() {
    let report = run_sweep(
        &grid_spec(),
        &RunOptions {
            threads: 4,
            quiet: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.cells.len(), 8);
    assert_eq!(report.policies.len(), 2);
    for cell in &report.cells {
        assert!(
            cell.metrics.offered > 0,
            "{} offered nothing",
            cell.cell.id()
        );
        assert!(
            cell.metrics.completed > 0,
            "{} completed nothing",
            cell.cell.id()
        );
        assert!(!cell.metrics.truncated, "{} truncated", cell.cell.id());
    }
    // Different workload coordinates must not share request streams: the
    // cells' latency percentiles should not all be identical.
    let p99s: std::collections::BTreeSet<String> = report
        .cells
        .iter()
        .map(|c| format!("{:.9}", c.metrics.p99_latency))
        .collect();
    assert!(p99s.len() > 1, "all cells produced identical latencies");
}

#[test]
fn gate_passes_self_and_fails_injected_regression() {
    let report = run_sweep(
        &grid_spec(),
        &RunOptions {
            threads: 4,
            quiet: true,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = GateConfig::default();

    // Self-comparison passes.
    let self_outcome = gate(&report, &report, &cfg);
    assert!(
        self_outcome.passed(&cfg),
        "self gate failed: {:?}",
        self_outcome.regressions
    );
    assert_eq!(self_outcome.compared, 8);

    // An injected 20% SLO-attainment drop fails.
    let mut degraded = report.clone();
    degraded.cells[0].metrics.slo_attainment *= 0.8;
    degraded.cells[0].metrics.goodput_per_sec *= 0.8;
    let outcome = gate(&report, &degraded, &cfg);
    assert!(!outcome.passed(&cfg), "gate missed an injected regression");
    assert!(outcome
        .regressions
        .iter()
        .any(|r| r.metric == "slo_attainment"));

    // The JSON artifact round-trips for gate consumption.
    let json = report.to_json();
    let reparsed = flexpipe_fleet::FleetReport::from_json(&json).unwrap();
    assert_eq!(reparsed, report);
    assert!(gate(&reparsed, &report, &cfg).passed(&cfg));
}
