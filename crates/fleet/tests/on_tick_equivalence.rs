//! Engine-level proof that the warm-start incremental `on_tick` solver is
//! a *pure* optimization: metric-identical cells between the dirty-set
//! mirror (`Indexed`) and the from-scratch fleet scan (`NaiveScan`) under
//! proptest-randomized demand swings, background fragmentation churn and
//! disruption interleavings — the regime where the control plane actually
//! refactors, scales out under pressure, retires under patience, and
//! rebuilds after revocations, so a stale mirror entry would first change
//! a decision here.

use std::sync::OnceLock;

use flexpipe_bench::{PaperSetup, SystemId};
use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
use flexpipe_fleet::{
    run_cell_in_mode, BackgroundShape, ClusterShape, DisruptionShape, PolicySpec, SweepSpec,
};
use flexpipe_model::ModelId;
use flexpipe_serving::AdmissionMode;
use flexpipe_workload::LengthProfile;
use proptest::prelude::*;

fn llama_setup() -> &'static PaperSetup {
    static SETUP: OnceLock<PaperSetup> = OnceLock::new();
    SETUP.get_or_init(|| PaperSetup::for_model(ModelId::Llama2_7B))
}

/// A control-plane-heavy sweep around one randomized coordinate: bursty
/// arrivals (high cv), fragmentation churn, and a mid-run preemption +
/// return that forces inflight recovery decisions.
fn churn_spec(cv: f64, rate: f64, at_secs: f64, grace_secs: f64, seed: u64) -> SweepSpec {
    SweepSpec {
        name: "on-tick-equivalence".into(),
        model: ModelId::Llama2_7B,
        seed,
        horizon_secs: 40.0,
        warmup_secs: 5.0,
        slo_secs: 4.0,
        slo_per_output_token_ms: 100.0,
        // Background tenants churn fragmentation every step, feeding the
        // policy's placement inputs with constant low-level change.
        background: BackgroundShape::TestbedLike,
        lengths: LengthProfile::fixed(128, 8),
        max_events: 20_000_000,
        cvs: vec![cv],
        rates: vec![rate],
        clusters: vec![ClusterShape::Custom {
            nodes: 8,
            total_gpus: 16,
            servers_per_rack: 4,
        }],
        policies: vec![PolicySpec::Paper(SystemId::FlexPipe)],
        disruptions: vec![DisruptionShape::Script(DisruptionScript {
            name: "churned-interleaving".into(),
            events: vec![
                DisruptionEvent {
                    at_secs,
                    kind: Disruption::HotServerPreempt {
                        rank: 0,
                        grace_secs,
                    },
                },
                DisruptionEvent {
                    at_secs: at_secs + 6.0,
                    kind: Disruption::CapacityReturn {
                        gpus: Vec::new(),
                        servers: vec![0],
                    },
                },
            ],
        })],
        replicas: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Every decision the warm-start mirror makes under randomized churn
    /// and disruption interleavings matches the from-scratch scan's,
    /// asserted through full metric equality (events, completions,
    /// refactors, replay counts — any decision divergence shifts them).
    #[test]
    fn warm_start_on_tick_matches_from_scratch(
        cv in 1.0f64..6.0,
        rate in 5.0f64..25.0,
        at_secs in 8.0f64..25.0,
        grace_secs in 0.0f64..5.0,
        seed in 1u64..1000,
    ) {
        let spec = churn_spec(cv, rate, at_secs, grace_secs, seed);
        prop_assert!(spec.validate().is_ok());
        let setup = llama_setup();
        let mut completed = 0usize;
        for cell in spec.expand() {
            let warm = run_cell_in_mode(&spec, &cell, setup, AdmissionMode::Indexed);
            let cold = run_cell_in_mode(&spec, &cell, setup, AdmissionMode::NaiveScan);
            prop_assert_eq!(
                &warm, &cold,
                "cell {} diverged (cv={}, rate={}, at={}, grace={}, seed={})",
                cell.id(), cv, rate, at_secs, grace_secs, seed
            );
            completed += warm.completed;
        }
        // The runs did real work (otherwise equality is vacuous).
        prop_assert!(completed > 0, "no cell served anything");
    }
}
