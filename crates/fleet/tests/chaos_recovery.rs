//! The chaos subsystem's acceptance contract (ISSUE 2):
//!
//! 1. determinism holds under disruption — the same spec + disruption
//!    script produces byte-identical fleet reports at any thread count;
//! 2. a `ServerPreempt` mid-run makes FlexPipe recover via inflight
//!    refactor (no full respawn, nothing replayed) while the static
//!    pipeline cold-respawns — asserted by comparing recovery-time and
//!    aborted-request metrics against disruption-free counterfactual runs
//!    of the *same* seed.

use flexpipe_bench::{PaperSetup, SystemId};
use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript, RandomDisruptions};
use flexpipe_fleet::{
    run_cell, run_sweep, BackgroundShape, CellMetrics, ClusterShape, DisruptionShape, PolicySpec,
    RunOptions, SweepSpec,
};
use flexpipe_model::ModelId;
use flexpipe_workload::LengthProfile;

/// The preemption trace: the busiest server gets a 15 s grace notice at
/// t = 15 s, well inside the measured window.
fn preempt_script() -> DisruptionScript {
    DisruptionScript {
        name: "preempt".into(),
        events: vec![DisruptionEvent {
            at_secs: 15.0,
            kind: Disruption::HotServerPreempt {
                rank: 0,
                grace_secs: 15.0,
            },
        }],
    }
}

/// A small fragmented cluster under steady traffic: FlexPipe vs. the
/// static pipeline, with and without the preemption.
fn spec() -> SweepSpec {
    SweepSpec {
        name: "chaos-recovery".into(),
        model: ModelId::Llama2_7B,
        seed: 20_260_731,
        horizon_secs: 30.0,
        warmup_secs: 8.0,
        slo_secs: 2.0,
        slo_per_output_token_ms: 100.0,
        background: BackgroundShape::Idle,
        lengths: LengthProfile::fixed(128, 128),
        max_events: 50_000_000,
        cvs: vec![1.0],
        rates: vec![4.0],
        clusters: vec![ClusterShape::Custom {
            nodes: 8,
            total_gpus: 12,
            servers_per_rack: 4,
        }],
        policies: vec![
            PolicySpec::Paper(SystemId::FlexPipe),
            PolicySpec::Static {
                stages: 2,
                replicas: 1,
            },
        ],
        disruptions: vec![DisruptionShape::Script(preempt_script())],
        replicas: 1,
    }
}

/// Runs one expanded cell plus its disruption-free counterfactual: the
/// same derived seed (so byte-identical traffic) with the script removed.
fn disrupted_and_counterfactual(policy_label: &str) -> (CellMetrics, CellMetrics) {
    let spec = spec();
    let setup = PaperSetup::for_model(spec.model);
    let cell = spec
        .expand()
        .into_iter()
        .find(|c| c.policy.label() == policy_label)
        .expect("policy in grid");
    let disrupted = run_cell(&spec, &cell, &setup);
    let mut calm_cell = cell.clone();
    calm_cell.disruption = DisruptionShape::None; // seed stays fixed
    let calm = run_cell(&spec, &calm_cell, &setup);
    (disrupted, calm)
}

#[test]
fn flexpipe_recovers_inflight_while_static_cold_respawns() {
    let (flex, flex_calm) = disrupted_and_counterfactual("FlexPipe");
    let (stat, stat_calm) = disrupted_and_counterfactual("Static-2x1");

    // Both policies faced exactly one revocation.
    assert_eq!(flex.revocations, 1, "flex revocations");
    assert_eq!(stat.revocations, 1, "static revocations");
    assert_eq!(flex_calm.revocations, 0);
    assert_eq!(stat_calm.revocations, 0);

    // FlexPipe used the grace window: stages migrated off the doomed
    // server inflight, so the revocation hit idle devices — nothing was
    // aborted and no new instance was spawned.
    assert_eq!(
        flex.requests_replayed, 0,
        "FlexPipe should migrate before the deadline, not replay"
    );
    assert_eq!(
        flex.spawns, flex_calm.spawns,
        "inflight recovery must not respawn"
    );
    assert!(
        flex.refactors > flex_calm.refactors,
        "the rescue is a refactor: {} vs calm {}",
        flex.refactors,
        flex_calm.refactors
    );
    assert!(
        flex.mean_ttr_secs < 0.5,
        "FlexPipe TTR {} should be ~0",
        flex.mean_ttr_secs
    );

    // The static pipeline ignored the notice: the preemption destroyed its
    // in-flight work and it paid a full cold respawn.
    assert!(
        stat.requests_replayed > 0,
        "static must lose in-flight work to the preemption"
    );
    assert!(stat.tokens_lost > 0);
    assert_eq!(
        stat.spawns,
        stat_calm.spawns + 1,
        "static recovery is a respawn"
    );
    assert!(
        stat.mean_ttr_secs > 1.0,
        "static TTR {} should include provisioning + reload",
        stat.mean_ttr_secs
    );

    // The headline comparison: inflight refactoring beats cold respawn on
    // both recovery time and lost work.
    assert!(
        flex.mean_ttr_secs < stat.mean_ttr_secs,
        "flex TTR {} !< static TTR {}",
        flex.mean_ttr_secs,
        stat.mean_ttr_secs
    );
    assert!(flex.requests_replayed < stat.requests_replayed);
}

#[test]
fn disrupted_sweeps_are_byte_identical_across_thread_counts() {
    // Exercise all three shapes: scripted preemption + surge, an MTBF
    // generator (realized from cell seeds), and the default None.
    let mut spec = spec();
    let mut surge_script = preempt_script();
    surge_script.name = "preempt-surge".into();
    surge_script.events.push(DisruptionEvent {
        at_secs: 20.0,
        kind: Disruption::RateSurge {
            factor: 2.0,
            duration_secs: 6.0,
        },
    });
    spec.disruptions = vec![
        DisruptionShape::None,
        DisruptionShape::Script(surge_script),
        DisruptionShape::Random(RandomDisruptions {
            label: "mtbf".into(),
            gpu_fail_mtbf_secs: 40.0,
            server_preempt_mtbf_secs: 0.0,
            grace_secs: 0.0,
            restore_delay_secs: 10.0,
            start_secs: 10.0,
            max_events: 8,
        }),
    ];
    let quiet = |threads| RunOptions {
        threads,
        quiet: true,
        ..Default::default()
    };
    let parallel = run_sweep(&spec, &quiet(4)).unwrap().to_json();
    let serial = run_sweep(&spec, &quiet(1)).unwrap().to_json();
    assert_eq!(parallel, serial, "thread count leaked into the artifact");
    let again = run_sweep(&spec, &quiet(4)).unwrap().to_json();
    assert_eq!(parallel, again, "rerun not reproducible");

    // The disruption traces actually fired somewhere in the grid.
    let report = flexpipe_fleet::FleetReport::from_json(&parallel).unwrap();
    assert!(
        report.cells.iter().any(|c| c.metrics.revocations > 0),
        "no revocation executed anywhere in the disrupted grid"
    );
    // Identical-trace contract: policies sharing a disrupted coordinate
    // report the same revocation count.
    for pair in report.cells.chunks(2) {
        if let [a, b] = pair {
            if a.cell.seed == b.cell.seed {
                assert_eq!(
                    a.metrics.revocations,
                    b.metrics.revocations,
                    "policies {} vs {} saw different traces",
                    a.cell.id(),
                    b.cell.id()
                );
            }
        }
    }
}
