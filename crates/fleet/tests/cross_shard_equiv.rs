//! Cross-shard request equivalence: the pinned scenario behind
//! `fleet check equiv --cross-shard`.
//!
//! Serving the non-interfering workload at 2 and 4 shards must produce
//! merged request streams semantically equivalent to the 1-shard
//! canonical trace (request-stream projection, per-stream instance
//! alpha-renaming — see `flexpipe_check::check_cross_shard`).

use flexpipe_check::check_cross_shard;
use flexpipe_gateway::{cross_shard_check_spec, serve_with, NoSpillover, Pacing, PaperSetup};
use flexpipe_serving::{TraceMode, TraceRecord};

#[test]
fn sharded_runs_are_request_equivalent_to_the_canonical_run() {
    let canonical_spec = cross_shard_check_spec(1);
    let setup = PaperSetup::for_model(canonical_spec.model);
    let canonical = serve_with(
        &canonical_spec,
        Pacing::Virtual,
        &NoSpillover,
        &setup,
        TraceMode::Full,
    )
    .unwrap();
    let canon = canonical.global_trace(0);
    assert!(!canon.is_empty(), "the canonical run must trace something");

    for shards in [2u32, 4] {
        let sharded = serve_with(
            &cross_shard_check_spec(shards),
            Pacing::Virtual,
            &NoSpillover,
            &setup,
            TraceMode::Full,
        )
        .unwrap();
        let traces: Vec<Vec<TraceRecord>> = (0..shards).map(|s| sharded.global_trace(s)).collect();
        assert!(
            traces.iter().filter(|t| !t.is_empty()).count() > 1,
            "requests must actually split across shards for the check to mean anything"
        );
        let refs: Vec<&[TraceRecord]> = traces.iter().map(Vec::as_slice).collect();
        let report = check_cross_shard(&refs, &canon);
        assert!(
            report.equivalent(),
            "{}",
            report.render(&format!("{shards}-shard"), "canonical")
        );
    }
}
