//! End-to-end exercise of the distributed campaign protocol through the
//! binary: `fleet worker` in shard and claim modes, `fleet campaign
//! assemble`, and the headline determinism contract — the assembled
//! artifact set is byte-identical whether one process ran the campaign,
//! three sharded workers split it, or three claiming workers raced over
//! it, at shuffled thread counts, on either storage backend.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexpipe-fleet"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("flexpipe-worker-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sweep_json() -> String {
    r#"{
  "name": "w-sweep",
  "model": "Llama2_7B",
  "seed": 11,
  "horizon_secs": 8.0,
  "warmup_secs": 2.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {
    "prompt_median": 128.0, "prompt_sigma": 0.0, "prompt_range": [128, 128],
    "output_mean": 8.0, "output_range": [8, 8]
  },
  "max_events": 20000000,
  "cvs": [1.0],
  "rates": [2.0, 3.0],
  "clusters": [{"Custom": {"nodes": 6, "total_gpus": 8, "servers_per_rack": 3}}],
  "policies": [{"Paper": "FlexPipe"}, {"Static": {"stages": 2, "replicas": 1}}]
}
"#
    .to_string()
}

fn bench_json() -> String {
    r#"{
  "name": "w-bench",
  "model": "Llama2_7B",
  "seed": 7,
  "horizon_secs": 6.0,
  "warmup_secs": 2.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {
    "prompt_median": 64.0, "prompt_sigma": 0.0, "prompt_range": [64, 64],
    "output_mean": 4.0, "output_range": [4, 4]
  },
  "max_events": 20000000,
  "cv": 1.0,
  "cluster": {"Custom": {"nodes": 4, "total_gpus": 6, "servers_per_rack": 4}},
  "policy": {"Static": {"stages": 2, "replicas": 1}},
  "rates": [3.0],
  "ubatch_sizes": [32],
  "prefill_token_caps": [256],
  "admission_batches": [8],
  "admission": ["Indexed"]
}
"#
    .to_string()
}

/// A 5-cell campaign (4 sweep + 1 bench): enough cells that a 3-way
/// shard is never empty and claim races actually happen, small enough
/// for debug-build test time.
fn write_campaign(dir: &Path) -> PathBuf {
    std::fs::write(dir.join("sweep.json"), sweep_json()).unwrap();
    std::fs::write(dir.join("bench.json"), bench_json()).unwrap();
    let campaign = dir.join("campaign.json");
    std::fs::write(
        &campaign,
        "{\n  \"name\": \"w-campaign\",\n  \"cache_dir\": \"cells\",\n  \"entries\": [\n    \
         { \"kind\": \"Sweep\", \"path\": \"sweep.json\" },\n    \
         { \"kind\": \"Bench\", \"path\": \"bench.json\" }\n  ]\n}\n",
    )
    .unwrap();
    campaign
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn flexpipe-fleet");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The deterministic artifact set of a campaign output directory —
/// everything except the wall-clock `campaign.timing.json` sidecar.
fn read_dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|f| {
            let f = f.unwrap();
            (
                f.file_name().to_string_lossy().to_string(),
                std::fs::read(f.path()).unwrap(),
            )
        })
        .filter(|(name, _)| name != "campaign.timing.json")
        .collect();
    files.sort();
    files
}

fn assemble(campaign: &Path, cache: &Path, out_dir: &Path) -> Output {
    run_ok(
        bin()
            .arg("campaign")
            .arg("assemble")
            .arg(campaign)
            .arg("--cache")
            .arg(cache)
            .arg("--out-dir")
            .arg(out_dir),
    )
}

/// The tentpole contract: 1 process vs 3 sharded workers vs 3
/// concurrent claiming workers (threads shuffled) vs 1 worker on the
/// append-log backend — four topologies, one byte-identical artifact
/// set.
#[test]
fn topologies_assemble_byte_identical_artifacts() {
    let dir = tmp_dir("topo");
    let campaign = write_campaign(&dir);

    // Reference topology: the single-process `fleet campaign` runner.
    run_ok(
        bin()
            .arg("campaign")
            .arg(&campaign)
            .arg("--out-dir")
            .arg(dir.join("out-1w"))
            .arg("--cache")
            .arg(dir.join("cells-1w"))
            .arg("--threads")
            .arg("2")
            .arg("--quiet"),
    );
    let reference = read_dir_bytes(&dir.join("out-1w"));
    assert_eq!(reference.len(), 3, "two reports + campaign.json");

    // Topology 2: three sharded workers, disjoint cells, shuffled thread
    // counts, then a cache-only assemble.
    let cache = dir.join("cells-shard");
    for (i, threads) in [(0, "2"), (1, "1"), (2, "3")] {
        let out = run_ok(
            bin()
                .arg("worker")
                .arg(&campaign)
                .arg("--cache")
                .arg(&cache)
                .arg("--shard")
                .arg(format!("{i}/3"))
                .arg("--threads")
                .arg(threads),
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("shard {i}/3")),
            "worker should announce its shard: {stderr}"
        );
    }
    assemble(&campaign, &cache, &dir.join("out-shard"));
    assert_eq!(
        reference,
        read_dir_bytes(&dir.join("out-shard")),
        "sharded topology diverged from the single-process run"
    );

    // Topology 3: three claiming workers racing concurrently over the
    // full cell list, shuffled thread counts.
    let cache = dir.join("cells-claim");
    let children: Vec<std::process::Child> = [("wa", "2"), ("wb", "1"), ("wc", "3")]
        .iter()
        .map(|(id, threads)| {
            bin()
                .arg("worker")
                .arg(&campaign)
                .arg("--cache")
                .arg(&cache)
                .arg("--worker-id")
                .arg(id)
                .arg("--threads")
                .arg(threads)
                .arg("--claim-ttl")
                .arg("30s")
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    for child in children {
        let out = child.wait_with_output().expect("worker wait");
        assert!(out.status.success(), "a claiming worker failed");
    }
    assemble(&campaign, &cache, &dir.join("out-claim"));
    assert_eq!(
        reference,
        read_dir_bytes(&dir.join("out-claim")),
        "claiming topology diverged from the single-process run"
    );
    // The protocol cleaned up after itself: no claims left behind.
    let out = run_ok(bin().arg("cache").arg("stats").arg(&cache));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("claims: 0 live"),
        "drained campaign left claims: {stdout}"
    );
    assert!(stdout.contains("5 entries"), "{stdout}");

    // Topology 4: one worker on the append-log backend — the same cells
    // through a structurally different store, same bytes out.
    let cache = dir.join("cells-log");
    run_ok(
        bin()
            .arg("worker")
            .arg(&campaign)
            .arg("--cache")
            .arg(&cache)
            .arg("--store")
            .arg("log")
            .arg("--threads")
            .arg("2")
            .arg("--quiet"),
    );
    assert!(cache.join("cells.log").is_file(), "log backend selected");
    assemble(&campaign, &cache, &dir.join("out-log"));
    assert_eq!(
        reference,
        read_dir_bytes(&dir.join("out-log")),
        "append-log backend diverged from the single-process run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `assemble` on an incomplete cache: exit 2, naming every missing key —
/// and nothing gets computed behind the operator's back.
#[test]
fn assemble_fails_loudly_on_missing_cells() {
    let dir = tmp_dir("missing");
    let campaign = write_campaign(&dir);
    let cache = dir.join("cells");

    // An empty cache is missing everything.
    let out = bin()
        .arg("campaign")
        .arg("assemble")
        .arg(&campaign)
        .arg("--cache")
        .arg(&cache)
        .arg("--out-dir")
        .arg(dir.join("out-none"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "incomplete cache must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("missing 5 of the campaign's cells"),
        "{stderr}"
    );
    assert!(
        !dir.join("out-none").exists(),
        "a failed assemble must write nothing"
    );

    // Fill the cache, then deliberately evict one entry.
    run_ok(
        bin()
            .arg("worker")
            .arg(&campaign)
            .arg("--cache")
            .arg(&cache)
            .arg("--threads")
            .arg("2")
            .arg("--quiet"),
    );
    let evicted: PathBuf = {
        let mut entries: Vec<PathBuf> = Vec::new();
        for shard in std::fs::read_dir(&cache).unwrap() {
            let shard = shard.unwrap().path();
            if shard.is_dir() {
                for f in std::fs::read_dir(&shard).unwrap() {
                    let f = f.unwrap().path();
                    if f.extension().map(|e| e == "json").unwrap_or(false) {
                        entries.push(f);
                    }
                }
            }
        }
        entries.sort();
        entries.remove(0)
    };
    let evicted_key = evicted.file_stem().unwrap().to_string_lossy().to_string();
    std::fs::remove_file(&evicted).unwrap();

    let out = bin()
        .arg("campaign")
        .arg("assemble")
        .arg(&campaign)
        .arg("--cache")
        .arg(&cache)
        .arg("--out-dir")
        .arg(dir.join("out-evicted"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("missing 1 of the campaign's cells"),
        "{stderr}"
    );
    assert!(
        stderr.contains(&evicted_key),
        "assemble must name the missing key {evicted_key}: {stderr}"
    );

    // One more worker pass heals the eviction; assemble then succeeds.
    run_ok(
        bin()
            .arg("worker")
            .arg(&campaign)
            .arg("--cache")
            .arg(&cache)
            .arg("--threads")
            .arg("1")
            .arg("--quiet"),
    );
    assemble(&campaign, &cache, &dir.join("out-healed"));
    assert_eq!(read_dir_bytes(&dir.join("out-healed")).len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The resume contract for workers: a worker stopped mid-campaign leaves
/// a partial cache (and possibly a stale claim from its death); a
/// restarted worker replays the finished cells as hits, reaps the stale
/// claim, and completes the campaign without recomputing anything done.
#[test]
fn killed_worker_resumes_without_recomputing_cached_cells() {
    let dir = tmp_dir("resume");
    let campaign = write_campaign(&dir);
    let cache = dir.join("cells");

    // First worker "dies" after two cells (--max-cells caps compute).
    let out = run_ok(
        bin()
            .arg("worker")
            .arg(&campaign)
            .arg("--cache")
            .arg(&cache)
            .arg("--worker-id")
            .arg("doomed")
            .arg("--max-cells")
            .arg("2")
            .arg("--threads")
            .arg("1"),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("worker doomed: 5 assigned, 2 computed"),
        "{stderr}"
    );
    assert!(stderr.contains("3 left to peers"), "{stderr}");

    // Simulate the abandoned claim of a crashed worker: plant a claim on
    // one not-yet-cached cell and backdate its heartbeat.
    let manifest_keys: Vec<String> = {
        // The campaign manifest (from a throwaway no-cache run) lists
        // every cell key — the same keys every worker derives.
        run_ok(
            bin()
                .arg("campaign")
                .arg(&campaign)
                .arg("--out-dir")
                .arg(dir.join("out-keys"))
                .arg("--no-cache")
                .arg("--quiet"),
        );
        let text = std::fs::read_to_string(dir.join("out-keys").join("campaign.json")).unwrap();
        text.split('"')
            .filter(|s| s.len() == 32 && s.chars().all(|c| c.is_ascii_hexdigit()))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(manifest_keys.len(), 5, "{manifest_keys:?}");
    let uncached = manifest_keys
        .iter()
        .find(|k| !cache.join(&k[0..2]).join(format!("{k}.json")).is_file())
        .expect("three cells are still uncached");
    let claim = cache
        .join(&uncached[0..2])
        .join(format!("{uncached}.claim"));
    std::fs::create_dir_all(claim.parent().unwrap()).unwrap();
    std::fs::write(&claim, "doomed\n").unwrap();
    std::fs::File::options()
        .write(true)
        .open(&claim)
        .unwrap()
        .set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(3600))
        .unwrap();

    // The replacement worker: finishes the campaign, reaping the dead
    // claim (1h old vs 2s TTL) instead of waiting on it.
    let out = run_ok(
        bin()
            .arg("worker")
            .arg(&campaign)
            .arg("--cache")
            .arg(&cache)
            .arg("--worker-id")
            .arg("heir")
            .arg("--claim-ttl")
            .arg("2s")
            .arg("--threads")
            .arg("2"),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("worker heir: 5 assigned, 3 computed, 2 cache hits"),
        "the restarted worker must replay finished cells, not recompute: {stderr}"
    );
    assert!(!claim.exists(), "the stale claim must be gone");

    // The drained cache assembles to the same bytes as the reference.
    assemble(&campaign, &cache, &dir.join("out-resumed"));
    assert_eq!(
        read_dir_bytes(&dir.join("out-keys")),
        read_dir_bytes(&dir.join("out-resumed")),
        "resumed fleet diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed CI campaign across all three topologies. Debug-build
/// expensive (40 real cells × 3 topologies) — `#[ignore]`d here; CI's
/// release-binary distributed smoke covers the same contract on every
/// push.
#[test]
#[ignore = "release-scale acceptance run; covered by the CI distributed smoke"]
fn committed_campaign_is_byte_identical_across_topologies() {
    let repo_specs = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let campaign = repo_specs.join("campaign-ci.json");
    assert!(campaign.is_file(), "committed campaign spec moved?");
    let dir = tmp_dir("acceptance");

    run_ok(
        bin()
            .arg("campaign")
            .arg(&campaign)
            .arg("--out-dir")
            .arg(dir.join("out-1w"))
            .arg("--cache")
            .arg(dir.join("cells-1w"))
            .arg("--quiet"),
    );
    let reference = read_dir_bytes(&dir.join("out-1w"));

    let cache = dir.join("cells-shard");
    for i in 0..3 {
        run_ok(
            bin()
                .arg("worker")
                .arg(&campaign)
                .arg("--cache")
                .arg(&cache)
                .arg("--shard")
                .arg(format!("{i}/3"))
                .arg("--quiet"),
        );
    }
    assemble(&campaign, &cache, &dir.join("out-shard"));
    assert_eq!(reference, read_dir_bytes(&dir.join("out-shard")));

    let cache = dir.join("cells-claim");
    let children: Vec<std::process::Child> = [("wa", "3"), ("wb", "2"), ("wc", "4")]
        .iter()
        .map(|(id, threads)| {
            bin()
                .arg("worker")
                .arg(&campaign)
                .arg("--cache")
                .arg(&cache)
                .arg("--worker-id")
                .arg(id)
                .arg("--threads")
                .arg(threads)
                .arg("--quiet")
                .spawn()
                .unwrap()
        })
        .collect();
    for child in children {
        assert!(child.wait_with_output().unwrap().status.success());
    }
    assemble(&campaign, &cache, &dir.join("out-claim"));
    assert_eq!(reference, read_dir_bytes(&dir.join("out-claim")));

    let _ = std::fs::remove_dir_all(&dir);
}
