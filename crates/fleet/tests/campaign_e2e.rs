//! End-to-end exercise of `flexpipe-fleet campaign`: cold → warm → resume
//! through the binary, including the two campaign contracts CI leans on —
//! a warm run is 100% hits with byte-identical artifacts, and a run
//! interrupted mid-way (step-budget truncation) resumes from the cache to
//! an artifact byte-identical to an uninterrupted run, at any thread
//! count. Plus the `cache stats` / `cache gc` / `fingerprint` tooling.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use flexpipe_fleet::FleetReport;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexpipe-fleet"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flexpipe-campaign-e2e-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sweep_json(name: &str, rates: &str, max_events: u64) -> String {
    format!(
        r#"{{
  "name": "{name}",
  "model": "Llama2_7B",
  "seed": 11,
  "horizon_secs": 8.0,
  "warmup_secs": 2.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {{
    "prompt_median": 128.0, "prompt_sigma": 0.0, "prompt_range": [128, 128],
    "output_mean": 8.0, "output_range": [8, 8]
  }},
  "max_events": {max_events},
  "cvs": [1.0],
  "rates": [{rates}],
  "clusters": [{{"Custom": {{"nodes": 6, "total_gpus": 8, "servers_per_rack": 3}}}}],
  "policies": [{{"Paper": "FlexPipe"}}, {{"Static": {{"stages": 2, "replicas": 1}}}}]
}}
"#
    )
}

fn bench_json() -> String {
    r#"{
  "name": "e2e-bench",
  "model": "Llama2_7B",
  "seed": 7,
  "horizon_secs": 6.0,
  "warmup_secs": 2.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {
    "prompt_median": 64.0, "prompt_sigma": 0.0, "prompt_range": [64, 64],
    "output_mean": 4.0, "output_range": [4, 4]
  },
  "max_events": 20000000,
  "cv": 1.0,
  "cluster": {"Custom": {"nodes": 4, "total_gpus": 6, "servers_per_rack": 4}},
  "policy": {"Static": {"stages": 2, "replicas": 1}},
  "rates": [3.0],
  "ubatch_sizes": [32],
  "prefill_token_caps": [256],
  "admission_batches": [8],
  "admission": ["Indexed"]
}
"#
    .to_string()
}

fn campaign_json(name: &str, entries: &[(&str, &str)]) -> String {
    let entries: Vec<String> = entries
        .iter()
        .map(|(kind, path)| format!(r#"    {{ "kind": "{kind}", "path": "{path}" }}"#))
        .collect();
    format!(
        "{{\n  \"name\": \"{name}\",\n  \"cache_dir\": \"cells\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn flexpipe-fleet");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Reads the deterministic artifact set of a campaign output directory.
/// The `campaign.timing.json` sidecar is wall-clock by design and is the
/// one file excluded from byte comparison.
fn read_dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|f| {
            let f = f.unwrap();
            (
                f.file_name().to_string_lossy().to_string(),
                std::fs::read(f.path()).unwrap(),
            )
        })
        .filter(|(name, _)| name != "campaign.timing.json")
        .collect();
    files.sort();
    files
}

#[test]
fn cold_warm_pipeline_is_all_hits_and_byte_identical() {
    let dir = tmp_dir("coldwarm");
    std::fs::write(
        dir.join("sweep.json"),
        sweep_json("e2e-sweep", "3.0", 20_000_000),
    )
    .unwrap();
    std::fs::write(dir.join("bench.json"), bench_json()).unwrap();
    std::fs::write(
        dir.join("campaign.json"),
        campaign_json(
            "e2e-campaign",
            &[("Sweep", "sweep.json"), ("Bench", "bench.json")],
        ),
    )
    .unwrap();

    // Cold: everything computes and persists.
    let out = run_ok(
        bin()
            .arg("campaign")
            .arg(dir.join("campaign.json"))
            .arg("--out-dir")
            .arg(dir.join("out-cold"))
            .arg("--threads")
            .arg("2")
            .arg("--quiet"),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 hits, 3 misses over 3 cells"),
        "unexpected cold stats: {stdout}"
    );
    assert!(stdout.contains("3 stored"), "{stdout}");

    // Warm, different thread count, --assert-warm: 100% hits, exit 0.
    let out = run_ok(
        bin()
            .arg("campaign")
            .arg(dir.join("campaign.json"))
            .arg("--out-dir")
            .arg(dir.join("out-warm"))
            .arg("--threads")
            .arg("1")
            .arg("--quiet")
            .arg("--assert-warm"),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3 hits, 0 misses over 3 cells (100.0% hit rate"),
        "warm run was not all-hits: {stdout}"
    );

    // Byte-identical artifact set: manifest plus every report.
    let cold = read_dir_bytes(&dir.join("out-cold"));
    let warm = read_dir_bytes(&dir.join("out-warm"));
    assert_eq!(cold.len(), 3);
    assert_eq!(cold, warm, "cold and warm artifacts diverged");

    // The timing sidecar rides beside them: per-cell wall ms + cache
    // status, all-miss cold, all-hit warm.
    for (out, hit) in [("out-cold", false), ("out-warm", true)] {
        let text = std::fs::read_to_string(dir.join(out).join("campaign.timing.json")).unwrap();
        let timing: flexpipe_fleet::CampaignTiming = serde_json::from_str(&text).unwrap();
        assert_eq!(timing.cells.len(), 3, "{out}");
        assert!(timing.cells.iter().all(|c| c.cache_hit == hit), "{out}");
    }

    // The cached sweep artifact gates clean against the cold baseline.
    let out = run_ok(
        bin()
            .arg("gate")
            .arg(dir.join("out-warm").join("e2e-sweep.report.json"))
            .arg("--baseline")
            .arg(dir.join("out-cold").join("e2e-sweep.report.json")),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("GATE PASS"));

    // The campaign's own --gate mode agrees, warm against cold.
    let out = run_ok(
        bin()
            .arg("campaign")
            .arg(dir.join("campaign.json"))
            .arg("--out-dir")
            .arg(dir.join("out-gated"))
            .arg("--quiet")
            .arg("--gate")
            .arg(dir.join("out-cold")),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("GATE PASS"));

    // --no-cache computes everything and still reproduces the bytes.
    let out = run_ok(
        bin()
            .arg("campaign")
            .arg(dir.join("campaign.json"))
            .arg("--out-dir")
            .arg(dir.join("out-nocache"))
            .arg("--threads")
            .arg("2")
            .arg("--quiet")
            .arg("--no-cache"),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("cache: disabled"));
    assert_eq!(cold, read_dir_bytes(&dir.join("out-nocache")));

    // An emptied cache fails --assert-warm with exit 2.
    std::fs::remove_dir_all(dir.join("cells")).unwrap();
    let out = bin()
        .arg("campaign")
        .arg(dir.join("campaign.json"))
        .arg("--out-dir")
        .arg(dir.join("out-cold2"))
        .arg("--quiet")
        .arg("--assert-warm")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--assert-warm must exit 2 on misses: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The resume contract: a campaign whose first attempt was cut short
/// mid-way (step-budget truncation killed the heavy cells; the cheap
/// cells landed in the cache) resumes to a final artifact byte-identical
/// to an uninterrupted run — in 1-thread and N-thread modes.
#[test]
fn truncated_campaign_resumes_to_byte_identical_artifacts() {
    let dir = tmp_dir("resume");
    // Two rates far apart: the 7 QPS cells process several times the
    // events of the 2 QPS cells, so a mid-point budget truncates exactly
    // the heavy coordinate.
    let full = sweep_json("resume-sweep", "2.0, 7.0", 20_000_000);
    std::fs::write(dir.join("sweep.json"), &full).unwrap();
    std::fs::write(
        dir.join("campaign.json"),
        campaign_json("resume-campaign", &[("Sweep", "sweep.json")]),
    )
    .unwrap();

    // Uninterrupted reference, cache untouched.
    run_ok(
        bin()
            .arg("campaign")
            .arg(dir.join("campaign.json"))
            .arg("--out-dir")
            .arg(dir.join("out-ref"))
            .arg("--quiet")
            .arg("--no-cache"),
    );
    let reference = read_dir_bytes(&dir.join("out-ref"));

    // Pick a step budget that splits the grid: above the cheapest cell,
    // below the dearest.
    let report_text =
        std::fs::read_to_string(dir.join("out-ref").join("resume-sweep.report.json")).unwrap();
    let report = FleetReport::from_json(&report_text).unwrap();
    let events: Vec<u64> = report.cells.iter().map(|c| c.metrics.events).collect();
    let (min, max) = (*events.iter().min().unwrap(), *events.iter().max().unwrap());
    assert!(
        max > min + 1000,
        "spread too small to split the grid: {events:?}"
    );
    let budget = min + (max - min) / 2;

    // One full interrupt-then-resume cycle per thread mode, each against
    // its own cache (the `--cache` override keeps the cycles independent).
    for (tag, threads) in [("t2", "2"), ("t1", "1")] {
        let cache = dir.join(format!("cells-{tag}"));

        // The interrupted attempt: same sweep under the tight budget.
        // Heavy cells truncate (and are NOT cached), cheap cells complete
        // and are. Not --quiet: the per-cell progress on stderr carries
        // the TRUNCATED marker this test pins down.
        std::fs::write(
            dir.join("sweep.json"),
            sweep_json("resume-sweep", "2.0, 7.0", budget),
        )
        .unwrap();
        let out = run_ok(
            bin()
                .arg("campaign")
                .arg(dir.join("campaign.json"))
                .arg("--out-dir")
                .arg(dir.join(format!("out-interrupted-{tag}")))
                .arg("--cache")
                .arg(&cache)
                .arg("--threads")
                .arg(threads),
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("TRUNCATED (not cached)"),
            "no cell was interrupted — budget split failed\nstderr: {stderr}"
        );
        assert!(
            !stdout.contains("4 stored"),
            "every cell was cached; nothing to resume: {stdout}"
        );
        assert!(
            !stdout.contains("0 stored"),
            "no cell was cached; nothing to resume from: {stdout}"
        );

        // Resume under the full budget: the truncated cells recompute,
        // the completed ones replay, and the artifacts come out
        // byte-identical to the uninterrupted reference.
        std::fs::write(dir.join("sweep.json"), &full).unwrap();
        let out = run_ok(
            bin()
                .arg("campaign")
                .arg(dir.join("campaign.json"))
                .arg("--out-dir")
                .arg(dir.join(format!("out-resume-{tag}")))
                .arg("--cache")
                .arg(&cache)
                .arg("--threads")
                .arg(threads)
                .arg("--quiet"),
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            !stdout.contains(" 0 hits") && !stdout.contains(" 0 misses"),
            "resume should mix hits (completed cells) and misses (truncated cells): {stdout}"
        );
        assert_eq!(
            reference,
            read_dir_bytes(&dir.join(format!("out-resume-{tag}"))),
            "resumed artifacts diverged from the uninterrupted run at {threads} threads"
        );

        // And now this cache is fully warm: one more run is 100% hits.
        run_ok(
            bin()
                .arg("campaign")
                .arg(dir.join("campaign.json"))
                .arg("--out-dir")
                .arg(dir.join(format!("out-warm-{tag}")))
                .arg("--cache")
                .arg(&cache)
                .arg("--quiet")
                .arg("--assert-warm"),
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_stats_and_gc_bound_the_directory() {
    let dir = tmp_dir("cachecli");
    std::fs::write(
        dir.join("sweep.json"),
        sweep_json("gc-sweep", "3.0", 20_000_000),
    )
    .unwrap();
    std::fs::write(
        dir.join("campaign.json"),
        campaign_json("gc-campaign", &[("Sweep", "sweep.json")]),
    )
    .unwrap();
    run_ok(
        bin()
            .arg("campaign")
            .arg(dir.join("campaign.json"))
            .arg("--out-dir")
            .arg(dir.join("out"))
            .arg("--quiet"),
    );
    let cells = dir.join("cells");

    let out = run_ok(bin().arg("cache").arg("stats").arg(&cells));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2 entries (2 sweep, 0 bench)"),
        "unexpected stats: {stdout}"
    );

    // A generous age bound removes nothing.
    let out = run_ok(
        bin()
            .arg("cache")
            .arg("gc")
            .arg(&cells)
            .arg("--max-age")
            .arg("7d"),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("removed 0"));

    // Age zero sweeps everything.
    let out = run_ok(
        bin()
            .arg("cache")
            .arg("gc")
            .arg(&cells)
            .arg("--max-age")
            .arg("0s"),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("removed 2"));
    let out = run_ok(bin().arg("cache").arg("stats").arg(&cells));
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 entries"));

    // gc without --max-age is a usage error.
    let out = bin().arg("cache").arg("gc").arg(&cells).output().unwrap();
    assert_eq!(out.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_and_campaign_init_support_ci_wiring() {
    // `fingerprint` prints the full cache salt CI keys actions/cache on.
    let out = run_ok(bin().arg("fingerprint"));
    let salt = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(salt.starts_with("engine-v"), "{salt}");
    assert!(salt.contains("report-v"), "{salt}");
    assert!(salt.contains("cache-v"), "{salt}");
    // Stable across invocations.
    let again = run_ok(bin().arg("fingerprint"));
    assert_eq!(salt, String::from_utf8_lossy(&again.stdout).trim());

    // `campaign init` writes a parseable template.
    let dir = tmp_dir("init");
    let path = dir.join("template-campaign.json");
    run_ok(bin().arg("campaign").arg("init").arg(&path));
    let text = std::fs::read_to_string(&path).unwrap();
    let spec = flexpipe_fleet::parse_campaign("c.json", &text).unwrap();
    assert_eq!(spec, flexpipe_fleet::CampaignSpec::template());
    let _ = std::fs::remove_dir_all(&dir);
}
