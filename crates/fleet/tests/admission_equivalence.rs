//! Engine-level proof that the indexed admission fast path is a *pure*
//! optimization: byte-identical fleet reports in both admission modes, at
//! any thread count, on the repo's committed specs — and metric-identical
//! cells under proptest-randomized arrival/disruption interleavings
//! (preemptions with and without grace, capacity returns, inflight
//! FlexPipe recovery), which is where a stale index entry would first
//! diverge.

use std::sync::OnceLock;

use flexpipe_bench::{PaperSetup, SystemId};
use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
use flexpipe_fleet::{
    parse_spec, run_cell_in_mode, run_sweep, BackgroundShape, ClusterShape, DisruptionShape,
    PolicySpec, RunOptions, SweepSpec,
};
use flexpipe_model::ModelId;
use flexpipe_serving::AdmissionMode;
use flexpipe_workload::LengthProfile;
use proptest::prelude::*;

/// The committed chaos spec, loaded from the repo's `specs/` directory
/// (tests run with the crate as CWD).
fn disruption_recovery_spec() -> SweepSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/disruption-recovery.json"
    );
    let text = std::fs::read_to_string(path).expect("committed spec readable");
    parse_spec(path, &text).expect("committed spec parses")
}

#[test]
fn committed_spec_reports_are_byte_identical_across_modes_and_threads() {
    let spec = disruption_recovery_spec();
    let opts = |threads, admission| RunOptions {
        threads,
        quiet: true,
        admission,
        ..Default::default()
    };
    let indexed_1 = run_sweep(&spec, &opts(1, AdmissionMode::Indexed))
        .unwrap()
        .to_json();
    let indexed_4 = run_sweep(&spec, &opts(4, AdmissionMode::Indexed))
        .unwrap()
        .to_json();
    let naive_1 = run_sweep(&spec, &opts(1, AdmissionMode::NaiveScan))
        .unwrap()
        .to_json();
    assert_eq!(indexed_1, indexed_4, "thread count leaked into the report");
    assert_eq!(
        indexed_1, naive_1,
        "the admission index is not a pure optimization"
    );
}

fn llama_setup() -> &'static PaperSetup {
    static SETUP: OnceLock<PaperSetup> = OnceLock::new();
    SETUP.get_or_init(|| PaperSetup::for_model(ModelId::Llama2_7B))
}

/// A tiny disrupted sweep around one randomized coordinate.
fn random_spec(cv: f64, rate: f64, at_secs: f64, grace_secs: f64, fail_gpu: u32) -> SweepSpec {
    SweepSpec {
        name: "admission-equivalence".into(),
        model: ModelId::Llama2_7B,
        seed: 23,
        horizon_secs: 12.0,
        warmup_secs: 3.0,
        slo_secs: 2.0,
        slo_per_output_token_ms: 100.0,
        background: BackgroundShape::Idle,
        lengths: LengthProfile::fixed(96, 6),
        max_events: 20_000_000,
        cvs: vec![cv],
        rates: vec![rate],
        clusters: vec![ClusterShape::Custom {
            nodes: 8,
            total_gpus: 12,
            servers_per_rack: 4,
        }],
        policies: vec![
            PolicySpec::Paper(SystemId::FlexPipe),
            PolicySpec::Static {
                stages: 2,
                replicas: 1,
            },
        ],
        disruptions: vec![DisruptionShape::Script(DisruptionScript {
            name: "random-interleaving".into(),
            events: vec![
                DisruptionEvent {
                    at_secs,
                    kind: Disruption::HotServerPreempt {
                        rank: 0,
                        grace_secs,
                    },
                },
                DisruptionEvent {
                    at_secs: at_secs + 1.0,
                    kind: Disruption::GpuFail { gpu: fail_gpu },
                },
                DisruptionEvent {
                    at_secs: at_secs + 4.0,
                    kind: Disruption::CapacityReturn {
                        gpus: vec![fail_gpu],
                        servers: Vec::new(),
                    },
                },
            ],
        })],
        replicas: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every (request → instance) assignment the indexed path makes under
    /// a random arrival/disruption interleaving matches the naive scan's:
    /// asserted through full metric equality (events, completions, TTFT
    /// percentiles, replay counts — any assignment divergence shifts
    /// them).
    #[test]
    fn random_interleavings_yield_identical_metrics(
        cv in 0.5f64..6.0,
        rate in 2.0f64..8.0,
        at_secs in 3.0f64..8.0,
        grace_secs in 0.0f64..3.0,
    ) {
        let fail_gpu = (at_secs * 1e3) as u32 % 12;
        let spec = random_spec(cv, rate, at_secs, grace_secs, fail_gpu);
        prop_assert!(spec.validate().is_ok());
        let setup = llama_setup();
        let mut completed = 0usize;
        for cell in spec.expand() {
            let indexed = run_cell_in_mode(&spec, &cell, setup, AdmissionMode::Indexed);
            let naive = run_cell_in_mode(&spec, &cell, setup, AdmissionMode::NaiveScan);
            prop_assert_eq!(
                &indexed, &naive,
                "cell {} diverged (cv={}, rate={}, at={}, grace={})",
                cell.id(), cv, rate, at_secs, grace_secs
            );
            completed += indexed.completed;
        }
        // The runs did real work (otherwise equality is vacuous). A
        // single cell may legitimately complete nothing in-window — a
        // preempted static replica takes longer than the horizon to cold
        // respawn — but the case as a whole must serve traffic.
        prop_assert!(completed > 0, "no cell served anything");
    }
}
