//! `fleet bench`: engine-tunable sweeps for the high-rate fast path.
//!
//! Where a [`crate::spec::SweepSpec`] compares *policies* across workload
//! grids, a [`BenchSpec`] holds the policy fixed and sweeps the *engine
//! tunables* — decode micro-batch size, chunked-prefill token cap,
//! admission (prefill) batch — crossed with request rates up to 10× the
//! paper's 20 QPS, in both admission modes (the indexed fast path and the
//! retained naive reference scan). Every cell reports the usual
//! steady-state quality metrics plus *wall-clock* columns (events per
//! wall-second, simulated-seconds per wall-second), which is what turns
//! the ROADMAP's "drain_gateway will dominate at 10× the rate" from a
//! hunch into a measured table.
//!
//! Determinism contract: the JSON artifact ([`BenchReport`]) contains
//! only simulation-derived values and is byte-stable across runs and
//! thread counts. Wall-clock measurements live in a separate
//! [`BenchTiming`] vector that feeds the rendered tables and never enters
//! the artifact. Cell seeds derive from the *rate alone* (not the
//! tunables, not the admission mode), so every configuration at a rate
//! faces byte-identical traffic — and the two admission modes of one
//! coordinate must produce identical metrics, which
//! [`BenchReport::mode_mismatches`] verifies.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use flexpipe_bench::PaperSetup;
use flexpipe_chaos::DisruptionScript;
use flexpipe_metrics::{fmt_f, fmt_pct, Table};
use flexpipe_model::ModelId;
use flexpipe_serving::{
    churn, decode_slot_churn, server_load_churn, AdmissionMode, Engine, EngineConfig, EngineMode,
    Scenario,
};
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::report::{summarize_cell, CellMetrics};
use crate::runner::{
    effective_threads, failed_cell_metrics, parallel_indexed, FleetError, RunOptions,
};
use crate::spec::{fmt_axis, mix64, BackgroundShape, ClusterShape, PolicySpec};

/// A declarative engine-tunable bench: one model, cluster, policy and
/// arrival CV; four tunable axes (rate × ubatch × prefill cap × admission
/// batch) crossed with the admission-mode axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSpec {
    /// Bench name (report headers, artifact names).
    pub name: String,
    /// Model under test.
    pub model: ModelId,
    /// Root seed; per-rate workload seeds derive from it.
    pub seed: u64,
    /// Measured horizon per cell, seconds.
    pub horizon_secs: f64,
    /// Warmup excluded from steady-state metrics, seconds.
    pub warmup_secs: f64,
    /// Base latency SLO, seconds.
    pub slo_secs: f64,
    /// Additional SLO budget per generated token, milliseconds.
    pub slo_per_output_token_ms: f64,
    /// Background fragmentation profile.
    pub background: BackgroundShape,
    /// Request length distribution.
    pub lengths: LengthProfile,
    /// Per-cell event step budget (runaway watchdog).
    pub max_events: u64,
    /// Arrival coefficient of variation (one value: the bench stresses
    /// rate, not burst shape).
    pub cv: f64,
    /// Cluster shape.
    pub cluster: ClusterShape,
    /// The policy serving every cell.
    pub policy: PolicySpec,
    /// Request-rate axis, requests/second.
    pub rates: Vec<f64>,
    /// Decode micro-batch size axis.
    pub ubatch_sizes: Vec<u32>,
    /// Chunked-prefill token cap axis.
    pub prefill_token_caps: Vec<u64>,
    /// Admission (prefill) batch axis.
    pub admission_batches: Vec<u32>,
    /// Admission-mode axis; `[Indexed]` benches the fast path alone,
    /// `[Indexed, NaiveScan]` A/Bs it against the reference scan.
    pub admission: Vec<AdmissionMode>,
}

/// One expanded bench cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCell {
    /// Index in expansion order (also the table row order).
    pub index: usize,
    /// Mean request rate, requests/second.
    pub rate: f64,
    /// Decode micro-batch size.
    pub ubatch_size: u32,
    /// Chunked-prefill token cap.
    pub prefill_token_cap: u64,
    /// Admission (prefill) batch.
    pub admission_batch: u32,
    /// Admission mode under test.
    pub admission: AdmissionMode,
    /// Workload seed — derived from the rate alone, so every tunable
    /// configuration and both admission modes face identical traffic.
    pub seed: u64,
}

impl BenchCell {
    /// Stable cell id, e.g. `r100-ub128-pc1024-ab16-indexed`.
    pub fn id(&self) -> String {
        format!(
            "r{}-ub{}-pc{}-ab{}-{}",
            fmt_axis(self.rate),
            self.ubatch_size,
            self.prefill_token_cap,
            self.admission_batch,
            self.admission.label()
        )
    }

    /// The cell's tunable coordinate with the admission mode masked out —
    /// the key under which the two modes must agree metric-for-metric.
    pub fn coordinate(&self) -> (u64, u32, u64, u32) {
        (
            self.rate.to_bits(),
            self.ubatch_size,
            self.prefill_token_cap,
            self.admission_batch,
        )
    }
}

/// Derives a bench cell's workload seed from the spec seed and the rate.
pub fn derive_bench_seed(root: u64, rate: f64) -> u64 {
    mix64(mix64(root ^ 0xBE7C_BE7C_BE7C_BE7C) ^ rate.to_bits())
}

impl BenchSpec {
    /// Expands the bench into its cell grid, in deterministic order:
    /// rates (outer) × ubatch × prefill cap × admission batch × admission
    /// mode (inner — so A/B pairs are adjacent rows).
    pub fn expand(&self) -> Vec<BenchCell> {
        let mut cells = Vec::new();
        for &rate in &self.rates {
            let seed = derive_bench_seed(self.seed, rate);
            for &ubatch_size in &self.ubatch_sizes {
                for &prefill_token_cap in &self.prefill_token_caps {
                    for &admission_batch in &self.admission_batches {
                        for &admission in &self.admission {
                            cells.push(BenchCell {
                                index: cells.len(),
                                rate,
                                ubatch_size,
                                prefill_token_cap,
                                admission_batch,
                                admission,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// The canonical semantic content of one bench cell, for the campaign
    /// cache ([`crate::cache::cell_key`]). Mirrors
    /// [`crate::spec::SweepSpec::cell_semantics`]: `name` and `max_events`
    /// are excluded (cosmetic / watchdog), the axis vectors are captured
    /// by the cell coordinate, and — unlike sweeps — the admission mode
    /// *is* included, because bench cells are the A/B rows whose identity
    /// the mode defines (the modes' metric agreement stays an explicit
    /// [`BenchReport::mode_mismatches`] check, never a cache aliasing).
    pub fn cell_semantics(&self, cell: &BenchCell) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        serde::Value::Map(vec![
            field("experiment", serde::Value::Str("bench".into())),
            field("model", self.model.to_value()),
            field("horizon_secs", self.horizon_secs.to_value()),
            field("warmup_secs", self.warmup_secs.to_value()),
            field("slo_secs", self.slo_secs.to_value()),
            field(
                "slo_per_output_token_ms",
                self.slo_per_output_token_ms.to_value(),
            ),
            field("background", self.background.to_value()),
            field("lengths", self.lengths.to_value()),
            field("cv", self.cv.to_value()),
            field("cluster", self.cluster.to_value()),
            field("policy", self.policy.to_value()),
            field("rate", cell.rate.to_value()),
            field("ubatch_size", cell.ubatch_size.to_value()),
            field("prefill_token_cap", cell.prefill_token_cap.to_value()),
            field("admission_batch", cell.admission_batch.to_value()),
            field("admission", cell.admission.to_value()),
            field("seed", cell.seed.to_value()),
        ])
    }

    /// Validates axis sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.rates.is_empty()
            || self.ubatch_sizes.is_empty()
            || self.prefill_token_caps.is_empty()
            || self.admission_batches.is_empty()
            || self.admission.is_empty()
        {
            return Err("every bench axis needs at least one entry".into());
        }
        if self.rates.iter().any(|&r| !(r.is_finite() && r > 0.0)) {
            return Err("rates must be finite and positive".into());
        }
        if !(self.cv.is_finite() && self.cv > 0.0) {
            return Err("cv must be finite and positive".into());
        }
        if self.ubatch_sizes.contains(&0) || self.admission_batches.contains(&0) {
            return Err("batch sizes must be positive".into());
        }
        if self.horizon_secs <= 0.0 || self.warmup_secs < 0.0 {
            return Err("horizon must be positive and warmup non-negative".into());
        }
        if self.max_events == 0 {
            return Err("max_events watchdog budget must be positive".into());
        }
        let mut modes = std::collections::BTreeSet::new();
        for m in &self.admission {
            if !modes.insert(m.label()) {
                return Err(format!("duplicate admission mode `{}`", m.label()));
            }
        }
        Ok(())
    }

    /// The default high-rate bench (`fleet bench init`): FlexPipe on the
    /// paper testbed at CV 4, rates up to 10× the paper's 20 QPS,
    /// 2×2×2 tunable grid, indexed admission.
    pub fn template() -> BenchSpec {
        BenchSpec {
            name: "engine-bench".into(),
            model: ModelId::Opt66B,
            seed: 42,
            horizon_secs: 45.0,
            warmup_secs: 10.0,
            slo_secs: 2.0,
            slo_per_output_token_ms: 100.0,
            background: BackgroundShape::TestbedLike,
            lengths: LengthProfile::splitwise_like(),
            max_events: 200_000_000,
            cv: 4.0,
            cluster: ClusterShape::PaperTestbed,
            policy: PolicySpec::Paper(flexpipe_bench::SystemId::FlexPipe),
            rates: vec![20.0, 50.0, 100.0, 200.0],
            ubatch_sizes: vec![64, 128],
            prefill_token_caps: vec![512, 1024],
            admission_batches: vec![8, 16],
            admission: vec![AdmissionMode::Indexed],
        }
    }
}

/// One executed bench cell inside the byte-stable artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCellResult {
    /// The tunable coordinate.
    pub cell: BenchCell,
    /// Steady-state simulation metrics (deterministic).
    pub metrics: CellMetrics,
}

/// The byte-stable bench artifact: spec + per-cell simulation metrics.
/// Wall-clock never enters this structure — see [`BenchTiming`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Artifact format version.
    pub version: u32,
    /// The bench that produced this report.
    pub spec: BenchSpec,
    /// Per-cell results in expansion order.
    pub cells: Vec<BenchCellResult>,
}

/// Current [`BenchReport::version`].
pub const BENCH_REPORT_VERSION: u32 = 1;

/// Wall-clock measurement of one bench cell, kept outside the artifact
/// (timing is machine-dependent; the artifact must be byte-stable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchTiming {
    /// Cell index ([`BenchCell::index`]).
    pub index: usize,
    /// Wall-clock seconds the engine run took.
    pub wall_secs: f64,
}

impl BenchReport {
    /// The byte-stable JSON artifact.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Parses a JSON artifact, rejecting version mismatches explicitly.
    pub fn from_json(s: &str) -> Result<BenchReport, serde_json::Error> {
        let report: BenchReport = serde_json::from_str(s)?;
        if u64::from(report.version) != u64::from(BENCH_REPORT_VERSION) {
            return Err(serde_json::Error(format!(
                "bench report is format version {}, this build expects {BENCH_REPORT_VERSION} — \
                 regenerate the artifact",
                report.version
            )));
        }
        Ok(report)
    }

    /// Coordinates at which two admission modes disagreed on *any*
    /// simulation metric. Must be empty — the index is a pure
    /// optimization; a non-empty return is an engine bug.
    pub fn mode_mismatches(&self) -> Vec<String> {
        let mut by_coord: std::collections::BTreeMap<(u64, u32, u64, u32), Vec<&BenchCellResult>> =
            std::collections::BTreeMap::new();
        for c in &self.cells {
            by_coord.entry(c.cell.coordinate()).or_default().push(c);
        }
        let mut bad = Vec::new();
        for group in by_coord.values() {
            if group.iter().any(|c| c.metrics != group[0].metrics) {
                bad.push(group[0].cell.id());
            }
        }
        bad
    }

    /// The per-cell table, joining deterministic metrics with wall-clock
    /// throughput columns (events per wall-second, simulated seconds per
    /// wall-second).
    pub fn table(&self, timings: &[BenchTiming]) -> Table {
        let wall_of = |index: usize| -> Option<f64> {
            timings
                .iter()
                .find(|t| t.index == index)
                .map(|t| t.wall_secs)
        };
        let sim_span = self.spec.warmup_secs + self.spec.horizon_secs;
        let mut t = Table::new(
            &format!("Bench `{}`: engine tunables × rate", self.spec.name),
            &[
                "rate",
                "ubatch",
                "prefill cap",
                "adm batch",
                "mode",
                "offered",
                "completed",
                "SLO att.",
                "goodput/s",
                "events",
                "wall(s)",
                "Mev/s wall",
                "sim-x",
                "status",
            ],
        );
        for c in &self.cells {
            let m = &c.metrics;
            let (wall, mev, simx) = match wall_of(c.cell.index) {
                Some(w) if w > 0.0 => (
                    fmt_f(w, 2),
                    fmt_f(m.events as f64 / w / 1e6, 2),
                    fmt_f(sim_span / w, 1),
                ),
                _ => ("-".into(), "-".into(), "-".into()),
            };
            t.row(vec![
                fmt_axis(c.cell.rate),
                c.cell.ubatch_size.to_string(),
                c.cell.prefill_token_cap.to_string(),
                c.cell.admission_batch.to_string(),
                c.cell.admission.label().to_string(),
                m.offered.to_string(),
                m.completed.to_string(),
                fmt_pct(m.slo_attainment),
                fmt_f(m.goodput_per_sec, 2),
                m.events.to_string(),
                wall,
                mev,
                simx,
                if m.failed {
                    "FAIL"
                } else if m.truncated {
                    "TRUNC"
                } else {
                    "-"
                }
                .to_string(),
            ]);
        }
        t
    }

    /// The indexed-vs-naive comparison table: one row per tunable
    /// coordinate that ran in both modes, with the wall-clock speedup and
    /// a metrics-identical check. Empty when fewer than two modes ran.
    pub fn speedup_table(&self, timings: &[BenchTiming]) -> Option<Table> {
        if self.spec.admission.len() < 2 {
            return None;
        }
        let wall_of = |index: usize| -> Option<f64> {
            timings
                .iter()
                .find(|t| t.index == index)
                .map(|t| t.wall_secs)
        };
        let mut t = Table::new(
            &format!(
                "Bench `{}`: indexed fast path vs naive reference scan",
                self.spec.name
            ),
            &[
                "rate",
                "ubatch",
                "prefill cap",
                "adm batch",
                "indexed(s)",
                "naive(s)",
                "speedup",
                "sim-identical",
            ],
        );
        let mut by_coord: std::collections::BTreeMap<(u64, u32, u64, u32), Vec<&BenchCellResult>> =
            std::collections::BTreeMap::new();
        for c in &self.cells {
            by_coord.entry(c.cell.coordinate()).or_default().push(c);
        }
        for group in by_coord.values() {
            let indexed = group
                .iter()
                .find(|c| c.cell.admission == AdmissionMode::Indexed);
            let naive = group
                .iter()
                .find(|c| c.cell.admission == AdmissionMode::NaiveScan);
            let (Some(ix), Some(nv)) = (indexed, naive) else {
                continue;
            };
            let iw = wall_of(ix.cell.index);
            let nw = wall_of(nv.cell.index);
            let speedup = match (iw, nw) {
                (Some(i), Some(n)) if i > 0.0 => fmt_f(n / i, 2),
                _ => "-".into(),
            };
            t.row(vec![
                fmt_axis(ix.cell.rate),
                ix.cell.ubatch_size.to_string(),
                ix.cell.prefill_token_cap.to_string(),
                ix.cell.admission_batch.to_string(),
                iw.map(|w| fmt_f(w, 2)).unwrap_or_else(|| "-".into()),
                nw.map(|w| fmt_f(w, 2)).unwrap_or_else(|| "-".into()),
                speedup,
                if ix.metrics == nv.metrics {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
        }
        Some(t)
    }
}

/// Result of one hot-path A/B microbench row.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPathRow {
    /// Which engine structure the row measures.
    pub path: &'static str,
    /// Problem size (instances or servers).
    pub scale: usize,
    /// Operations driven through the harness.
    pub ops: usize,
    /// Wall-clock of the indexed run, seconds.
    pub indexed_secs: f64,
    /// Wall-clock of the naive-reference run, seconds.
    pub naive_secs: f64,
    /// Whether both modes produced the identical decision checksum.
    pub identical: bool,
}

/// The `fleet bench --hot-paths` microbench: drives the engine-free churn
/// harnesses behind each incrementally maintained structure (admission
/// index, decode-slot tracker, server-load ranking) at fleet scale in
/// both [`EngineMode`]s, and reports wall-clock speedups plus a
/// decision-checksum identity column. A `false` in that column is an
/// engine bug (the indexes must be pure optimizations) — the CLI exits 2
/// on it.
///
/// `scale` is the instance/server count (the acceptance bar measures at
/// ≥1000); `ops` the per-harness operation count. Wall-clock never enters
/// any artifact.
pub fn hot_path_speedups(scale: usize, ops: usize) -> Vec<HotPathRow> {
    fn timed<F: FnMut(EngineMode) -> u64>(
        path: &'static str,
        scale: usize,
        ops: usize,
        mut run: F,
    ) -> HotPathRow {
        // Warm both paths once so allocator effects don't pollute the
        // measured passes.
        let w1 = run(EngineMode::Indexed);
        let w2 = run(EngineMode::NaiveScan);
        let t = Instant::now();
        let a = run(EngineMode::Indexed);
        let indexed_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let b = run(EngineMode::NaiveScan);
        let naive_secs = t.elapsed().as_secs_f64();
        HotPathRow {
            path,
            scale,
            ops,
            indexed_secs,
            naive_secs,
            identical: a == b && w1 == w2,
        }
    }
    vec![
        timed("admission", scale, ops, |m| churn(scale, ops, m)),
        timed("decode-slot", scale, ops, |m| {
            decode_slot_churn(scale, ops, m)
        }),
        timed("hottest-server", scale, ops / 10, |m| {
            // The naive rebuild is O(servers × GPUs) *per op*; a tenth of
            // the ops keeps the naive pass in CI-smoke territory while
            // the speedup signal stays unmistakable.
            server_load_churn(scale, ops / 10, m)
        }),
    ]
}

/// Renders [`hot_path_speedups`] rows (wall-clock only, never an
/// artifact).
pub fn hot_path_table(rows: &[HotPathRow]) -> Table {
    let mut t = Table::new(
        "Engine hot paths: indexed structures vs naive reference scans",
        &[
            "path",
            "scale",
            "ops",
            "indexed(s)",
            "naive(s)",
            "speedup",
            "identical",
        ],
    );
    for r in rows {
        t.row(vec![
            r.path.to_string(),
            r.scale.to_string(),
            r.ops.to_string(),
            fmt_f(r.indexed_secs, 3),
            fmt_f(r.naive_secs, 3),
            if r.indexed_secs > 0.0 {
                fmt_f(r.naive_secs / r.indexed_secs, 1)
            } else {
                "-".into()
            },
            if r.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Executes one bench cell; returns its deterministic metrics and the
/// wall-clock the engine run took.
pub fn run_bench_cell(
    spec: &BenchSpec,
    cell: &BenchCell,
    setup: &PaperSetup,
) -> (CellMetrics, f64) {
    let warmup = spec.warmup_secs;
    let span = warmup + spec.horizon_secs;
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal {
            rate: cell.rate,
            cv: spec.cv,
        },
        lengths: spec.lengths,
        slo: SimDuration::from_secs_f64(spec.slo_secs),
        slo_per_output_token: SimDuration::from_secs_f64(spec.slo_per_output_token_ms / 1e3),
        horizon_secs: span,
    }
    .generate(&mut SimRng::seed(cell.seed));

    let cut = SimTime::from_secs_f64(warmup);
    let offered = workload
        .requests
        .iter()
        .filter(|r| r.arrival >= cut)
        .count();

    let scenario = Scenario {
        config: EngineConfig {
            ubatch_size: cell.ubatch_size,
            prefill_token_cap: cell.prefill_token_cap,
            prefill_batch: cell.admission_batch,
            admission: cell.admission,
            max_events: spec.max_events,
            ..EngineConfig::default()
        },
        cluster: spec.cluster.cluster(),
        background: spec.background.profile(),
        tier: Default::default(),
        cost: setup.cost,
        workload,
        disruptions: DisruptionScript::default(),
        horizon: SimTime::from_secs_f64(span + 30.0),
        seed: cell.seed,
    };
    let policy = spec.policy.build(cell.rate);
    // Wall-clock brackets the engine run only: workload generation and
    // metric summarisation are identical across modes and would dilute
    // the admission-path signal.
    let started = Instant::now();
    let report = Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy).run();
    let wall_secs = started.elapsed().as_secs_f64();
    (
        summarize_cell(&report, warmup, spec.horizon_secs, offered),
        wall_secs,
    )
}

/// Runs the full bench grid on the worker pool. The report is
/// deterministic; the timings are not (and never enter the artifact).
pub fn run_bench(
    spec: &BenchSpec,
    opts: &RunOptions,
) -> Result<(BenchReport, Vec<BenchTiming>), FleetError> {
    spec.validate().map_err(FleetError)?;
    let cells = spec.expand();
    let n = cells.len();
    let started = Instant::now();
    if !opts.quiet {
        eprintln!(
            "bench `{}`: {} cells ({} rates x {} ubatch x {} prefill caps x {} adm batches x {} modes), model {}",
            spec.name,
            n,
            spec.rates.len(),
            spec.ubatch_sizes.len(),
            spec.prefill_token_caps.len(),
            spec.admission_batches.len(),
            spec.admission.len(),
            spec.model.name(),
        );
    }
    let setup = PaperSetup::for_model(spec.model);
    let threads = effective_threads(opts.threads, n);
    let outcomes = parallel_indexed(n, threads, |i| {
        let cell = &cells[i];
        // Panic containment, as in the sweep runner: one pathological
        // tunable combination reports as FAIL instead of tearing down
        // the grid.
        let out = match catch_unwind(AssertUnwindSafe(|| run_bench_cell(spec, cell, &setup))) {
            Ok(out) => out,
            Err(_) => {
                eprintln!("bench cell {} PANICKED; recorded as failed", cell.id());
                (failed_cell_metrics(), 0.0)
            }
        };
        if !opts.quiet {
            eprintln!(
                "bench {} done in {:.1}s ({} events{})",
                cell.id(),
                out.1,
                out.0.events,
                if out.0.truncated { ", TRUNCATED" } else { "" },
            );
        }
        out
    });

    let mut results = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for (cell, (metrics, wall_secs)) in cells.into_iter().zip(outcomes) {
        timings.push(BenchTiming {
            index: cell.index,
            wall_secs,
        });
        results.push(BenchCellResult { cell, metrics });
    }
    if !opts.quiet {
        eprintln!(
            "bench `{}`: {} cells on {} threads in {:.1}s",
            spec.name,
            n,
            threads,
            started.elapsed().as_secs_f64()
        );
    }
    Ok((
        BenchReport {
            version: BENCH_REPORT_VERSION,
            spec: spec.clone(),
            cells: results,
        },
        timings,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast bench grid for unit tests.
    fn tiny_bench() -> BenchSpec {
        BenchSpec {
            name: "tiny-bench".into(),
            model: ModelId::Llama2_7B,
            seed: 7,
            horizon_secs: 10.0,
            warmup_secs: 2.0,
            slo_secs: 2.0,
            slo_per_output_token_ms: 100.0,
            background: BackgroundShape::Idle,
            lengths: LengthProfile::fixed(64, 4),
            max_events: 20_000_000,
            cv: 1.0,
            cluster: ClusterShape::Custom {
                nodes: 4,
                total_gpus: 6,
                servers_per_rack: 4,
            },
            policy: PolicySpec::Static {
                stages: 2,
                replicas: 1,
            },
            rates: vec![4.0, 8.0],
            ubatch_sizes: vec![32],
            prefill_token_caps: vec![256],
            admission_batches: vec![8],
            admission: vec![AdmissionMode::Indexed, AdmissionMode::NaiveScan],
        }
    }

    #[test]
    fn expansion_is_deterministic_with_rate_only_seeds() {
        let spec = BenchSpec::template();
        let a = spec.expand();
        assert_eq!(a, spec.expand());
        assert_eq!(a.len(), 4 * 2 * 2 * 2);
        // All tunable configs at one rate share the workload seed...
        let r20: Vec<&BenchCell> = a.iter().filter(|c| c.rate == 20.0).collect();
        assert!(r20.iter().all(|c| c.seed == r20[0].seed));
        // ...and rates decorrelate.
        let r50 = a.iter().find(|c| c.rate == 50.0).unwrap();
        assert_ne!(r20[0].seed, r50.seed);
        // Ids are unique.
        let ids: std::collections::BTreeSet<String> = a.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), a.len());
        assert_eq!(a[0].id(), "r20-ub64-pc512-ab8-indexed");
    }

    #[test]
    fn validation_catches_bad_axes() {
        let mut s = BenchSpec::template();
        s.rates.clear();
        assert!(s.validate().is_err());
        let mut s = BenchSpec::template();
        s.ubatch_sizes = vec![0];
        assert!(s.validate().is_err());
        let mut s = BenchSpec::template();
        s.admission = vec![AdmissionMode::Indexed, AdmissionMode::Indexed];
        assert!(s.validate().is_err());
        let mut s = BenchSpec::template();
        s.cv = -1.0;
        assert!(s.validate().is_err());
        assert!(BenchSpec::template().validate().is_ok());
    }

    #[test]
    fn spec_and_report_round_trip_through_json() {
        let spec = BenchSpec::template();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: BenchSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);

        let report = BenchReport {
            version: BENCH_REPORT_VERSION,
            spec,
            cells: Vec::new(),
        };
        let json = report.to_json();
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);

        // Version mismatches are named explicitly.
        let old = json.replacen("\"version\": 1", "\"version\": 0", 1);
        let err = BenchReport::from_json(&old).unwrap_err();
        assert!(err.to_string().contains("format version 0"), "{err}");
    }

    #[test]
    fn bench_runs_deterministically_and_modes_agree() {
        let spec = tiny_bench();
        let opts = RunOptions {
            threads: 2,
            quiet: true,
            ..Default::default()
        };
        let (a, timings) = run_bench(&spec, &opts).unwrap();
        let (b, _) = run_bench(
            &spec,
            &RunOptions {
                threads: 1,
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap();
        // Byte-stable artifact at any thread count.
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(timings.len(), a.cells.len());
        // Cells actually served traffic.
        assert!(a.cells.iter().all(|c| c.metrics.completed > 0));
        // The indexed fast path and the naive scan agree on every metric.
        assert_eq!(a.mode_mismatches(), Vec::<String>::new());
        // Tables render.
        assert!(!a.table(&timings).is_empty());
        assert!(!a.speedup_table(&timings).unwrap().is_empty());
    }
}
