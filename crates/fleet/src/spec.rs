//! The declarative sweep DSL: what to run, expanded into a deterministic
//! grid of scenario cells.
//!
//! A [`SweepSpec`] names a model, a workload envelope and five sweep axes
//! — arrival CV × request rate × cluster shape × disruption trace × policy
//! — optionally fanned into seed-derived replicas, and expands into the
//! full cross product via [`SweepSpec::expand`]. Expansion is pure: the
//! same spec always yields the same cells in the same order, and each
//! cell's root seed is derived by hashing the spec seed with the cell's
//! *workload-defining* coordinates (CV, rate, cluster, disruption, replica
//! — **not** the policy), so every policy in a cell group faces
//! byte-identical traffic, background churn *and disruption trace*. That
//! is what makes per-policy comparisons apples-to-apples and whole reports
//! reproducible.

use flexpipe_bench::SystemId;
use flexpipe_chaos::{DisruptionScript, RandomDisruptions};
use flexpipe_cluster::{BackgroundProfile, ClusterSpec};
use flexpipe_model::ModelId;
use flexpipe_serving::ControlPolicy;
use flexpipe_workload::LengthProfile;
use serde::{DeError, Deserialize, Serialize, Value};

/// Cluster shapes a sweep can run on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterShape {
    /// The paper's 42-server / 82-GPU evaluation testbed (§9).
    PaperTestbed,
    /// Alibaba inference cluster C1 (Table 1): 430 nodes, 468 GPUs.
    AlibabaC1,
    /// Alibaba hybrid cluster C2 (Table 1): 927 nodes, 1175 GPUs.
    AlibabaC2,
    /// A custom heterogeneous cluster (multi-GPU boxes first).
    Custom {
        /// Server count.
        nodes: u32,
        /// Total GPUs across all servers (>= nodes).
        total_gpus: u32,
        /// Servers per rack.
        servers_per_rack: u32,
    },
}

impl ClusterShape {
    /// Materializes the cluster specification.
    pub fn cluster(&self) -> ClusterSpec {
        match self {
            ClusterShape::PaperTestbed => ClusterSpec::paper_testbed(),
            ClusterShape::AlibabaC1 => ClusterSpec::alibaba_c1(),
            ClusterShape::AlibabaC2 => ClusterSpec::alibaba_c2(),
            ClusterShape::Custom {
                nodes,
                total_gpus,
                servers_per_rack,
            } => ClusterSpec::heterogeneous(
                &format!("custom-{nodes}n-{total_gpus}g"),
                *nodes,
                *total_gpus,
                *servers_per_rack,
            ),
        }
    }

    /// Stable label used in reports and seed derivation.
    pub fn label(&self) -> String {
        match self {
            ClusterShape::PaperTestbed => "paper-testbed".into(),
            ClusterShape::AlibabaC1 => "alibaba-c1".into(),
            ClusterShape::AlibabaC2 => "alibaba-c2".into(),
            ClusterShape::Custom {
                nodes,
                total_gpus,
                servers_per_rack,
            } => format!("custom-{nodes}n-{total_gpus}g-{servers_per_rack}r"),
        }
    }
}

/// Background-tenant fragmentation profile selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackgroundShape {
    /// No background tenants (dedicated cluster).
    Idle,
    /// The paper testbed's fragmentation level.
    TestbedLike,
    /// Alibaba C1-calibrated utilisation distribution.
    C1Like,
    /// Alibaba C2-calibrated utilisation distribution.
    C2Like,
}

impl BackgroundShape {
    /// Materializes the background profile.
    pub fn profile(&self) -> BackgroundProfile {
        match self {
            BackgroundShape::Idle => BackgroundProfile::none(),
            BackgroundShape::TestbedLike => BackgroundProfile::testbed_like(),
            BackgroundShape::C1Like => BackgroundProfile::c1_like(),
            BackgroundShape::C2Like => BackgroundProfile::c2_like(),
        }
    }
}

/// A policy under test.
///
/// The paper systems come from `flexpipe-bench`'s registry
/// ([`SystemId::policy`]) so the fleet and the figure harnesses always
/// agree on system sizing; `Static` exposes the §3.3 fixed-pipeline
/// baseline of the motivation experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// One of the five compared systems, paper-faithful sizing.
    Paper(SystemId),
    /// A fixed pipeline: `stages` deep, `replicas` wide, never
    /// reconfigured.
    Static {
        /// Pipeline depth.
        stages: u32,
        /// Replica count.
        replicas: u32,
    },
    /// FlexPipe pinned at a standing fleet of `replicas`: sized as if
    /// historical demand required exactly that many replicas and with
    /// scale-in patience disabled, so the full Algorithm-1 control loop
    /// runs every tick over a fleet that never shrinks. This is the
    /// control-plane profiling configuration (`fleet trace profile`),
    /// where `policy.on_tick` self-time at fleet scale is the
    /// measurement.
    FlexPipeFleet {
        /// Standing replica count the policy is pinned at.
        replicas: u32,
    },
    /// FlexPipe pinned like [`PolicySpec::FlexPipeFleet`] but deployed
    /// at an explicit (deliberately off-target) lattice level with
    /// hysteresis set unreachably high: under near-zero traffic every
    /// control tick is calm, the whole fleet is off-target, and the
    /// Algorithm-1 refactor pass walks it end to end without ever
    /// acting. This is the calm-tick plan-cache profiling configuration
    /// (`fleet trace profile`): the warm path's cached walk versus the
    /// naive reference's full walk, at fleet scale.
    FlexPipeCalm {
        /// Standing replica count the policy is pinned at.
        replicas: u32,
        /// Lattice level the standing fleet deploys at.
        stages: u32,
    },
}

impl PolicySpec {
    /// Stable label used in reports.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Paper(id) => id.name().to_string(),
            PolicySpec::Static { stages, replicas } => format!("Static-{stages}x{replicas}"),
            PolicySpec::FlexPipeFleet { replicas } => format!("FlexPipeFleet-{replicas}"),
            PolicySpec::FlexPipeCalm { replicas, stages } => {
                format!("FlexPipeCalm-{replicas}x{stages}")
            }
        }
    }

    /// Builds the policy, sized for `rate` requests/second mean demand.
    pub fn build(&self, rate: f64) -> Box<dyn ControlPolicy> {
        match self {
            PolicySpec::Paper(id) => id.policy(rate),
            PolicySpec::Static { stages, replicas } => {
                flexpipe_bench::systems::static_pipeline(*stages, *replicas)
            }
            PolicySpec::FlexPipeFleet { replicas } => {
                let mut cfg = flexpipe_bench::systems::flexpipe_config(rate);
                cfg.max_replicas = *replicas;
                // A sizing rate far above any offered load pins the
                // standing fleet at `max_replicas`, and infinite scale-in
                // patience keeps it there when the monitor (correctly)
                // reads demand as low.
                cfg.expected_rate = 1e9;
                cfg.scale_down_patience = u32::MAX;
                Box::new(flexpipe_core::FlexPipePolicy::new(cfg))
            }
            PolicySpec::FlexPipeCalm { replicas, stages } => {
                let mut cfg = flexpipe_bench::systems::flexpipe_config(rate);
                cfg.max_replicas = *replicas;
                // Sizing floor AND ceiling at `replicas`: with the floor,
                // `desired == live` even when the monitor reads demand as
                // zero — every tick is calm, so the refactor pass runs on
                // every tick.
                cfg.min_replicas = *replicas;
                cfg.expected_rate = 1e9;
                cfg.scale_down_patience = u32::MAX;
                // Deploy at an explicit level and make the hysteresis
                // comparison unwinnable: the pass walks a fully off-target
                // fleet and provably never acts — the calm-tick shape the
                // plan cache collapses to O(#levels).
                cfg.initial_stages = Some(*stages);
                cfg.hysteresis = 1e18;
                Box::new(flexpipe_core::FlexPipePolicy::new(cfg))
            }
        }
    }
}

/// A disruption-trace axis entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DisruptionShape {
    /// No disruptions (the pre-chaos behaviour, byte-identical results).
    None,
    /// An explicit timed script, identical across every cell that names it.
    Script(DisruptionScript),
    /// An MTBF-style stochastic process, realized per cell from the cell
    /// seed — which excludes the policy axis, so every policy in a cell
    /// group faces the identical realized trace.
    Random(RandomDisruptions),
}

/// Label characters that survive into cell ids and file names.
fn sanitize_label(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

impl DisruptionShape {
    /// Stable label used in cell ids and seed derivation.
    pub fn label(&self) -> String {
        match self {
            DisruptionShape::None => "none".into(),
            DisruptionShape::Script(s) => format!("s-{}", sanitize_label(&s.name)),
            DisruptionShape::Random(r) => format!("m-{}", sanitize_label(&r.label)),
        }
    }
}

/// A declarative sweep: one model and workload envelope, five grid axes
/// plus an optional per-cell replica fan-out.
///
/// `Deserialize` is implemented by hand (not derived) so that the two
/// post-v1 fields — `disruptions` and `replicas` — default when a spec
/// file omits them: every pre-chaos spec keeps parsing, and keeps
/// producing the identical report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Sweep name (used in report headers and artifact names).
    pub name: String,
    /// Model under test.
    pub model: ModelId,
    /// Root seed; every cell seed derives from it.
    pub seed: u64,
    /// Measured horizon per cell, seconds.
    pub horizon_secs: f64,
    /// Warmup excluded from steady-state metrics, seconds.
    pub warmup_secs: f64,
    /// Base latency SLO, seconds.
    pub slo_secs: f64,
    /// Additional SLO budget per generated token, milliseconds.
    pub slo_per_output_token_ms: f64,
    /// Background fragmentation profile.
    pub background: BackgroundShape,
    /// Request length distribution.
    pub lengths: LengthProfile,
    /// Per-cell event step budget (the runaway-cell watchdog).
    pub max_events: u64,
    /// Arrival-CV axis.
    pub cvs: Vec<f64>,
    /// Request-rate axis (requests/second).
    pub rates: Vec<f64>,
    /// Cluster-shape axis.
    pub clusters: Vec<ClusterShape>,
    /// Policy axis.
    pub policies: Vec<PolicySpec>,
    /// Disruption-trace axis; `[None]` (the default when the field is
    /// omitted from a spec file) reproduces pre-chaos sweeps exactly.
    pub disruptions: Vec<DisruptionShape>,
    /// Seed-derived replicas per cell coordinate (default 1). Replica 0
    /// keeps the coordinate's base seed, so `replicas = 1` sweeps are
    /// byte-identical to sweeps that predate the axis; the per-policy
    /// rollup reports 95% confidence intervals across replicas.
    pub replicas: u32,
}

/// One expanded grid cell: a (cv, rate, cluster, disruption, replica,
/// policy) coordinate plus its derived seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Index in expansion order (also the report row order).
    pub index: usize,
    /// Arrival coefficient of variation.
    pub cv: f64,
    /// Mean request rate, requests/second.
    pub rate: f64,
    /// Cluster shape.
    pub cluster: ClusterShape,
    /// Policy under test.
    pub policy: PolicySpec,
    /// Disruption trace applied to this cell.
    pub disruption: DisruptionShape,
    /// Replica index within the coordinate (0 = the base seed).
    pub replica: u32,
    /// Derived root seed (identical for all policies sharing a workload
    /// coordinate, so systems compete on the same traffic and the same
    /// disruption trace).
    pub seed: u64,
}

impl Cell {
    /// Stable human-readable cell id, e.g. `cv2-r20-paper-testbed-FlexPipe`.
    /// Disruption and replica suffixes only appear when non-default, so
    /// pre-chaos baselines keep matching by id.
    pub fn id(&self) -> String {
        let mut id = format!(
            "cv{}-r{}-{}-{}",
            fmt_axis(self.cv),
            fmt_axis(self.rate),
            self.cluster.label(),
            self.policy.label()
        );
        let dlabel = self.disruption.label();
        if dlabel != "none" {
            id.push('-');
            id.push_str(&dlabel);
        }
        if self.replica > 0 {
            id.push_str(&format!("-rep{}", self.replica));
        }
        id
    }
}

/// Axis value formatting that is filesystem- and label-safe (no `.` for
/// integral values, `p` for the decimal point otherwise).
pub(crate) fn fmt_axis(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x}").replace('.', "p")
    }
}

/// SplitMix64 finalizer used for seed derivation.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives a cell's workload seed from the spec seed and the cell's
/// workload-defining coordinates (policy excluded deliberately). The
/// disruption label only enters the hash when non-default, so every seed
/// produced before the disruption axis existed is reproduced exactly.
pub fn derive_cell_seed(
    root: u64,
    cv: f64,
    rate: f64,
    cluster_label: &str,
    disruption_label: &str,
) -> u64 {
    let mut h = mix64(root ^ 0xF1EE7F1EE7F1EE7);
    h = mix64(h ^ cv.to_bits());
    h = mix64(h ^ rate.to_bits());
    for b in cluster_label.as_bytes() {
        h = mix64(h ^ u64::from(*b));
    }
    if disruption_label != "none" {
        for b in disruption_label.as_bytes() {
            h = mix64(h ^ u64::from(*b));
        }
    }
    h
}

/// Derives the seed of replica `replica` from a coordinate's base seed.
/// Replica 0 *is* the base seed (backward-compatible single-replica
/// sweeps); later replicas decorrelate through the mixer.
pub fn replica_seed(base: u64, replica: u32) -> u64 {
    if replica == 0 {
        base
    } else {
        mix64(base ^ 0x5EED5EED5EED5EED ^ u64::from(replica))
    }
}

impl SweepSpec {
    /// Expands the sweep into its full cell grid, in deterministic order:
    /// clusters (outer) × disruptions × cvs × rates × replicas × policies
    /// (inner). Policies are the innermost axis so consecutive cells share
    /// a workload coordinate — and therefore a seed and disruption trace.
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for cluster in &self.clusters {
            for disruption in &self.disruptions {
                for &cv in &self.cvs {
                    for &rate in &self.rates {
                        let base = derive_cell_seed(
                            self.seed,
                            cv,
                            rate,
                            &cluster.label(),
                            &disruption.label(),
                        );
                        for replica in 0..self.replicas.max(1) {
                            let seed = replica_seed(base, replica);
                            for policy in &self.policies {
                                cells.push(Cell {
                                    index: cells.len(),
                                    cv,
                                    rate,
                                    cluster: cluster.clone(),
                                    policy: policy.clone(),
                                    disruption: disruption.clone(),
                                    replica,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The canonical semantic content of one expanded cell: every spec
    /// field and cell coordinate that can change the cell's metrics, and
    /// nothing that cannot. This is what the campaign cache hashes into
    /// the cell's content key ([`crate::cache::cell_key`]).
    ///
    /// Deliberately excluded:
    ///
    /// - `name` — cosmetic (renaming a sweep must keep its cache warm);
    /// - `max_events` — a watchdog, not a parameter: a cell that finishes
    ///   under one budget finishes identically under any larger one, and
    ///   truncated cells are never cached. This is the resume mechanism —
    ///   a budget-killed campaign re-run recomputes exactly the cells the
    ///   budget cut short. (Lowered budgets are handled at replay time
    ///   instead: [`crate::cache::CellCache::load`] refuses entries whose
    ///   event count no longer fits the current budget);
    /// - the axis vectors and `replicas` — the cell coordinate plus its
    ///   derived `seed` capture them (so appending an axis value dirties
    ///   only the new cells);
    /// - the admission mode — proven byte-identical across modes by the
    ///   equivalence suites.
    pub fn cell_semantics(&self, cell: &Cell) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        serde::Value::Map(vec![
            field("experiment", serde::Value::Str("sweep".into())),
            field("model", self.model.to_value()),
            field("horizon_secs", self.horizon_secs.to_value()),
            field("warmup_secs", self.warmup_secs.to_value()),
            field("slo_secs", self.slo_secs.to_value()),
            field(
                "slo_per_output_token_ms",
                self.slo_per_output_token_ms.to_value(),
            ),
            field("background", self.background.to_value()),
            field("lengths", self.lengths.to_value()),
            field("cv", cell.cv.to_value()),
            field("rate", cell.rate.to_value()),
            field("cluster", cell.cluster.to_value()),
            field("policy", cell.policy.to_value()),
            field("disruption", cell.disruption.to_value()),
            field("seed", cell.seed.to_value()),
        ])
    }

    /// Validates axis sanity, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cvs.is_empty()
            || self.rates.is_empty()
            || self.clusters.is_empty()
            || self.policies.is_empty()
        {
            return Err("every sweep axis needs at least one entry".into());
        }
        if self.cvs.iter().any(|&cv| !(cv.is_finite() && cv > 0.0)) {
            return Err("arrival CVs must be finite and positive".into());
        }
        if self.rates.iter().any(|&r| !(r.is_finite() && r > 0.0)) {
            return Err("rates must be finite and positive".into());
        }
        if self.horizon_secs <= 0.0 || self.warmup_secs < 0.0 {
            return Err("horizon must be positive and warmup non-negative".into());
        }
        if self.max_events == 0 {
            return Err("max_events watchdog budget must be positive".into());
        }
        if self.disruptions.is_empty() {
            return Err("disruptions axis needs at least one entry (use \"None\")".into());
        }
        // Labels feed both cell ids and seed derivation; two axis entries
        // collapsing to one label (e.g. names differing only in
        // punctuation) would silently alias cells.
        let mut labels = std::collections::BTreeSet::new();
        for d in &self.disruptions {
            if !labels.insert(d.label()) {
                return Err(format!(
                    "duplicate disruption label `{}` (names must differ alphanumerically)",
                    d.label()
                ));
            }
        }
        if self.replicas == 0 {
            return Err("replicas must be at least 1".into());
        }
        // Disruption targets must be valid on *every* cluster of the sweep
        // so the same trace stays meaningful across the whole grid.
        for d in &self.disruptions {
            match d {
                DisruptionShape::None => {}
                DisruptionShape::Script(s) => {
                    for c in &self.clusters {
                        let spec = c.cluster();
                        s.validate(spec.total_gpus(), spec.servers.len() as u32)
                            .map_err(|e| format!("disruption script `{}`: {e}", s.name))?;
                    }
                }
                DisruptionShape::Random(r) => r
                    .validate()
                    .map_err(|e| format!("disruption generator `{}`: {e}", r.label))?,
            }
        }
        Ok(())
    }

    /// The template sweep written by `flexpipe-fleet init`: a 24-cell grid
    /// (4 CVs × 2 rates × 1 cluster × 3 policies) matching the paper's
    /// §9.2 sensitivity axis.
    pub fn template() -> SweepSpec {
        SweepSpec {
            name: "cv-rate-sensitivity".into(),
            model: ModelId::Opt66B,
            seed: 42,
            horizon_secs: 120.0,
            warmup_secs: 30.0,
            slo_secs: 2.0,
            slo_per_output_token_ms: 100.0,
            background: BackgroundShape::TestbedLike,
            lengths: LengthProfile::splitwise_like(),
            max_events: 200_000_000,
            cvs: vec![0.5, 2.0, 4.0, 8.0],
            rates: vec![10.0, 20.0],
            clusters: vec![ClusterShape::PaperTestbed],
            policies: vec![
                PolicySpec::Paper(SystemId::FlexPipe),
                PolicySpec::Paper(SystemId::AlpaServe),
                PolicySpec::Paper(SystemId::ServerlessLlm),
            ],
            disruptions: vec![DisruptionShape::None],
            replicas: 1,
        }
    }
}

/// Required-field lookup for the hand-written [`SweepSpec`] deserializer.
fn req<T: Deserialize>(m: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match serde::value_get(m, key) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(&format!("SweepSpec.{key}"))),
        None => Err(DeError::missing("SweepSpec", key)),
    }
}

/// Optional-field lookup with a default.
fn opt<T: Deserialize>(m: &[(String, Value)], key: &str, default: T) -> Result<T, DeError> {
    match serde::value_get(m, key) {
        Some(Value::Null) | None => Ok(default),
        Some(v) => T::from_value(v).map_err(|e| e.in_field(&format!("SweepSpec.{key}"))),
    }
}

impl Deserialize for SweepSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "SweepSpec", v))?;
        Ok(SweepSpec {
            name: req(m, "name")?,
            model: req(m, "model")?,
            seed: req(m, "seed")?,
            horizon_secs: req(m, "horizon_secs")?,
            warmup_secs: req(m, "warmup_secs")?,
            slo_secs: req(m, "slo_secs")?,
            slo_per_output_token_ms: req(m, "slo_per_output_token_ms")?,
            background: req(m, "background")?,
            lengths: req(m, "lengths")?,
            max_events: req(m, "max_events")?,
            cvs: req(m, "cvs")?,
            rates: req(m, "rates")?,
            clusters: req(m, "clusters")?,
            policies: req(m, "policies")?,
            disruptions: opt(m, "disruptions", vec![DisruptionShape::None])?,
            replicas: opt(m, "replicas", 1)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_complete() {
        let spec = SweepSpec::template();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4 * 2 * 3);
        for (i, c) in a.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn policies_share_workload_seeds() {
        let spec = SweepSpec::template();
        let cells = spec.expand();
        // Consecutive policy cells of one coordinate share the seed...
        assert_eq!(cells[0].seed, cells[1].seed);
        assert_eq!(cells[0].seed, cells[2].seed);
        // ...while different coordinates get different seeds.
        assert_ne!(cells[0].seed, cells[3].seed);
    }

    #[test]
    fn seed_derivation_depends_on_every_coordinate() {
        let base = derive_cell_seed(1, 2.0, 20.0, "paper-testbed", "none");
        assert_ne!(
            base,
            derive_cell_seed(2, 2.0, 20.0, "paper-testbed", "none")
        );
        assert_ne!(
            base,
            derive_cell_seed(1, 4.0, 20.0, "paper-testbed", "none")
        );
        assert_ne!(
            base,
            derive_cell_seed(1, 2.0, 10.0, "paper-testbed", "none")
        );
        assert_ne!(base, derive_cell_seed(1, 2.0, 20.0, "alibaba-c1", "none"));
        assert_ne!(
            base,
            derive_cell_seed(1, 2.0, 20.0, "paper-testbed", "s-preempt")
        );
    }

    #[test]
    fn replica_zero_keeps_the_base_seed() {
        let base = derive_cell_seed(1, 2.0, 20.0, "paper-testbed", "none");
        assert_eq!(replica_seed(base, 0), base);
        assert_ne!(replica_seed(base, 1), base);
        assert_ne!(replica_seed(base, 1), replica_seed(base, 2));
    }

    #[test]
    fn replicas_fan_out_and_share_seeds_per_policy() {
        let mut spec = SweepSpec::template();
        spec.replicas = 3;
        let cells = spec.expand();
        assert_eq!(cells.len(), 4 * 2 * 3 * 3);
        // Within one replica, policies share the seed...
        assert_eq!(cells[0].seed, cells[1].seed);
        // ...across replicas seeds differ...
        assert_ne!(cells[0].seed, cells[3].seed);
        // ...and replica 0 matches the unreplicated sweep.
        let mut single = SweepSpec::template();
        single.replicas = 1;
        assert_eq!(single.expand()[0].seed, cells[0].seed);
        // Ids stay unique.
        let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn disruption_axis_expands_with_stable_labels() {
        use flexpipe_chaos::{Disruption, DisruptionEvent};
        let mut spec = SweepSpec::template();
        spec.disruptions = vec![
            DisruptionShape::None,
            DisruptionShape::Script(DisruptionScript {
                name: "preempt one".into(),
                events: vec![DisruptionEvent {
                    at_secs: 30.0,
                    kind: Disruption::HotServerPreempt {
                        rank: 0,
                        grace_secs: 10.0,
                    },
                }],
            }),
        ];
        assert!(spec.validate().is_ok());
        let cells = spec.expand();
        assert_eq!(cells.len(), 2 * 4 * 2 * 3);
        // The undisrupted half keeps pre-chaos ids and seeds.
        assert_eq!(cells[0].id(), "cv0p5-r10-paper-testbed-FlexPipe");
        let old = derive_cell_seed(spec.seed, 0.5, 10.0, "paper-testbed", "none");
        assert_eq!(cells[0].seed, old);
        // The disrupted half is labelled and reseeded.
        let disrupted = cells
            .iter()
            .find(|c| c.disruption != DisruptionShape::None)
            .unwrap();
        assert!(disrupted.id().ends_with("-s-preempt-one"));
        // Policies within a disrupted coordinate still share the seed.
        let twins: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.disruption != DisruptionShape::None && c.cv == 0.5 && c.rate == 10.0)
            .collect();
        assert_eq!(twins.len(), 3);
        assert!(twins.iter().all(|c| c.seed == twins[0].seed));
    }

    #[test]
    fn validate_checks_disruption_targets_against_every_cluster() {
        use flexpipe_chaos::{Disruption, DisruptionEvent};
        let mut spec = SweepSpec::template();
        spec.disruptions = vec![DisruptionShape::Script(DisruptionScript {
            name: "oob".into(),
            events: vec![DisruptionEvent {
                at_secs: 1.0,
                kind: Disruption::GpuFail { gpu: 999 },
            }],
        })];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::template();
        spec.disruptions.clear();
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::template();
        spec.replicas = 0;
        assert!(spec.validate().is_err());
        // Colliding labels (names differing only in punctuation) refused.
        let mut spec = SweepSpec::template();
        let script = |name: &str| {
            DisruptionShape::Script(DisruptionScript {
                name: name.into(),
                events: Vec::new(),
            })
        };
        spec.disruptions = vec![script("hot 1"), script("hot-1")];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn old_specs_without_new_fields_still_parse() {
        let spec = SweepSpec::template();
        let mut json = serde_json::to_string_pretty(&spec).unwrap();
        // Strip the new fields, emulating a pre-chaos spec file.
        assert!(json.contains("\"disruptions\""));
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let serde::Value::Map(m) = v else { panic!() };
        let m: Vec<(String, serde::Value)> = m
            .into_iter()
            .filter(|(k, _)| k != "disruptions" && k != "replicas")
            .collect();
        json = serde_json::to_string(&serde::Value::Map(m)).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec, "defaults must reproduce the template");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            PolicySpec::Static {
                stages: 4,
                replicas: 2
            }
            .label(),
            "Static-4x2"
        );
        assert_eq!(PolicySpec::Paper(SystemId::FlexPipe).label(), "FlexPipe");
        assert_eq!(ClusterShape::PaperTestbed.label(), "paper-testbed");
        let cell = &SweepSpec::template().expand()[0];
        assert_eq!(cell.id(), "cv0p5-r10-paper-testbed-FlexPipe");
    }

    #[test]
    fn validation_catches_bad_axes() {
        let mut spec = SweepSpec::template();
        spec.cvs.clear();
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::template();
        spec.rates = vec![-1.0];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::template();
        spec.max_events = 0;
        assert!(spec.validate().is_err());
        assert!(SweepSpec::template().validate().is_ok());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SweepSpec::template();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
