//! The `flexpipe-fleet` CLI: declarative scenario sweeps over the FlexPipe
//! serving simulator.
//!
//! ```text
//! flexpipe-fleet init [spec.json]                 write a 24-cell template sweep
//! flexpipe-fleet run <spec.{json,toml}> [options] execute the sweep in parallel
//!     --out <report.json>     write the JSON artifact (default: <spec>.report.json)
//!     --threads <n>           worker threads (default: one per core)
//!     --quiet                 suppress per-cell progress on stderr
//!     --admission <mode>      `indexed` (default) or `naive` — byte-identical
//!                             reports, different wall-clock
//!     --gate <baseline.json>  one-shot CI mode: gate the fresh report
//!                             against a committed baseline after the run
//!     --tolerance <frac>      gate tolerance when --gate is given
//!     --verbose               structured per-cell start/finish lines on
//!                             stderr (wall ms, truncation flag)
//! flexpipe-fleet bench init [bench.json]          write the engine-tunable bench template
//! flexpipe-fleet bench <bench.json> [options]     sweep engine tunables × rates
//!     --out <report.json>     write the byte-stable artifact (wall-clock excluded)
//!     --threads <n>           worker threads (use 1 for clean A/B timing)
//!     --rates <a,b,..>        override the spec's rate axis (CI smoke: --rates 100)
//!     --hot-paths             also run the engine-free hot-path microbench
//!                             (admission / decode-slot / hottest-server at
//!                             1500 instances/servers): speedup table + exit 2
//!                             if any index diverges from its naive reference
//!     --quiet                 suppress per-cell progress on stderr
//! flexpipe-fleet campaign init [campaign.json]    write the CI campaign template
//! flexpipe-fleet campaign <campaign.(json|toml)> [options]
//!     --out-dir <dir>         artifact directory (default <name>.campaign):
//!                             one <spec>.report.json per entry + campaign.json
//!     --cache <dir>           override the spec's cache directory
//!     --no-cache              compute every cell, touch no cache
//!     --threads <n>           worker threads (default: one per core)
//!     --quiet                 suppress per-cell progress on stderr
//!     --admission <mode>      `indexed` (default) or `naive`
//!     --assert-warm           exit 2 unless every cell was a cache hit
//!     --gate <dir>            gate each sweep artifact against the same-named
//!                             report in <dir>; exit 2 on any regression
//!     --tolerance <frac>      gate tolerance when --gate is given
//!     --verbose               per-cell start/finish lines with cache
//!                             hit/miss and wall ms on stderr
//! flexpipe-fleet campaign assemble <campaign.(json|toml)> [options]
//!     --cache <dir>           override the spec's cache directory
//!     --out-dir <dir>         artifact directory (default <name>.campaign);
//!                             assembles the manifest + reports from the
//!                             cache alone — no cell is ever computed.
//!                             Exit 2 naming every missing key when the
//!                             cache is incomplete: the push-button "did
//!                             the worker fleet finish?" check
//! flexpipe-fleet worker <campaign.(json|toml)> [options]
//!     --cache <dir>           override the spec's cache directory
//!     --store localdisk|log   backend for a fresh cache dir (an existing
//!                             dir keeps its detected backend)
//!     --shard i/n             deterministic shard mode: take exactly the
//!                             cells whose key hashes to shard i of n
//!                             (stateless, no coordination)
//!     --claim-ttl <dur>       claim mode (default): heartbeat TTL after
//!                             which a peer's claim is presumed dead and
//!                             reaped (default 60s)
//!     --worker-id <id>        claim identity (default w<pid>; give each
//!                             machine a stable unique id)
//!     --max-cells <n>         stop after computing n cells (chunked
//!                             draining)
//!     --threads <n>           worker threads (default: one per core)
//!     --quiet                 suppress per-cell progress on stderr
//!     --admission <mode>      `indexed` (default) or `naive`
//! flexpipe-fleet trace record <spec.(json|toml)> [options]
//!     --cell <id>             cell to trace (default: the grid's first cell)
//!     --mode off|ring[:N]|full  recorder mode (default full)
//!     --out <trace.jsonl>     trace file (default <cell-id>.trace.jsonl);
//!                             virtual-time stamped, byte-stable across
//!                             thread counts and admission modes
//!     --admission <mode>      `indexed` (default) or `naive`
//! flexpipe-fleet trace summarize <trace.jsonl>    per-kind counts + occupancy table
//! flexpipe-fleet trace diff <a.jsonl> <b.jsonl>   semantic first-divergence report
//!                                                 (per-entity, modulo the commutation
//!                                                 relation); exit 0 equivalent, 2 diverged
//!     --textual               compare raw lines instead (the old byte-level diff)
//! flexpipe-fleet trace profile [--instances N]    engine dispatch self-time table
//!                                                 (default 1500 instances), incl.
//!                                                 the policy.on_tick row, then the
//!                                                 FlexPipe control-plane comparisons:
//!                                                 on_tick self-time warm-start
//!                                                 (indexed) vs from-scratch (naive),
//!                                                 and the calm-tick plan cache vs
//!                                                 the per-tick refactor-pass walk;
//!                                                 exit 2 if either speedup falls
//!                                                 below the floor
//!     --min-speedup <x>       required indexed-vs-naive on_tick speedup
//!                             (default 2.0)
//!     --json                  print the speedup-gate report as JSON on
//!                             stdout (same schema as the `bench --live`
//!                             scaling gate); tables move to stderr
//! flexpipe-fleet serve init [serve.json]          write the live-serve spec template
//! flexpipe-fleet serve <serve.json> [options]     run the sharded live-serving gateway
//!     --out-dir <dir>         artifact directory (default <name>.serve):
//!                             recording.json + one shard<i>.report.json per shard
//!     --time-scale <x>        virtual seconds per wall second (default 1.0;
//!                             e.g. 50 fast-forwards a 10s spec into 200ms)
//!     --unpaced               virtual pacing: no wall clock at all, run is
//!                             byte-stable outright
//!     --spill least-loaded[:T] cross-shard spillover: re-place a request on
//!                             the least-loaded shard when its home shard is
//!                             more than T requests deeper (default: none)
//! flexpipe-fleet serve replay <recording.json> [--out-dir <dir>]
//!                                                 re-execute a recorded live run;
//!                                                 per-shard reports are byte-identical
//!                                                 to the recorded run's, and the
//!                                                 re-assembled recording must equal
//!                                                 the input (exit 2 otherwise)
//! flexpipe-fleet bench --live [options]           shard-scaling live bench + QPS gate
//!     --spec <serve.json>     base serve spec (default: the pinned scaling workload)
//!     --shards <a,b,..>       shard counts to sweep (default 1,2,4)
//!     --out <artifact.json>   byte-stable scaling artifact (wall-clock excluded)
//!     --min-scaling <x>       required 2-shard QPS scaling vs 1 shard
//!                             (default 1.6); exit 2 below the floor
//!     --horizon <secs>        override the spec's serving horizon (CI smoke)
//!     --rate <r/s>            override the spec's offered rate (CI smoke)
//!     --json                  print the speedup-gate report as JSON on stdout;
//!                             tables move to stderr
//! flexpipe-fleet check equiv <a.jsonl> <b.jsonl>  semantic trace equivalence; exit 0
//!                                                 equivalent, 2 with the first per-entity
//!                                                 divergence otherwise
//! flexpipe-fleet check equiv --cross-shard [--shards N] [--spec serve.json]
//!                                                 serve the pinned non-interfering workload
//!                                                 at N shards (default 2) and at 1 shard,
//!                                                 then require the merged request streams
//!                                                 to be semantically equivalent to the
//!                                                 canonical trace (request-stream
//!                                                 projection + per-request-stream instance
//!                                                 alpha-renaming); exit 2 on divergence
//! flexpipe-fleet check explore [options]          bounded interleaving exploration of the
//!                                                 committed checker scenarios; exit 2 if any
//!                                                 scenario's verdict contradicts its
//!                                                 committed expectation
//!     --scenario <name>       explore one scenario (default: every committed
//!                             exploration target; the fingerprint probe is
//!                             fingerprinted, not explored)
//!     --max-schedules <n>     schedule budget per scenario (default 2048)
//!     --no-prune              disable persistent-set pruning
//! flexpipe-fleet check pin                        recompute the probe scenario's semantic
//!                                                 fingerprint; exit 2 if it drifted from
//!                                                 the pinned constant
//! flexpipe-fleet cache stats <dir> [--claim-ttl <dur>]
//!                                                 cache entry / claim / size / age
//!                                                 summary (claims counted separately
//!                                                 from cell entries)
//! flexpipe-fleet cache gc <dir> [--max-age <dur>] [--max-bytes <N>]
//!                                                 drop entries older than e.g. 7d
//!                                                 and/or LRU-evict (oldest first)
//!                                                 down to a total size cap; live
//!                                                 worker claims are never reaped
//! flexpipe-fleet fingerprint                      print the cell-cache salt
//! flexpipe-fleet compare <report.json>            render the tables of an artifact
//! flexpipe-fleet gate <report.json> --baseline <base.json> [options]
//!     --tolerance <frac>      allowed relative degradation (default 0.02)
//!     --strict-cells          grid changes fail the gate
//! ```
//!
//! Exit codes: 0 success / gate pass, 1 usage or I/O error, 2 gate /
//! `--assert-warm` / bench-mode-mismatch fail.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use flexpipe_check::{
    check_equiv, explore, semantic_fingerprint, CheckScenario, ExploreConfig,
    PINNED_SEMANTIC_FINGERPRINT,
};
use flexpipe_fleet::{
    assemble_campaign, cache_salt, find_cell, gate::gate, parse_bench, parse_campaign, parse_spec,
    profile_on_tick, profile_on_tick_calm, profile_on_tick_flexpipe, record_cell_trace, run_bench,
    run_campaign, run_sweep, run_worker, AssembleOutcome, BenchSpec, CampaignOptions, CampaignSpec,
    CellCache, FleetReport, GateConfig, RunOptions, SpecReport, SpeedupGate, SpeedupGateReport,
    StoreKind, SweepSpec, WorkerOptions,
};
use flexpipe_gateway::{
    pinned_live_spec, replay_with, run_live_bench, serve_with, LeastLoadedSpillover,
    LiveBenchArtifact, LiveBenchTiming, NoSpillover, Pacing, PaperSetup, Recording, ServeOutcome,
    ServeSpec, SpilloverPolicy,
};
use flexpipe_metrics::{fmt_f, Table};
use flexpipe_obs::{first_divergence, parse_jsonl, TraceRecord, TraceSummary};
use flexpipe_serving::{AdmissionMode, ObservedRun, TraceMode, ENGINE_SEMANTICS_VERSION};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  flexpipe-fleet init [spec.json]\n  flexpipe-fleet run <spec.(json|toml)> [--out report.json] [--threads N] [--quiet] [--verbose] [--admission indexed|naive] [--gate baseline.json [--tolerance 0.02]]\n  flexpipe-fleet bench init [bench.json]\n  flexpipe-fleet bench <bench.(json|toml)> [--out report.json] [--threads N] [--rates 100,200] [--hot-paths] [--quiet]\n  flexpipe-fleet campaign init [campaign.json]\n  flexpipe-fleet campaign <campaign.(json|toml)> [--out-dir DIR] [--cache DIR | --no-cache] [--store localdisk|log] [--threads N] [--quiet] [--verbose] [--admission indexed|naive] [--assert-warm] [--gate DIR [--tolerance 0.02]]\n  flexpipe-fleet campaign assemble <campaign.(json|toml)> [--cache DIR] [--out-dir DIR]\n  flexpipe-fleet worker <campaign.(json|toml)> [--cache DIR] [--store localdisk|log] [--shard i/n | --claim-ttl DUR] [--worker-id ID] [--max-cells N] [--threads N] [--quiet] [--admission indexed|naive]\n  flexpipe-fleet trace record <spec.(json|toml)> [--cell ID] [--mode off|ring[:N]|full] [--out trace.jsonl] [--admission indexed|naive]\n  flexpipe-fleet trace summarize <trace.jsonl>\n  flexpipe-fleet trace diff <a.jsonl> <b.jsonl> [--textual]\n  flexpipe-fleet trace profile [--instances N] [--min-speedup X] [--json]\n  flexpipe-fleet serve init [serve.json]\n  flexpipe-fleet serve <serve.json> [--out-dir DIR] [--time-scale X | --unpaced] [--spill least-loaded[:T]]\n  flexpipe-fleet serve replay <recording.json> [--out-dir DIR]\n  flexpipe-fleet bench --live [--spec serve.json] [--shards 1,2,4] [--out artifact.json] [--min-scaling 1.6] [--horizon SECS] [--rate R] [--json]\n  flexpipe-fleet check equiv <a.jsonl> <b.jsonl>\n  flexpipe-fleet check equiv --cross-shard [--shards N] [--spec serve.json]\n  flexpipe-fleet check explore [--scenario NAME] [--max-schedules N] [--no-prune]\n  flexpipe-fleet check pin\n  flexpipe-fleet cache stats <dir> [--claim-ttl DUR]\n  flexpipe-fleet cache gc <dir> [--max-age <90s|15m|12h|7d>] [--max-bytes <N>]\n  flexpipe-fleet fingerprint\n  flexpipe-fleet compare <report.json>\n  flexpipe-fleet gate <report.json> --baseline <baseline.json> [--tolerance 0.02] [--strict-cells]"
    );
    ExitCode::from(1)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(1)
    })
}

fn write(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("cannot write {path}: {e}");
        ExitCode::from(1)
    })
}

fn load_trace(path: &str) -> Result<Vec<TraceRecord>, ExitCode> {
    parse_jsonl(&read(path)?).map_err(|e| {
        eprintln!("cannot parse trace {path}: {e}");
        ExitCode::from(1)
    })
}

fn load_report(path: &str) -> Result<FleetReport, ExitCode> {
    let text = read(path)?;
    FleetReport::from_json(&text).map_err(|e| {
        eprintln!("cannot parse report {path}: {e}");
        ExitCode::from(1)
    })
}

/// Pulls the value following a `--flag` out of the argument list.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ExitCode> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            return Err(ExitCode::from(1));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pulls a boolean `--flag` out of the argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Pulls `--admission indexed|naive` out of the argument list.
fn parse_admission(args: &mut Vec<String>) -> Result<AdmissionMode, ExitCode> {
    match take_flag_value(args, "--admission")? {
        None => Ok(AdmissionMode::default()),
        Some(v) => AdmissionMode::parse(&v).ok_or_else(|| {
            eprintln!("--admission must be `indexed` or `naive`, got `{v}`");
            ExitCode::from(1)
        }),
    }
}

/// Pulls `--store localdisk|log` out of the argument list.
fn parse_store(args: &mut Vec<String>) -> Result<Option<StoreKind>, ExitCode> {
    match take_flag_value(args, "--store")? {
        None => Ok(None),
        Some(v) => StoreKind::parse(&v).map(Some).ok_or_else(|| {
            eprintln!("--store must be `localdisk` or `log`, got `{v}`");
            ExitCode::from(1)
        }),
    }
}

/// Parses a campaign file and resolves its base directory (entry paths
/// and the spec's `cache_dir` resolve relative to the campaign file, so
/// every campaign-shaped subcommand behaves identically from any working
/// directory).
fn load_campaign(spec_path: &str) -> Result<(CampaignSpec, PathBuf), ExitCode> {
    let spec = parse_campaign(spec_path, &read(spec_path)?).map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;
    let base_dir = Path::new(spec_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."))
        .to_path_buf();
    Ok((spec, base_dir))
}

fn cmd_init(args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "sweep.json".to_string());
    let spec = SweepSpec::template();
    let json = serde_json::to_string_pretty(&spec).map_err(|e| {
        eprintln!("template serialization failed: {e}");
        ExitCode::from(1)
    })?;
    write(&path, &format!("{json}\n"))?;
    eprintln!(
        "wrote template sweep ({} cells) to {path}",
        spec.expand().len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let out = take_flag_value(&mut args, "--out")?;
    let threads = match take_flag_value(&mut args, "--threads")? {
        Some(t) => t.parse::<usize>().map_err(|_| {
            eprintln!("--threads needs an integer");
            ExitCode::from(1)
        })?,
        None => 0,
    };
    let quiet = take_flag(&mut args, "--quiet");
    let verbose = take_flag(&mut args, "--verbose");
    let admission = parse_admission(&mut args)?;
    let gate_baseline = take_flag_value(&mut args, "--gate")?;
    let tolerance = match take_flag_value(&mut args, "--tolerance")? {
        Some(t) => t.parse::<f64>().map_err(|_| {
            eprintln!("--tolerance needs a number (e.g. 0.02)");
            ExitCode::from(1)
        })?,
        None => GateConfig::default().tolerance,
    };
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };

    let spec = parse_spec(spec_path, &read(spec_path)?).map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;
    let report = run_sweep(
        &spec,
        &RunOptions {
            threads,
            quiet,
            admission,
            verbose,
        },
    )
    .map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;

    println!("{}", report.policy_table().render());
    println!("{}", report.cell_table().render());

    let out_path = out.unwrap_or_else(|| format!("{}.report.json", spec.name));
    write(&out_path, &report.to_json())?;
    eprintln!("wrote report to {out_path}");

    // One-shot CI mode: run-and-gate in a single invocation, exit code
    // matching the `gate` subcommand (2 on regression).
    if let Some(baseline_path) = gate_baseline {
        let cfg = GateConfig {
            tolerance,
            ..GateConfig::default()
        };
        let baseline = load_report(&baseline_path)?;
        let outcome = gate(&baseline, &report, &cfg);
        print!("{}", outcome.render(&cfg));
        if !outcome.passed(&cfg) {
            return Ok(ExitCode::from(2));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    // `bench --live`: the shard-scaling live bench (gateway crate).
    if take_flag(&mut args, "--live") {
        return cmd_bench_live(args);
    }

    // `bench init [path]`: write the engine-tunable template.
    if args.first().map(String::as_str) == Some("init") {
        let path = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "bench.json".to_string());
        let spec = BenchSpec::template();
        let json = serde_json::to_string_pretty(&spec).map_err(|e| {
            eprintln!("template serialization failed: {e}");
            ExitCode::from(1)
        })?;
        write(&path, &format!("{json}\n"))?;
        eprintln!(
            "wrote template bench ({} cells) to {path}",
            spec.expand().len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let out = take_flag_value(&mut args, "--out")?;
    let threads = match take_flag_value(&mut args, "--threads")? {
        Some(t) => t.parse::<usize>().map_err(|_| {
            eprintln!("--threads needs an integer");
            ExitCode::from(1)
        })?,
        None => 0,
    };
    let quiet = take_flag(&mut args, "--quiet");
    let rates = take_flag_value(&mut args, "--rates")?;
    let hot_paths = take_flag(&mut args, "--hot-paths");
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };

    let mut spec: BenchSpec = parse_bench(spec_path, &read(spec_path)?).map_err(|e| {
        eprintln!("cannot parse bench spec {spec_path}: {e}");
        ExitCode::from(1)
    })?;
    if let Some(rates) = rates {
        let parsed: Result<Vec<f64>, _> = rates.split(',').map(str::parse::<f64>).collect();
        spec.rates = parsed.map_err(|_| {
            eprintln!("--rates needs a comma-separated number list (e.g. 100,200)");
            ExitCode::from(1)
        })?;
    }

    let (report, timings) = run_bench(
        &spec,
        &RunOptions {
            threads,
            quiet,
            ..Default::default()
        },
    )
    .map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;

    println!("{}", report.table(&timings).render());
    if let Some(t) = report.speedup_table(&timings) {
        println!("{}", t.render());
    }
    // Write the artifact before judging mode agreement: on a mismatch —
    // an engine bug by definition — the per-cell metrics in the artifact
    // are exactly the evidence needed to debug it.
    let out_path = out.unwrap_or_else(|| format!("{}.report.json", spec.name));
    write(&out_path, &report.to_json())?;
    eprintln!("wrote bench report to {out_path} (wall-clock excluded: artifact is byte-stable)");

    let mismatches = report.mode_mismatches();
    if !mismatches.is_empty() {
        eprintln!(
            "ERROR: admission modes disagreed on simulation metrics at: {}",
            mismatches.join(", ")
        );
        return Ok(ExitCode::from(2));
    }

    // The engine-free hot-path microbench: each incremental structure vs
    // its retained naive scan at fleet scale (1500 instances/servers —
    // the ≥1000 tier the acceptance bar measures). Wall-clock only; the
    // decision checksums must be identical, or the "pure optimization"
    // contract is broken and we exit 2 like a mode mismatch.
    if hot_paths {
        let rows = flexpipe_fleet::hot_path_speedups(1500, 120_000);
        println!("{}", flexpipe_fleet::hot_path_table(&rows).render());
        if rows.iter().any(|r| !r.identical) {
            eprintln!("ERROR: a hot-path index diverged from its naive reference scan");
            return Ok(ExitCode::from(2));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Pulls `--spill least-loaded[:T]` out of the argument list.
fn parse_spill(args: &mut Vec<String>) -> Result<Box<dyn SpilloverPolicy>, ExitCode> {
    match take_flag_value(args, "--spill")? {
        None => Ok(Box::new(NoSpillover)),
        Some(v) => {
            let (kind, threshold) = match v.split_once(':') {
                Some((k, t)) => {
                    let t = t.parse::<usize>().map_err(|_| {
                        eprintln!("--spill least-loaded:<T> needs an integer threshold, got `{v}`");
                        ExitCode::from(1)
                    })?;
                    (k, t)
                }
                None => (v.as_str(), 0),
            };
            if kind != "least-loaded" {
                eprintln!("--spill must be `least-loaded` or `least-loaded:<T>`, got `{v}`");
                return Err(ExitCode::from(1));
            }
            Ok(Box::new(LeastLoadedSpillover { threshold }))
        }
    }
}

/// Writes a serve outcome's artifact set: the recording plus one
/// per-shard report, all byte-stable given the recording.
fn write_serve_artifacts(dir: &str, outcome: &ServeOutcome) -> Result<(), ExitCode> {
    std::fs::create_dir_all(dir).map_err(|e| {
        eprintln!("cannot create {dir}: {e}");
        ExitCode::from(1)
    })?;
    write(
        &format!("{dir}/recording.json"),
        &outcome.recording.to_json(),
    )?;
    for r in &outcome.reports {
        write(&format!("{dir}/shard{}.report.json", r.shard), &r.to_json())?;
    }
    Ok(())
}

/// Per-shard steady-state summary table for `fleet serve`.
fn serve_table(outcome: &ServeOutcome) -> Table {
    let mut t = Table::new(
        "per-shard live serve (steady state)",
        &[
            "shard",
            "cluster",
            "arrivals",
            "completed",
            "within-SLO",
            "p50 TTFT (s)",
            "p99 TTFT (s)",
            "events",
        ],
    );
    for r in &outcome.reports {
        t.row(vec![
            r.shard.to_string(),
            r.cluster.clone(),
            r.arrivals.to_string(),
            r.completed.to_string(),
            r.within_slo.to_string(),
            fmt_f(r.p50_ttft, 4),
            fmt_f(r.p99_ttft, 4),
            r.report.events.to_string(),
        ]);
    }
    t
}

/// `fleet serve`: the sharded live-serving gateway — init a spec, run it
/// live (wall-paced or virtual), or replay a recording.
fn cmd_serve(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    // `serve init [path]`: write the spec template.
    if args.first().map(String::as_str) == Some("init") {
        let path = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "serve.json".to_string());
        let spec = ServeSpec::template();
        let json = serde_json::to_string_pretty(&spec).map_err(|e| {
            eprintln!("template serialization failed: {e}");
            ExitCode::from(1)
        })?;
        write(&path, &format!("{json}\n"))?;
        eprintln!(
            "wrote template serve spec ({} shards) to {path}",
            spec.shards
        );
        return Ok(ExitCode::SUCCESS);
    }

    // `serve replay <recording>`: deterministic re-execution.
    if args.first().map(String::as_str) == Some("replay") {
        args.remove(0);
        let out_dir = take_flag_value(&mut args, "--out-dir")?;
        let [rec_path] = args.as_slice() else {
            return Err(usage());
        };
        let recording = Recording::from_json(&read(rec_path)?).map_err(|e| {
            eprintln!("cannot parse recording {rec_path}: {e}");
            ExitCode::from(1)
        })?;
        let setup = PaperSetup::for_model(recording.spec.model);
        let outcome = replay_with(&recording, &setup, TraceMode::Off).map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(1)
        })?;
        println!("{}", serve_table(&outcome).render());
        // The built-in self-check: a replay re-assembles its own input
        // recording from the replayed shards. A mismatch means the
        // record/replay contract broke — the same class of failure as a
        // gate regression, so the same exit code.
        if outcome.recording.to_json() != recording.to_json() {
            eprintln!("ERROR: replay re-assembled a different recording than its input");
            return Ok(ExitCode::from(2));
        }
        let out_dir = out_dir.unwrap_or_else(|| format!("{}.replay", recording.spec.name));
        write_serve_artifacts(&out_dir, &outcome)?;
        eprintln!(
            "replayed {} arrivals across {} shards; artifacts in {out_dir}",
            recording.arrivals.len(),
            outcome.reports.len(),
        );
        return Ok(ExitCode::SUCCESS);
    }

    let out_dir = take_flag_value(&mut args, "--out-dir")?;
    let unpaced = take_flag(&mut args, "--unpaced");
    let time_scale = match take_flag_value(&mut args, "--time-scale")? {
        Some(v) => v.parse::<f64>().map_err(|_| {
            eprintln!("--time-scale needs a number (e.g. 50)");
            ExitCode::from(1)
        })?,
        None => 1.0,
    };
    let spill = parse_spill(&mut args)?;
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };
    let spec: ServeSpec = serde_json::from_str(&read(spec_path)?).map_err(|e| {
        eprintln!("cannot parse serve spec {spec_path}: {e}");
        ExitCode::from(1)
    })?;
    spec.validate().map_err(|e| {
        eprintln!("{spec_path}: {e}");
        ExitCode::from(1)
    })?;
    let pacing = if unpaced {
        Pacing::Virtual
    } else {
        Pacing::Wall { time_scale }
    };
    eprintln!(
        "serving `{}` on {} shards ({})...",
        spec.name,
        spec.shards,
        if unpaced {
            "virtual pacing".to_string()
        } else {
            format!("wall-paced at {time_scale}x")
        },
    );
    let setup = PaperSetup::for_model(spec.model);
    let outcome =
        serve_with(&spec, pacing, spill.as_ref(), &setup, TraceMode::Off).map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(1)
        })?;
    println!("{}", serve_table(&outcome).render());
    let out_dir = out_dir.unwrap_or_else(|| format!("{}.serve", spec.name));
    write_serve_artifacts(&out_dir, &outcome)?;
    eprintln!(
        "served {} arrivals; recording + {} shard reports in {out_dir} \
         (replay with `serve replay {out_dir}/recording.json`)",
        outcome.recording.arrivals.len(),
        outcome.reports.len(),
    );
    Ok(ExitCode::SUCCESS)
}

/// The sim-derived half of the live bench output (byte-stable rows).
fn live_artifact_table(a: &LiveBenchArtifact) -> Table {
    let mut t = Table::new(
        &format!(
            "live scaling `{}` (sim-derived; identical rows = identical partitioned work)",
            a.spec.name
        ),
        &[
            "shards",
            "arrivals",
            "completed",
            "within-SLO",
            "p50 TTFT (s)",
            "p99 TTFT (s)",
            "events",
            "per-shard completed",
        ],
    );
    for r in &a.rows {
        t.row(vec![
            r.shards.to_string(),
            r.arrivals.to_string(),
            r.completed.to_string(),
            r.within_slo.to_string(),
            fmt_f(r.p50_ttft, 4),
            fmt_f(r.p99_ttft, 4),
            r.events.to_string(),
            r.per_shard_completed
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    t
}

/// The wall-clock half of the live bench output (never byte-compared).
fn live_timing_table(rows: &[LiveBenchTiming]) -> Table {
    let mut t = Table::new(
        "live scaling timing (wall-clock; never enters artifacts)",
        &["shards", "wall (s)", "QPS", "scaling"],
    );
    for r in rows {
        t.row(vec![
            r.shards.to_string(),
            fmt_f(r.wall_secs, 3),
            fmt_f(r.qps, 0),
            format!("{:.2}x", r.scaling),
        ]);
    }
    t
}

/// `fleet bench --live`: serve the pinned (or given) workload at each
/// shard count, write the byte-stable scaling artifact, and gate the
/// 2-shard QPS scaling against its floor.
fn cmd_bench_live(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let spec_path = take_flag_value(&mut args, "--spec")?;
    let out = take_flag_value(&mut args, "--out")?;
    let shard_counts: Vec<u32> = match take_flag_value(&mut args, "--shards")? {
        Some(v) => v
            .split(',')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| {
                eprintln!("--shards needs a comma-separated integer list (e.g. 1,2,4)");
                ExitCode::from(1)
            })?,
        None => vec![1, 2, 4],
    };
    let min_scaling = match take_flag_value(&mut args, "--min-scaling")? {
        Some(v) => v.parse::<f64>().map_err(|_| {
            eprintln!("--min-scaling needs a number (e.g. 1.6)");
            ExitCode::from(1)
        })?,
        None => 1.6,
    };
    let horizon = match take_flag_value(&mut args, "--horizon")? {
        Some(v) => Some(v.parse::<f64>().map_err(|_| {
            eprintln!("--horizon needs a number of seconds");
            ExitCode::from(1)
        })?),
        None => None,
    };
    let rate = match take_flag_value(&mut args, "--rate")? {
        Some(v) => Some(v.parse::<f64>().map_err(|_| {
            eprintln!("--rate needs a number (requests/second)");
            ExitCode::from(1)
        })?),
        None => None,
    };
    let json = take_flag(&mut args, "--json");
    if !args.is_empty() {
        return Err(usage());
    }

    let mut spec = match spec_path {
        Some(p) => serde_json::from_str::<ServeSpec>(&read(&p)?).map_err(|e| {
            eprintln!("cannot parse serve spec {p}: {e}");
            ExitCode::from(1)
        })?,
        None => pinned_live_spec(),
    };
    if let Some(h) = horizon {
        spec.horizon_secs = h;
    }
    if let Some(r) = rate {
        spec.rate = r;
    }
    spec.validate().map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;

    eprintln!(
        "live bench `{}` at shard counts {shard_counts:?}...",
        spec.name
    );
    let setup = PaperSetup::for_model(spec.model);
    let outcome = run_live_bench(&spec, &shard_counts, &setup).map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;

    // With --json, stdout is exactly the gate report (the `trace
    // profile --json` convention); tables move to stderr.
    let tables = format!(
        "{}{}",
        live_artifact_table(&outcome.artifact).render(),
        live_timing_table(&outcome.timing).render(),
    );
    if json {
        eprint!("{tables}");
    } else {
        print!("{tables}");
    }

    let out_path = out.unwrap_or_else(|| format!("{}.live.json", spec.name));
    write(&out_path, &outcome.artifact.to_json())?;
    eprintln!(
        "wrote live bench artifact to {out_path} (wall-clock excluded: artifact is byte-stable)"
    );

    // The QPS gate: 2-shard scaling vs the 1-shard base row.
    let base = outcome.timing.first().filter(|t| t.shards == 1);
    let two = outcome.timing.iter().find(|t| t.shards == 2);
    let (Some(_), Some(two)) = (base, two) else {
        eprintln!("note: scaling gate skipped (needs a leading 1-shard row and a 2-shard row)");
        return Ok(ExitCode::SUCCESS);
    };
    let gate = SpeedupGate::new("live_scaling_2x", two.scaling, min_scaling);
    let line = format!(
        "live scaling at 2 shards: {:.2}x (floor {:.2}x)",
        gate.measured, gate.floor
    );
    if json {
        eprintln!("{line}");
    } else {
        println!("{line}");
    }
    let report = SpeedupGateReport::new(vec![gate]);
    if json {
        print!("{}", report.to_json());
    }
    for g in report.gates.iter().filter(|g| !g.passed) {
        eprintln!(
            "ERROR: {} {:.2}x below the {:.2}x floor",
            g.name, g.measured, g.floor
        );
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn cmd_campaign(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    // `campaign init [path]`: write the CI campaign template.
    if args.first().map(String::as_str) == Some("init") {
        let path = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "campaign.json".to_string());
        let spec = CampaignSpec::template();
        let json = serde_json::to_string_pretty(&spec).map_err(|e| {
            eprintln!("template serialization failed: {e}");
            ExitCode::from(1)
        })?;
        write(&path, &format!("{json}\n"))?;
        eprintln!(
            "wrote template campaign ({} entries) to {path}",
            spec.entries.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    // `campaign assemble <campaign>`: cache-only artifact assembly.
    if args.first().map(String::as_str) == Some("assemble") {
        args.remove(0);
        return cmd_campaign_assemble(args);
    }

    let out_dir = take_flag_value(&mut args, "--out-dir")?;
    let cache_override = take_flag_value(&mut args, "--cache")?;
    let no_cache = take_flag(&mut args, "--no-cache");
    let store = parse_store(&mut args)?;
    let threads = match take_flag_value(&mut args, "--threads")? {
        Some(t) => t.parse::<usize>().map_err(|_| {
            eprintln!("--threads needs an integer");
            ExitCode::from(1)
        })?,
        None => 0,
    };
    let quiet = take_flag(&mut args, "--quiet");
    let verbose = take_flag(&mut args, "--verbose");
    let admission = parse_admission(&mut args)?;
    let assert_warm = take_flag(&mut args, "--assert-warm");
    let gate_dir = take_flag_value(&mut args, "--gate")?;
    let tolerance = match take_flag_value(&mut args, "--tolerance")? {
        Some(t) => t.parse::<f64>().map_err(|_| {
            eprintln!("--tolerance needs a number (e.g. 0.02)");
            ExitCode::from(1)
        })?,
        None => GateConfig::default().tolerance,
    };
    if no_cache && cache_override.is_some() {
        eprintln!("--no-cache and --cache are mutually exclusive");
        return Err(ExitCode::from(1));
    }
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };

    let (spec, base_dir) = load_campaign(spec_path)?;
    let cache_dir = if no_cache {
        None
    } else {
        Some(match cache_override {
            Some(dir) => PathBuf::from(dir),
            None => base_dir.join(&spec.cache_dir),
        })
    };
    let cache_enabled = cache_dir.is_some();

    let result = run_campaign(
        &spec,
        &base_dir,
        &CampaignOptions {
            run: RunOptions {
                threads,
                quiet,
                admission,
                verbose,
            },
            cache_dir,
            store,
        },
    )
    .map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;

    for report in &result.reports {
        match report {
            SpecReport::Sweep(r) => println!("{}", r.policy_table().render()),
            SpecReport::Bench(r) => println!("{}", r.table(&[]).render()),
        }
    }
    println!("{}", result.stats.render(cache_enabled));

    let out_dir = out_dir.unwrap_or_else(|| format!("{}.campaign", spec.name));
    let written = result.write(Path::new(&out_dir)).map_err(|e| {
        eprintln!("cannot write campaign artifacts to {out_dir}: {e}");
        ExitCode::from(1)
    })?;
    eprintln!("wrote {} artifacts to {out_dir}", written.len());

    // Failure checks, in escalating order of specificity; all exit 2.
    let mut failed = false;
    for (entry, report) in result.manifest.entries.iter().zip(&result.reports) {
        if let SpecReport::Bench(r) = report {
            let mismatches = r.mode_mismatches();
            if !mismatches.is_empty() {
                eprintln!(
                    "ERROR: `{}` admission modes disagreed on simulation metrics at: {}",
                    entry.name,
                    mismatches.join(", ")
                );
                failed = true;
            }
        }
    }
    if assert_warm && result.stats.misses > 0 {
        eprintln!(
            "ERROR: --assert-warm, but {} of {} cells missed the cache",
            result.stats.misses, result.stats.cells
        );
        failed = true;
    }
    if let Some(dir) = gate_dir {
        let cfg = GateConfig {
            tolerance,
            ..GateConfig::default()
        };
        for (entry, report) in result.manifest.entries.iter().zip(&result.reports) {
            if let SpecReport::Sweep(candidate) = report {
                let baseline = load_report(&format!("{dir}/{}", entry.report))?;
                let outcome = gate(&baseline, candidate, &cfg);
                print!("[{}] {}", entry.name, outcome.render(&cfg));
                if !outcome.passed(&cfg) {
                    failed = true;
                }
            }
        }
    }
    Ok(if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

/// `fleet campaign assemble`: build the full artifact set from the cache
/// alone. Exit 2 naming every missing key when the cache is incomplete.
fn cmd_campaign_assemble(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let out_dir = take_flag_value(&mut args, "--out-dir")?;
    let cache_override = take_flag_value(&mut args, "--cache")?;
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };
    let (spec, base_dir) = load_campaign(spec_path)?;
    let cache_dir = match cache_override {
        Some(dir) => PathBuf::from(dir),
        None => base_dir.join(&spec.cache_dir),
    };
    let outcome = assemble_campaign(&spec, &base_dir, &cache_dir).map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;
    match outcome {
        AssembleOutcome::Incomplete { missing } => {
            eprintln!(
                "ERROR: cache {} is missing {} of the campaign's cells \
                 (never computed, evicted, truncated, different engine version, \
                 or over the current step budget):",
                cache_dir.display(),
                missing.len(),
            );
            for m in &missing {
                eprintln!("  {}:{} {}", m.entry, m.id, m.key);
            }
            Ok(ExitCode::from(2))
        }
        AssembleOutcome::Complete(result) => {
            println!("{}", result.stats.render(true));
            let out_dir = out_dir.unwrap_or_else(|| format!("{}.campaign", spec.name));
            let written = result.write(Path::new(&out_dir)).map_err(|e| {
                eprintln!("cannot write campaign artifacts to {out_dir}: {e}");
                ExitCode::from(1)
            })?;
            eprintln!(
                "assembled {} artifacts from cache {} into {out_dir}",
                written.len(),
                cache_dir.display(),
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// `fleet worker`: one distributed campaign worker process.
fn cmd_worker(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let cache_override = take_flag_value(&mut args, "--cache")?;
    let store = parse_store(&mut args)?;
    let shard = match take_flag_value(&mut args, "--shard")? {
        None => None,
        Some(v) => {
            let parsed = v
                .split_once('/')
                .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
            match parsed {
                Some((i, n)) if n > 0 && i < n => Some((i, n)),
                _ => {
                    eprintln!("--shard needs i/n with 0 <= i < n (e.g. 0/3), got `{v}`");
                    return Err(ExitCode::from(1));
                }
            }
        }
    };
    let claim_ttl = match take_flag_value(&mut args, "--claim-ttl")? {
        Some(v) => flexpipe_fleet::cache::parse_duration(&v).map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(1)
        })?,
        None => flexpipe_fleet::DEFAULT_CLAIM_TTL,
    };
    let worker_id = take_flag_value(&mut args, "--worker-id")?;
    let max_cells = match take_flag_value(&mut args, "--max-cells")? {
        Some(v) => Some(v.parse::<usize>().map_err(|_| {
            eprintln!("--max-cells needs an integer");
            ExitCode::from(1)
        })?),
        None => None,
    };
    let threads = match take_flag_value(&mut args, "--threads")? {
        Some(t) => t.parse::<usize>().map_err(|_| {
            eprintln!("--threads needs an integer");
            ExitCode::from(1)
        })?,
        None => 0,
    };
    let quiet = take_flag(&mut args, "--quiet");
    let verbose = take_flag(&mut args, "--verbose");
    let admission = parse_admission(&mut args)?;
    let [spec_path] = args.as_slice() else {
        return Err(usage());
    };

    let (spec, base_dir) = load_campaign(spec_path)?;
    let cache_dir = match cache_override {
        Some(dir) => PathBuf::from(dir),
        None => base_dir.join(&spec.cache_dir),
    };
    let mut opts = WorkerOptions {
        run: RunOptions {
            threads,
            quiet,
            admission,
            verbose,
        },
        shard,
        claim_ttl,
        max_cells,
        store,
        ..Default::default()
    };
    if let Some(id) = worker_id {
        opts.worker_id = id;
    }
    run_worker(&spec, &base_dir, &cache_dir, &opts)
        .map(|_| ExitCode::SUCCESS)
        .map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(1)
        })
}

fn cmd_trace(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    if args.is_empty() {
        return Err(usage());
    }
    let verb = args.remove(0);
    match verb.as_str() {
        "record" => {
            let cell_id = take_flag_value(&mut args, "--cell")?;
            let mode = match take_flag_value(&mut args, "--mode")? {
                None => TraceMode::Full,
                Some(v) => TraceMode::parse(&v).ok_or_else(|| {
                    eprintln!("--mode must be off, ring, ring:<n> or full, got `{v}`");
                    ExitCode::from(1)
                })?,
            };
            let out = take_flag_value(&mut args, "--out")?;
            let admission = parse_admission(&mut args)?;
            let [spec_path] = args.as_slice() else {
                return Err(usage());
            };
            let spec = parse_spec(spec_path, &read(spec_path)?).map_err(|e| {
                eprintln!("{e}");
                ExitCode::from(1)
            })?;
            spec.validate().map_err(|e| {
                eprintln!("{spec_path}: {e}");
                ExitCode::from(1)
            })?;
            let cell = match &cell_id {
                Some(id) => find_cell(&spec, id).ok_or_else(|| {
                    eprintln!("no cell `{id}` in {spec_path}; the grid has:");
                    for c in spec.expand() {
                        eprintln!("  {}", c.id());
                    }
                    ExitCode::from(1)
                })?,
                None => spec.expand().remove(0),
            };
            let (metrics, observed) = record_cell_trace(&spec, &cell, admission, mode);
            let out_path = out.unwrap_or_else(|| format!("{}.trace.jsonl", cell.id()));
            write(&out_path, &observed.trace.to_jsonl())?;
            eprintln!(
                "cell {}: {} events seen, {} retained, {} evicted (mode {mode}); wrote {out_path}",
                cell.id(),
                observed.trace.total_seen(),
                observed.trace.len(),
                observed.trace.evicted(),
            );
            eprintln!(
                "cell metrics unchanged by tracing: {} completed, SLO att. {:.1}%{}",
                metrics.completed,
                metrics.slo_attainment * 100.0,
                if metrics.truncated { ", TRUNCATED" } else { "" },
            );
            println!(
                "{}",
                observed.trace.registry().table("events by kind").render()
            );
            Ok(ExitCode::SUCCESS)
        }
        "summarize" => {
            let [path] = args.as_slice() else {
                return Err(usage());
            };
            let records = load_trace(path)?;
            println!("{}", TraceSummary::from_records(&records).render(path));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let textual = take_flag(&mut args, "--textual");
            let [a, b] = args.as_slice() else {
                return Err(usage());
            };
            if textual {
                // The pre-checker byte-level comparison: line-exact, no
                // commutation relation. Useful when the question is "are
                // these files identical", not "do they mean the same".
                let left = read(a)?;
                let right = read(b)?;
                return match first_divergence(&left, &right) {
                    None => {
                        println!("traces identical ({} records)", left.lines().count());
                        Ok(ExitCode::SUCCESS)
                    }
                    Some(d) => {
                        print!("{}", d.render(a, b));
                        Ok(ExitCode::from(2))
                    }
                };
            }
            let left = load_trace(a)?;
            let right = load_trace(b)?;
            let report = check_equiv(&left, &right);
            print!("{}", report.render(a, b));
            Ok(if report.equivalent() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        "profile" => {
            let instances = match take_flag_value(&mut args, "--instances")? {
                Some(v) => v.parse::<u32>().map_err(|_| {
                    eprintln!("--instances needs an integer");
                    ExitCode::from(1)
                })?,
                None => 1500,
            };
            let min_speedup = match take_flag_value(&mut args, "--min-speedup")? {
                Some(v) => v.parse::<f64>().map_err(|_| {
                    eprintln!("--min-speedup needs a number");
                    ExitCode::from(1)
                })?,
                None => 2.0,
            };
            let json = take_flag(&mut args, "--json");
            if !args.is_empty() {
                return Err(usage());
            }
            eprintln!("profiling engine dispatch at {instances} single-stage instances...");
            let (metrics, observed) = profile_on_tick(instances);
            let dispatch_table = observed
                .profiler
                .table(&format!(
                    "engine dispatch self-time (wall) at {instances} instances"
                ))
                .render();
            // With --json, stdout is exactly the gate report; everything
            // human-facing moves to stderr.
            if json {
                eprint!("{dispatch_table}");
            } else {
                println!("{dispatch_table}");
            }
            eprintln!(
                "policy.on_tick: {} calls, {:.2} ms total (wall-clock; never enters artifacts)",
                observed.profiler.calls("policy.on_tick"),
                observed.profiler.total_secs("policy.on_tick") * 1e3,
            );
            if metrics.truncated {
                eprintln!("warning: profile run hit its step budget");
            }
            // The control-plane comparisons, each indexed vs naive with
            // byte-identical decisions and only on_tick's wall-clock
            // self-time differing:
            //   on_tick_speedup — the PR-8 warm-start mirror against the
            //     from-scratch fleet scan, under light traffic;
            //   plan_cache_speedup — the calm-tick plan cache against the
            //     per-tick refactor-pass walk, over a pinned fully
            //     off-target fleet that never acts.
            let mut gates = Vec::new();
            for (gate_name, what, run) in [
                (
                    "on_tick_speedup",
                    "pinned fleet, light traffic",
                    profile_on_tick_flexpipe
                        as fn(u32, AdmissionMode) -> (flexpipe_fleet::CellMetrics, ObservedRun),
                ),
                (
                    "plan_cache_speedup",
                    "calm off-target fleet, refactor pass",
                    profile_on_tick_calm
                        as fn(u32, AdmissionMode) -> (flexpipe_fleet::CellMetrics, ObservedRun),
                ),
            ] {
                eprintln!(
                    "profiling FlexPipe on_tick at {instances} replicas \
                     ({what}; indexed vs naive)..."
                );
                let mut secs = [0.0f64; 2];
                for (i, mode) in [AdmissionMode::Indexed, AdmissionMode::NaiveScan]
                    .into_iter()
                    .enumerate()
                {
                    let (m, o) = run(instances, mode);
                    secs[i] = o.profiler.total_secs("policy.on_tick");
                    eprintln!(
                        "  {:>7}: {} on_tick calls, {:.2} ms total self-time",
                        if mode == AdmissionMode::Indexed {
                            "indexed"
                        } else {
                            "naive"
                        },
                        o.profiler.calls("policy.on_tick"),
                        secs[i] * 1e3,
                    );
                    if m.truncated {
                        eprintln!("warning: control-plane profile hit its step budget");
                    }
                }
                let speedup = secs[1] / secs[0].max(1e-12);
                let line = format!(
                    "flexpipe {gate_name} at {instances} instances: \
                     {speedup:.2}x (floor {min_speedup:.2}x)"
                );
                if json {
                    eprintln!("{line}");
                } else {
                    println!("{line}");
                }
                gates.push(SpeedupGate::new(gate_name, speedup, min_speedup));
            }
            let report = SpeedupGateReport::new(gates);
            if json {
                print!("{}", report.to_json());
            }
            for g in report.gates.iter().filter(|g| !g.passed) {
                eprintln!(
                    "ERROR: {} {:.2}x below the {:.2}x floor",
                    g.name, g.measured, g.floor
                );
            }
            Ok(if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        other => {
            eprintln!("unknown trace verb `{other}` (expected record, summarize, diff or profile)");
            Err(usage())
        }
    }
}

/// `fleet check equiv --cross-shard`: prove an N-shard live run is
/// request-equivalent to the 1-shard canonical run.
fn cmd_check_cross_shard(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let shards = match take_flag_value(&mut args, "--shards")? {
        Some(v) => v.parse::<u32>().map_err(|_| {
            eprintln!("--shards needs an integer");
            ExitCode::from(1)
        })?,
        None => 2,
    };
    let spec = match take_flag_value(&mut args, "--spec")? {
        Some(p) => {
            let mut s: ServeSpec = serde_json::from_str(&read(&p)?).map_err(|e| {
                eprintln!("cannot parse serve spec {p}: {e}");
                ExitCode::from(1)
            })?;
            s.shards = shards;
            s
        }
        None => flexpipe_gateway::cross_shard_check_spec(shards),
    };
    if !args.is_empty() {
        return Err(usage());
    }
    spec.validate().map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(1)
    })?;
    let mut canonical_spec = spec.clone();
    canonical_spec.shards = 1;

    eprintln!(
        "cross-shard check `{}`: {shards}-shard vs 1-shard canonical...",
        spec.name
    );
    let setup = PaperSetup::for_model(spec.model);
    let run = |s: &ServeSpec| {
        serve_with(s, Pacing::Virtual, &NoSpillover, &setup, TraceMode::Full).map_err(|e| {
            eprintln!("{e}");
            ExitCode::from(1)
        })
    };
    let sharded = run(&spec)?;
    let canonical = run(&canonical_spec)?;

    let shard_traces: Vec<Vec<TraceRecord>> =
        (0..shards).map(|s| sharded.global_trace(s)).collect();
    let refs: Vec<&[TraceRecord]> = shard_traces.iter().map(Vec::as_slice).collect();
    let report = flexpipe_check::check_cross_shard(&refs, &canonical.global_trace(0));
    print!(
        "{}",
        report.render(&format!("{shards}-shard"), "1-shard canonical")
    );
    Ok(if report.equivalent() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn cmd_check(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    if args.is_empty() {
        return Err(usage());
    }
    let verb = args.remove(0);
    match verb.as_str() {
        // Semantic equivalence of two recorded traces: the checker's
        // commutation relation decides, not byte equality.
        "equiv" => {
            // `check equiv --cross-shard`: run the pinned non-interfering
            // workload at N shards and at 1 shard, and require the merged
            // request streams to be semantically equivalent to the
            // canonical trace (request-stream projection + per-stream
            // instance alpha-renaming — see flexpipe-check).
            if take_flag(&mut args, "--cross-shard") {
                return cmd_check_cross_shard(args);
            }
            let [a, b] = args.as_slice() else {
                return Err(usage());
            };
            let left = load_trace(a)?;
            let right = load_trace(b)?;
            let report = check_equiv(&left, &right);
            print!("{}", report.render(a, b));
            Ok(if report.equivalent() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            })
        }
        // Bounded interleaving exploration over the committed scenarios.
        // A scenario passes when its verdict matches its committed
        // expectation: confluent scenarios must converge, and the known
        // non-commuting race must still be found (losing it would mean
        // the checker went blind, not that the engine got better).
        "explore" => {
            let scenario = take_flag_value(&mut args, "--scenario")?;
            let max_schedules = match take_flag_value(&mut args, "--max-schedules")? {
                Some(v) => v.parse::<usize>().map_err(|_| {
                    eprintln!("--max-schedules needs an integer");
                    ExitCode::from(1)
                })?,
                None => 2048,
            };
            let prune = !take_flag(&mut args, "--no-prune");
            if !args.is_empty() {
                return Err(usage());
            }
            let scenarios = match scenario {
                Some(name) => vec![CheckScenario::named(&name).ok_or_else(|| {
                    eprintln!("no checker scenario `{name}`; committed scenarios:");
                    for sc in CheckScenario::all() {
                        eprintln!("  {} — {}", sc.name, sc.about);
                    }
                    ExitCode::from(1)
                })?],
                None => CheckScenario::exploration_targets(),
            };
            let cfg = ExploreConfig {
                max_schedules,
                prune,
            };
            let mut failed = false;
            for sc in scenarios {
                let out = explore(&sc, &cfg);
                print!("{}", out.render(sc.name));
                if !out.completed {
                    eprintln!(
                        "ERROR: `{}` exhausted its schedule budget ({max_schedules}) before \
                         draining the frontier; raise --max-schedules",
                        sc.name
                    );
                    failed = true;
                } else if out.converged() == sc.expect_divergence {
                    eprintln!(
                        "ERROR: `{}` {}",
                        sc.name,
                        if sc.expect_divergence {
                            "was expected to expose its committed race, but every schedule converged"
                        } else {
                            "was expected to be confluent, but a schedule diverged"
                        }
                    );
                    failed = true;
                }
            }
            Ok(if failed {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            })
        }
        // The fingerprint backstop: recompute the probe scenario's
        // semantic fingerprint and compare against the pinned constant.
        "pin" => {
            if !args.is_empty() {
                return Err(usage());
            }
            let run = CheckScenario::probe().engine().run_observed();
            let records: Vec<TraceRecord> = run.trace.records().cloned().collect();
            let fp = semantic_fingerprint(&records);
            println!("probe semantic fingerprint: {fp}");
            println!("pinned:                     {PINNED_SEMANTIC_FINGERPRINT}");
            if fp != PINNED_SEMANTIC_FINGERPRINT {
                eprintln!(
                    "ERROR: engine semantics drifted from the pin; if deliberate, bump \
                     ENGINE_SEMANTICS_VERSION (currently {ENGINE_SEMANTICS_VERSION}) and re-pin \
                     PINNED_SEMANTIC_FINGERPRINT in the same commit"
                );
                return Ok(ExitCode::from(2));
            }
            Ok(ExitCode::SUCCESS)
        }
        other => {
            eprintln!("unknown check verb `{other}` (expected equiv, explore or pin)");
            Err(usage())
        }
    }
}

fn cmd_cache(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    if args.is_empty() {
        return Err(usage());
    }
    let verb = args.remove(0);
    match verb.as_str() {
        "stats" => {
            let claim_ttl = match take_flag_value(&mut args, "--claim-ttl")? {
                Some(v) => flexpipe_fleet::cache::parse_duration(&v).map_err(|e| {
                    eprintln!("{e}");
                    ExitCode::from(1)
                })?,
                None => flexpipe_fleet::DEFAULT_CLAIM_TTL,
            };
            let [dir] = args.as_slice() else {
                return Err(usage());
            };
            let cache = CellCache::open(Path::new(dir)).map_err(|e| {
                eprintln!("cannot open cache {dir}: {e}");
                ExitCode::from(1)
            })?;
            let s = cache.stats_with_ttl(claim_ttl).map_err(|e| {
                eprintln!("cannot scan cache {dir}: {e}");
                ExitCode::from(1)
            })?;
            println!(
                "cache {dir} ({}): {} entries ({} sweep, {} bench), {} stale-salt, {} foreign, \
                 {} bytes",
                cache.backend().kind(),
                s.entries,
                s.sweep_cells,
                s.bench_cells,
                s.stale_salt,
                s.foreign,
                s.bytes
            );
            println!(
                "claims: {} live, {} stale (older than {claim_ttl:?}; reaped by workers, \
                 never by gc)",
                s.claims, s.stale_claims
            );
            println!(
                "ages: oldest {}s, newest {}s; salt {}",
                s.oldest_secs,
                s.newest_secs,
                cache_salt()
            );
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let max_age = match take_flag_value(&mut args, "--max-age")? {
                Some(v) => Some(flexpipe_fleet::cache::parse_duration(&v).map_err(|e| {
                    eprintln!("{e}");
                    ExitCode::from(1)
                })?),
                None => None,
            };
            let max_bytes = match take_flag_value(&mut args, "--max-bytes")? {
                Some(v) => Some(v.parse::<u64>().map_err(|_| {
                    eprintln!("--max-bytes needs a byte count (e.g. 104857600)");
                    ExitCode::from(1)
                })?),
                None => None,
            };
            if max_age.is_none() && max_bytes.is_none() {
                eprintln!(
                    "cache gc requires --max-age <duration> (e.g. 7d) and/or --max-bytes <N>"
                );
                return Err(ExitCode::from(1));
            }
            let [dir] = args.as_slice() else {
                return Err(usage());
            };
            let cache = CellCache::open(Path::new(dir)).map_err(|e| {
                eprintln!("cannot open cache {dir}: {e}");
                ExitCode::from(1)
            })?;
            let out = cache.gc_bounded(max_age, max_bytes).map_err(|e| {
                eprintln!("cache gc failed in {dir}: {e}");
                ExitCode::from(1)
            })?;
            println!(
                "cache {dir}: removed {} entries ({} bytes), kept {}",
                out.removed, out.bytes_freed, out.kept
            );
            Ok(ExitCode::SUCCESS)
        }
        other => {
            eprintln!("unknown cache verb `{other}` (expected stats or gc)");
            Err(usage())
        }
    }
}

fn cmd_compare(args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let [path] = args.as_slice() else {
        return Err(usage());
    };
    let report = load_report(path)?;
    println!("{}", report.policy_table().render());
    println!("{}", report.cell_table().render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_gate(mut args: Vec<String>) -> Result<ExitCode, ExitCode> {
    let Some(baseline_path) = take_flag_value(&mut args, "--baseline")? else {
        eprintln!("gate requires --baseline <baseline.json>");
        return Err(ExitCode::from(1));
    };
    let tolerance = match take_flag_value(&mut args, "--tolerance")? {
        Some(t) => t.parse::<f64>().map_err(|_| {
            eprintln!("--tolerance needs a number (e.g. 0.02)");
            ExitCode::from(1)
        })?,
        None => GateConfig::default().tolerance,
    };
    let strict_cells = take_flag(&mut args, "--strict-cells");
    let [candidate_path] = args.as_slice() else {
        return Err(usage());
    };

    let cfg = GateConfig {
        tolerance,
        strict_cells,
        ..GateConfig::default()
    };
    let baseline = load_report(&baseline_path)?;
    let candidate = load_report(candidate_path)?;
    let outcome = gate(&baseline, &candidate, &cfg);
    print!("{}", outcome.render(&cfg));
    Ok(if outcome.passed(&cfg) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "init" => cmd_init(args),
        "run" => cmd_run(args),
        "bench" => cmd_bench(args),
        "campaign" => cmd_campaign(args),
        "worker" => cmd_worker(args),
        "serve" => cmd_serve(args),
        "trace" => cmd_trace(args),
        "check" => cmd_check(args),
        "cache" => cmd_cache(args),
        "fingerprint" => {
            println!("{}", cache_salt());
            Ok(ExitCode::SUCCESS)
        }
        "compare" => cmd_compare(args),
        "gate" => cmd_gate(args),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown subcommand `{other}`");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(code) => code,
    }
}
