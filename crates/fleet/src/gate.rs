//! The regression gate: diffs a fresh fleet report against a committed
//! baseline and fails on meaningful degradations.
//!
//! Cells are matched by their stable id ([`crate::spec::Cell::id`]); for
//! each matched cell the gate checks the quality metrics in both
//! directions that matter:
//!
//! - SLO attainment and goodput may not *drop* by more than the tolerance;
//! - p99 TTFT and p99 latency may not *grow* by more than the tolerance;
//! - on cells that faced disruptions in both reports, the recovery
//!   metrics may not regress: mean time-to-recover may not grow beyond
//!   the tolerance (past an absolute jitter floor), and the replayed
//!   request count may not grow beyond the tolerance (past one request
//!   of slack — replay counts are small integers);
//! - a cell newly hitting its step budget (truncation) is always a
//!   failure.
//!
//! Improvements never fail the gate. Cells present in only one report are
//! reported (the grid changed) but only fail the gate when `strict` cell
//! matching is requested.

use flexpipe_metrics::{fmt_f, Table};
use serde::{Deserialize, Serialize};

use crate::report::FleetReport;

/// Gate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateConfig {
    /// Allowed relative degradation before a metric fails (e.g. `0.02` =
    /// 2%).
    pub tolerance: f64,
    /// Absolute floor below which latency growth is ignored, seconds
    /// (sub-millisecond p99 jitter should not fail anyone).
    pub latency_floor_secs: f64,
    /// Absolute floor below which mean time-to-recover growth is ignored,
    /// seconds (recovery windows close on discrete engine events; small
    /// absolute shifts are quantisation, not regression).
    pub ttr_floor_secs: f64,
    /// Whether a changed cell grid (cells added/removed) fails the gate.
    pub strict_cells: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance: 0.02,
            latency_floor_secs: 0.005,
            ttr_floor_secs: 0.5,
            strict_cells: false,
        }
    }
}

/// One metric regression found by the gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Cell id.
    pub cell: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Relative change (positive = worse).
    pub degradation: f64,
}

/// The gate's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateOutcome {
    /// Regressions found (empty = pass).
    pub regressions: Vec<Regression>,
    /// Cells only in the baseline.
    pub missing_cells: Vec<String>,
    /// Cells only in the candidate.
    pub new_cells: Vec<String>,
    /// Cells compared.
    pub compared: usize,
}

impl GateOutcome {
    /// Whether the candidate passes under `cfg`.
    pub fn passed(&self, cfg: &GateConfig) -> bool {
        self.regressions.is_empty()
            && (!cfg.strict_cells || (self.missing_cells.is_empty() && self.new_cells.is_empty()))
    }

    /// Renders the verdict as a table plus grid-change notes.
    pub fn render(&self, cfg: &GateConfig) -> String {
        let mut out = String::new();
        if self.passed(cfg) {
            out.push_str(&format!(
                "GATE PASS: {} cells compared, no regression beyond {:.1}%\n",
                self.compared,
                cfg.tolerance * 100.0
            ));
        } else {
            let mut t = Table::new(
                &format!(
                    "GATE FAIL: {} regression(s) beyond {:.1}%",
                    self.regressions.len(),
                    cfg.tolerance * 100.0
                ),
                &["cell", "metric", "baseline", "candidate", "degradation"],
            );
            for r in &self.regressions {
                t.row(vec![
                    r.cell.clone(),
                    r.metric.clone(),
                    fmt_f(r.baseline, 4),
                    fmt_f(r.candidate, 4),
                    format!("{:+.1}%", r.degradation * 100.0),
                ]);
            }
            out.push_str(&t.render());
        }
        if !self.missing_cells.is_empty() {
            out.push_str(&format!(
                "cells missing from candidate: {}\n",
                self.missing_cells.join(", ")
            ));
        }
        if !self.new_cells.is_empty() {
            out.push_str(&format!(
                "cells new in candidate: {}\n",
                self.new_cells.join(", ")
            ));
        }
        out
    }
}

/// Relative degradation of a lower-is-better metric.
fn rel_increase(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        if candidate > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (candidate - baseline) / baseline
    }
}

/// Compares `candidate` against `baseline` under `cfg`.
pub fn gate(baseline: &FleetReport, candidate: &FleetReport, cfg: &GateConfig) -> GateOutcome {
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut compared = 0usize;

    let by_id: std::collections::HashMap<String, &crate::report::CellResult> =
        candidate.cells.iter().map(|c| (c.cell.id(), c)).collect();

    for base in &baseline.cells {
        let id = base.cell.id();
        let Some(&cand) = by_id.get(&id) else {
            missing.push(id);
            continue;
        };
        compared += 1;
        let b = &base.metrics;
        let c = &cand.metrics;

        // Higher-is-better metrics: fail on drops beyond tolerance.
        for (metric, bv, cv) in [
            ("slo_attainment", b.slo_attainment, c.slo_attainment),
            ("goodput_per_sec", b.goodput_per_sec, c.goodput_per_sec),
        ] {
            if bv > 0.0 && (bv - cv) / bv > cfg.tolerance {
                regressions.push(Regression {
                    cell: id.clone(),
                    metric: metric.into(),
                    baseline: bv,
                    candidate: cv,
                    degradation: (bv - cv) / bv,
                });
            }
        }
        // Lower-is-better metrics: fail on growth beyond tolerance (and
        // beyond the absolute jitter floor).
        for (metric, bv, cv) in [
            ("p99_ttft", b.p99_ttft, c.p99_ttft),
            ("p99_latency", b.p99_latency, c.p99_latency),
        ] {
            let grew = rel_increase(bv, cv);
            if grew > cfg.tolerance && (cv - bv) > cfg.latency_floor_secs {
                regressions.push(Regression {
                    cell: id.clone(),
                    metric: metric.into(),
                    baseline: bv,
                    candidate: cv,
                    degradation: grew,
                });
            }
        }
        // Recovery metrics, on cells that faced disruptions in both
        // reports (a changed disruption axis is a grid change, not a
        // regression). Mean TTR growth is a slower rebuild; replay growth
        // means revocations destroyed more in-flight work.
        if b.revocations > 0 && c.revocations > 0 {
            let ttr_grew = rel_increase(b.mean_ttr_secs, c.mean_ttr_secs);
            if ttr_grew > cfg.tolerance && (c.mean_ttr_secs - b.mean_ttr_secs) > cfg.ttr_floor_secs
            {
                regressions.push(Regression {
                    cell: id.clone(),
                    metric: "mean_ttr_secs".into(),
                    baseline: b.mean_ttr_secs,
                    candidate: c.mean_ttr_secs,
                    degradation: ttr_grew,
                });
            }
            let (breplay, creplay) = (
                f64::from(b.requests_replayed),
                f64::from(c.requests_replayed),
            );
            let replay_grew = rel_increase(breplay, creplay);
            if replay_grew > cfg.tolerance && creplay - breplay > 1.0 {
                regressions.push(Regression {
                    cell: id.clone(),
                    metric: "requests_replayed".into(),
                    baseline: breplay,
                    candidate: creplay,
                    degradation: replay_grew,
                });
            }
        }
        // Fresh truncation is always a failure: the cell no longer
        // finishes within its step budget.
        if c.truncated && !b.truncated {
            regressions.push(Regression {
                cell: id.clone(),
                metric: "truncated".into(),
                baseline: 0.0,
                candidate: 1.0,
                degradation: f64::INFINITY,
            });
        }
        // Likewise a cell that newly panics.
        if c.failed && !b.failed {
            regressions.push(Regression {
                cell: id.clone(),
                metric: "failed".into(),
                baseline: 0.0,
                candidate: 1.0,
                degradation: f64::INFINITY,
            });
        }
    }

    let new_cells = candidate
        .cells
        .iter()
        .map(|c| c.cell.id())
        .filter(|id| !baseline.cells.iter().any(|b| &b.cell.id() == id))
        .collect();

    GateOutcome {
        regressions,
        missing_cells: missing,
        new_cells,
        compared,
    }
}

/// Format version stamped into every [`SpeedupGateReport`].
pub const SPEEDUP_GATE_VERSION: u32 = 1;

/// One wall-clock measurement compared against its floor: the shared
/// shape of the `fleet trace profile` speedup gates and the
/// `fleet bench --live` shard-scaling gate, so CI parses one format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupGate {
    /// Stable gate name (e.g. `on_tick_speedup`, `live_scaling_2x`).
    pub name: String,
    /// The measured ratio (a speedup or scaling factor).
    pub measured: f64,
    /// The floor the measurement must meet or exceed.
    pub floor: f64,
    /// `measured >= floor`.
    pub passed: bool,
}

impl SpeedupGate {
    /// Builds a gate entry, deriving `passed` from the comparison.
    pub fn new(name: impl Into<String>, measured: f64, floor: f64) -> Self {
        SpeedupGate {
            name: name.into(),
            measured,
            floor,
            passed: measured >= floor,
        }
    }
}

/// The versioned `--json` gate output. Carries *wall-clock* ratios and
/// is therefore never byte-stable; like `campaign.timing.json` it stays
/// outside every byte-compared artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupGateReport {
    /// Format version ([`SPEEDUP_GATE_VERSION`]).
    pub version: u32,
    /// The gates, in evaluation order.
    pub gates: Vec<SpeedupGate>,
}

impl SpeedupGateReport {
    /// Wraps gate entries in the current format version.
    pub fn new(gates: Vec<SpeedupGate>) -> Self {
        SpeedupGateReport {
            version: SPEEDUP_GATE_VERSION,
            gates,
        }
    }

    /// True when every gate passed.
    pub fn passed(&self) -> bool {
        self.gates.iter().all(|g| g.passed)
    }

    /// Pretty JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("gate report serializes");
        s.push('\n');
        s
    }

    /// Parses a report, rejecting other format versions explicitly.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let report: SpeedupGateReport =
            serde_json::from_str(s).map_err(|e| format!("speedup gate report: {e}"))?;
        if report.version != SPEEDUP_GATE_VERSION {
            return Err(format!(
                "speedup gate report is format version {} (this build expects {})",
                report.version, SPEEDUP_GATE_VERSION
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CellMetrics, CellResult, FleetReport};
    use crate::spec::SweepSpec;

    #[test]
    fn speedup_gate_passes_derive_from_the_floor_comparison() {
        assert!(SpeedupGate::new("g", 2.0, 2.0).passed);
        assert!(!SpeedupGate::new("g", 1.99, 2.0).passed);
        let report = SpeedupGateReport::new(vec![
            SpeedupGate::new("a", 3.0, 2.0),
            SpeedupGate::new("b", 1.0, 2.0),
        ]);
        assert!(!report.passed());
    }

    #[test]
    fn speedup_gate_json_round_trips_and_rejects_foreign_versions() {
        let report = SpeedupGateReport::new(vec![SpeedupGate::new("on_tick_speedup", 4.2, 2.0)]);
        let parsed = SpeedupGateReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);

        let mut foreign = report.clone();
        foreign.version = 99;
        let err = SpeedupGateReport::from_json(&foreign.to_json()).unwrap_err();
        assert!(err.contains("format version 99"), "{err}");
    }

    fn metrics(slo: f64, p99: f64) -> CellMetrics {
        CellMetrics {
            offered: 100,
            completed: 100,
            within_slo: (slo * 100.0) as usize,
            slo_attainment: slo,
            goodput_per_sec: slo * 10.0,
            p50_ttft: p99 / 4.0,
            p99_ttft: p99 / 2.0,
            p50_tpot: 0.02,
            p99_tpot: 0.05,
            p50_latency: p99 / 2.0,
            p99_latency: p99,
            refactors: 1,
            refactor_pause_secs: 0.01,
            mean_gpus_held: 4.0,
            spawns: 2,
            revocations: 0,
            requests_replayed: 0,
            tokens_lost: 0,
            mean_ttr_secs: 0.0,
            max_ttr_secs: 0.0,
            disrupted_completed: 0,
            disrupted_within_slo: 0,
            events: 10_000,
            truncated: false,
            failed: false,
        }
    }

    fn report_with(slo: f64, p99: f64) -> FleetReport {
        let spec = SweepSpec::template();
        let cells = spec
            .expand()
            .into_iter()
            .take(4)
            .map(|cell| CellResult {
                cell,
                metrics: metrics(slo, p99),
            })
            .collect();
        FleetReport::assemble(spec, cells)
    }

    #[test]
    fn identical_reports_pass() {
        let cfg = GateConfig::default();
        let a = report_with(0.9, 1.0);
        let out = gate(&a, &a, &cfg);
        assert!(out.passed(&cfg), "{:?}", out.regressions);
        assert_eq!(out.compared, 4);
    }

    #[test]
    fn slo_drop_fails() {
        let cfg = GateConfig::default();
        let base = report_with(0.9, 1.0);
        let cand = report_with(0.8, 1.0);
        let out = gate(&base, &cand, &cfg);
        assert!(!out.passed(&cfg));
        assert!(out.regressions.iter().any(|r| r.metric == "slo_attainment"));
    }

    #[test]
    fn latency_growth_fails_but_improvement_passes() {
        let cfg = GateConfig::default();
        let base = report_with(0.9, 1.0);
        let worse = report_with(0.9, 1.2);
        assert!(!gate(&base, &worse, &cfg).passed(&cfg));
        let better = report_with(0.95, 0.8);
        assert!(gate(&base, &better, &cfg).passed(&cfg));
    }

    #[test]
    fn tiny_jitter_is_tolerated() {
        let cfg = GateConfig::default();
        let base = report_with(0.9, 0.010);
        // +20% relative but only +2 ms absolute: under the floor.
        let cand = report_with(0.9, 0.012);
        assert!(gate(&base, &cand, &cfg).passed(&cfg));
    }

    #[test]
    fn fresh_truncation_fails() {
        let cfg = GateConfig::default();
        let base = report_with(0.9, 1.0);
        let mut cand = report_with(0.9, 1.0);
        cand.cells[0].metrics.truncated = true;
        let out = gate(&base, &cand, &cfg);
        assert!(!out.passed(&cfg));
        assert!(out.regressions.iter().any(|r| r.metric == "truncated"));
    }

    fn chaos_report(slo: f64, ttr: f64, replays: u32) -> FleetReport {
        let mut r = report_with(slo, 1.0);
        for c in &mut r.cells {
            c.metrics.revocations = 2;
            c.metrics.mean_ttr_secs = ttr;
            c.metrics.requests_replayed = replays;
        }
        r
    }

    #[test]
    fn worsened_mean_ttr_fails() {
        let cfg = GateConfig::default();
        let base = chaos_report(0.9, 10.0, 4);
        let worse = chaos_report(0.9, 14.0, 4);
        let out = gate(&base, &worse, &cfg);
        assert!(!out.passed(&cfg));
        assert!(out.regressions.iter().any(|r| r.metric == "mean_ttr_secs"));
        // Improvement and identity both pass.
        assert!(gate(&base, &chaos_report(0.9, 6.0, 4), &cfg).passed(&cfg));
        assert!(gate(&base, &base, &cfg).passed(&cfg));
    }

    #[test]
    fn ttr_jitter_under_the_floor_is_tolerated() {
        let cfg = GateConfig::default();
        let base = chaos_report(0.9, 2.0, 4);
        // +15% relative but only +0.3 s absolute: under the floor.
        let cand = chaos_report(0.9, 2.3, 4);
        assert!(gate(&base, &cand, &cfg).passed(&cfg));
    }

    #[test]
    fn replay_growth_fails_but_one_request_of_slack_passes() {
        let cfg = GateConfig::default();
        let base = chaos_report(0.9, 10.0, 4);
        assert!(gate(&base, &chaos_report(0.9, 10.0, 5), &cfg).passed(&cfg));
        let out = gate(&base, &chaos_report(0.9, 10.0, 9), &cfg);
        assert!(!out.passed(&cfg));
        assert!(out
            .regressions
            .iter()
            .any(|r| r.metric == "requests_replayed"));
    }

    #[test]
    fn recovery_metrics_ignore_undisrupted_cells() {
        let cfg = GateConfig::default();
        // Baseline saw no revocations: TTR/replays are not comparable.
        let base = report_with(0.9, 1.0);
        let cand = chaos_report(0.9, 50.0, 100);
        let out = gate(&base, &cand, &cfg);
        assert!(
            !out.regressions
                .iter()
                .any(|r| r.metric == "mean_ttr_secs" || r.metric == "requests_replayed"),
            "{:?}",
            out.regressions
        );
    }

    #[test]
    fn grid_changes_are_reported() {
        let cfg = GateConfig {
            strict_cells: true,
            ..GateConfig::default()
        };
        let base = report_with(0.9, 1.0);
        let mut cand = report_with(0.9, 1.0);
        cand.cells.pop();
        let out = gate(&base, &cand, &cfg);
        assert_eq!(out.missing_cells.len(), 1);
        assert!(!out.passed(&cfg));
        assert!(out.passed(&GateConfig::default()));
    }
}
