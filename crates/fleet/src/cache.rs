//! The content-addressed per-cell artifact cache behind `fleet campaign`
//! and the distributed `fleet worker` protocol.
//!
//! Every campaign cell persists its [`CellMetrics`] under a key derived
//! from three things:
//!
//! 1. the **canonicalized semantic content** of the cell — the spec fields
//!    and cell coordinates that can change the cell's metrics, and nothing
//!    that cannot (`SweepSpec::cell_semantics` /
//!    `BenchSpec::cell_semantics`). Canonicalization sorts map keys
//!    recursively and serializes through the typed spec structs, so JSON
//!    key order, TOML-lite formatting, comments and numeric spelling
//!    (`120` vs `120.0`) all hash identically while any semantically
//!    meaningful edit re-keys exactly the dirty cells;
//! 2. the **cell id**, folded in via the semantics' seed/coordinates (two
//!    cells with identical semantics *are* the same experiment — sharing
//!    the entry is correct, not a collision);
//! 3. the **engine fingerprint salt** ([`cache_salt`]):
//!    `flexpipe_serving::engine_fingerprint()` plus the fleet's report and
//!    cache format versions, so engine-semantics bumps, metric-definition
//!    changes and cache-layout changes each invalidate the whole cache.
//!    The salt is also what makes mixed-version *fleets* safe: workers
//!    built from different engine semantics address disjoint keys, so a
//!    stale binary can never poison a newer campaign's cells.
//!
//! Storage is pluggable behind the [`CacheStore`] trait
//! ([`crate::store`]): the default [`crate::store::LocalDiskStore`] keeps
//! one atomically-renamed JSON file per entry under
//! `<dir>/<key[0..2]>/<key>.json` (safe to share over NFS or rsync), and
//! the single-file [`crate::store::LogStore`] append log proves the seam.
//! Whatever the backend, entries land atomically — a killed run never
//! leaves a torn entry, and a resumed run either sees a complete result
//! or recomputes. Truncated and panicked cells are **never** cached — an
//! interrupted (step-budget-truncated) cell must be recomputed, which is
//! what makes kill-and-resume byte-identical to an uninterrupted run.
//!
//! Worker claims (`<key>.claim` files / log claim records) ride in the
//! same store but are bookkeeping, not results: `stats` counts them
//! separately from cell entries, and `gc` **never** removes a live claim
//! — stale claims are reaped only explicitly, by TTL.
//!
//! Nothing wall-clock enters entry *contents*; `stats` / `gc` age entries
//! by storage mtime, which stays outside every byte-compared artifact.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize, Value};

use crate::report::{CellMetrics, REPORT_VERSION};
use crate::store::{open_store, CacheStore, ClaimInfo, ClaimOutcome, GcOutcome, StoreKind};

/// Cache on-disk format version; bump on entry-layout changes.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The salt folded into every cell key: engine semantics fingerprint +
/// the fleet's metric (report) and cache format versions.
pub fn cache_salt() -> String {
    format!(
        "{}|report-v{REPORT_VERSION}|cache-v{CACHE_FORMAT_VERSION}",
        flexpipe_serving::engine_fingerprint()
    )
}

/// Recursively sorts map keys, leaving sequence order (which is
/// semantic: axis order defines cell order) untouched.
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Map(m) => {
            let mut entries: Vec<(String, Value)> = m
                .iter()
                .map(|(k, x)| (k.clone(), canonicalize(x)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Map(entries)
        }
        Value::Seq(xs) => Value::Seq(xs.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// The canonical compact JSON of a value (sorted keys, deterministic
/// float formatting) — the byte string cell keys hash.
pub fn canonical_json(v: &Value) -> String {
    serde_json::to_string(&canonicalize(v)).expect("canonical serialization")
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv64(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit content key (32 hex chars) of `semantics` under [`cache_salt`]:
/// two independent FNV-1a streams over `salt \0 canonical-json`.
pub fn cell_key(semantics: &Value) -> String {
    let mut bytes = cache_salt().into_bytes();
    bytes.push(0);
    bytes.extend_from_slice(canonical_json(semantics).as_bytes());
    let h1 = fnv64(0xCBF2_9CE4_8422_2325, &bytes);
    let h2 = fnv64(0x6C62_272E_07BB_0142, &bytes);
    format!("{h1:016x}{h2:016x}")
}

/// The shard a key belongs to under an `i/n` deterministic partition:
/// the key's leading 64 bits modulo `n`. Stateless — every worker
/// computes the same answer from the campaign spec alone, which is what
/// makes `fleet worker --shard i/n` coordination-free.
pub fn key_shard(key: &str, n: usize) -> usize {
    let h = u64::from_str_radix(key.get(0..16).unwrap_or("0"), 16).unwrap_or(0);
    (h % n.max(1) as u64) as usize
}

/// One persisted cell result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// On-disk format version ([`CACHE_FORMAT_VERSION`]).
    pub version: u32,
    /// The full content key (also the file stem; verified on load).
    pub key: String,
    /// The salt the key was derived under (diagnostic; the key already
    /// commits to it).
    pub salt: String,
    /// Experiment kind: `sweep` or `bench`.
    pub kind: String,
    /// Human-readable cell id of the first producer (diagnostic only —
    /// identical semantics under different ids legitimately share).
    pub id: String,
    /// The cached deterministic metrics.
    pub metrics: CellMetrics,
}

/// Aggregate cache statistics (`fleet cache stats`). Cell entries and
/// worker claims are counted strictly separately: a claim is protocol
/// bookkeeping, never a result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheStats {
    /// Readable, well-formed entries.
    pub entries: usize,
    /// Of those, sweep cells.
    pub sweep_cells: usize,
    /// Of those, bench cells.
    pub bench_cells: usize,
    /// Entries whose salt differs from this build's (stale: unreachable
    /// until `gc` removes them).
    pub stale_salt: usize,
    /// Objects that failed to parse as entries (junk files, orphaned
    /// temp files). Claims are **not** foreign — see
    /// [`CacheStats::claims`].
    pub foreign: usize,
    /// Live worker claims.
    pub claims: usize,
    /// Of those, claims whose heartbeat is older than the TTL passed to
    /// [`CellCache::stats_with_ttl`] (likely dead workers; reapable).
    pub stale_claims: usize,
    /// Total bytes across all entry objects considered.
    pub bytes: u64,
    /// Age of the oldest entry, seconds (0 when empty).
    pub oldest_secs: u64,
    /// Age of the newest entry, seconds (0 when empty).
    pub newest_secs: u64,
}

/// A content-addressed cell cache over a pluggable [`CacheStore`].
#[derive(Debug, Clone)]
pub struct CellCache {
    store: Arc<dyn CacheStore>,
}

impl CellCache {
    /// Opens (creating if needed) a cache at `dir` with backend
    /// autodetection: an existing `cells.log` selects the append-log
    /// store, anything else the localdisk layout.
    pub fn open(dir: &Path) -> io::Result<CellCache> {
        CellCache::open_kind(dir, None)
    }

    /// Opens a cache at `dir` with an explicit backend preference. An
    /// already-initialized directory keeps its detected backend (mixing
    /// engines in one directory would split the cache invisibly).
    pub fn open_kind(dir: &Path, kind: Option<StoreKind>) -> io::Result<CellCache> {
        Ok(CellCache {
            store: open_store(dir, kind)?,
        })
    }

    /// Wraps an already-open storage engine.
    pub fn with_store(store: Arc<dyn CacheStore>) -> CellCache {
        CellCache { store }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        self.store.root()
    }

    /// The underlying storage engine.
    pub fn backend(&self) -> &dyn CacheStore {
        self.store.as_ref()
    }

    /// Loads the metrics cached under `key`, if a complete, matching
    /// entry exists that is replayable under the caller's current step
    /// budget. Any mismatch (version, key, truncated/failed payload,
    /// parse error) reads as a miss — the cache is purely an accelerator
    /// and must never change results.
    ///
    /// The budget check is what keeps `max_events`' exclusion from cell
    /// keys sound in *both* directions: a cached cell replays only when
    /// it demonstrably fits the current budget (`events < max_events`),
    /// so lowering a spec's budget below what a cell needed recomputes
    /// the cell (which now truncates) instead of replaying a result the
    /// engine could no longer produce. Strict `<` is deliberate: a run
    /// that consumed exactly the budget is indistinguishable from a
    /// truncated one without re-running.
    pub fn load(&self, key: &str, max_events: u64) -> Option<CellMetrics> {
        let text = self.store.get(key).ok()??;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        if entry.version != CACHE_FORMAT_VERSION
            || entry.key != key
            || entry.metrics.truncated
            || entry.metrics.failed
            || entry.metrics.events >= max_events
        {
            return None;
        }
        Some(entry.metrics)
    }

    /// Persists `metrics` under `key`, atomically. Truncated and failed
    /// cells are refused (returns `false`): an incomplete result must be
    /// recomputed on resume, never replayed.
    pub fn store(
        &self,
        key: &str,
        kind: &str,
        id: &str,
        metrics: &CellMetrics,
    ) -> io::Result<bool> {
        if metrics.truncated || metrics.failed {
            return Ok(false);
        }
        let entry = CacheEntry {
            version: CACHE_FORMAT_VERSION,
            key: key.to_string(),
            salt: cache_salt(),
            kind: kind.to_string(),
            id: id.to_string(),
            metrics: metrics.clone(),
        };
        let mut json = serde_json::to_string_pretty(&entry).expect("entry serializes");
        json.push('\n');
        self.store.put(key, &json)?;
        Ok(true)
    }

    /// Attempts to claim `key` for `worker` (see [`CacheStore::try_claim`]).
    pub fn try_claim(&self, key: &str, worker: &str) -> io::Result<ClaimOutcome> {
        self.store.try_claim(key, worker)
    }

    /// Heartbeats a held claim (see [`CacheStore::refresh_claim`]).
    pub fn refresh_claim(&self, key: &str, worker: &str) -> io::Result<bool> {
        self.store.refresh_claim(key, worker)
    }

    /// Releases `worker`'s claim on `key`.
    pub fn release_claim(&self, key: &str, worker: &str) -> io::Result<bool> {
        self.store.release_claim(key, worker)
    }

    /// Every live claim.
    pub fn list_claims(&self) -> io::Result<Vec<ClaimInfo>> {
        self.store.list_claims()
    }

    /// Releases every claim older than `ttl`; returns the count reaped.
    pub fn reap_stale_claims(&self, ttl: Duration) -> io::Result<usize> {
        self.store.reap_stale_claims(ttl)
    }

    /// Walks the cache and aggregates [`CacheStats`], judging claim
    /// staleness against [`crate::store::DEFAULT_CLAIM_TTL`].
    pub fn stats(&self) -> io::Result<CacheStats> {
        self.stats_with_ttl(crate::store::DEFAULT_CLAIM_TTL)
    }

    /// [`CellCache::stats`] with an explicit staleness TTL for claims.
    pub fn stats_with_ttl(&self, claim_ttl: Duration) -> io::Result<CacheStats> {
        let salt = cache_salt();
        let mut s = CacheStats::default();
        let mut oldest: Option<u64> = None;
        let mut newest: Option<u64> = None;
        for obj in self.store.list()? {
            s.bytes += obj.bytes;
            let parsed = obj
                .payload
                .as_deref()
                .and_then(|t| serde_json::from_str::<CacheEntry>(t).ok());
            let Some(entry) = parsed else {
                s.foreign += 1;
                continue;
            };
            s.entries += 1;
            match entry.kind.as_str() {
                "sweep" => s.sweep_cells += 1,
                "bench" => s.bench_cells += 1,
                _ => {}
            }
            if entry.salt != salt {
                s.stale_salt += 1;
            }
            let age = obj.age.as_secs();
            oldest = Some(oldest.map_or(age, |o| o.max(age)));
            newest = Some(newest.map_or(age, |n| n.min(age)));
        }
        for claim in self.store.list_claims()? {
            s.claims += 1;
            if claim.age >= claim_ttl {
                s.stale_claims += 1;
            }
        }
        s.oldest_secs = oldest.unwrap_or(0);
        s.newest_secs = newest.unwrap_or(0);
        Ok(s)
    }

    /// Removes every entry older than `max_age`. Live claims are never
    /// touched (see [`CacheStore::gc`]).
    pub fn gc(&self, max_age: Duration) -> io::Result<GcOutcome> {
        self.store.gc(Some(max_age), None)
    }

    /// LRU size cap: evicts oldest entries first until the cache fits
    /// under `max_bytes`. The newest entries always survive (unless a
    /// single entry alone exceeds the cap). Live claims are never
    /// touched.
    pub fn gc_max_bytes(&self, max_bytes: u64) -> io::Result<GcOutcome> {
        self.store.gc(None, Some(max_bytes))
    }

    /// Combined gc pass: the age bound (if any) applies first, then the
    /// size cap (if any) evicts oldest-first among the survivors. Ties
    /// break deterministically. Live claims are never touched.
    pub fn gc_bounded(
        &self,
        max_age: Option<Duration>,
        max_bytes: Option<u64>,
    ) -> io::Result<GcOutcome> {
        self.store.gc(max_age, max_bytes)
    }
}

/// Parses a human duration: bare seconds or `s`/`m`/`h`/`d` suffixed
/// (`0`, `90s`, `15m`, `12h`, `7d`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, mult) = match s.as_bytes().last() {
        Some(b's') => (&s[..s.len() - 1], 1.0),
        Some(b'm') => (&s[..s.len() - 1], 60.0),
        Some(b'h') => (&s[..s.len() - 1], 3600.0),
        Some(b'd') => (&s[..s.len() - 1], 86_400.0),
        _ => (s, 1.0),
    };
    let x: f64 = num
        .parse()
        .map_err(|_| format!("bad duration `{s}` (expected e.g. 90s, 15m, 12h, 7d)"))?;
    if !(x.is_finite() && x >= 0.0) {
        return Err(format!("bad duration `{s}` (must be non-negative)"));
    }
    // try_: an astronomically large value must stay an Err, not a panic.
    Duration::try_from_secs_f64(x * mult).map_err(|_| format!("bad duration `{s}` (out of range)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::time::SystemTime;

    fn tiny_metrics() -> CellMetrics {
        let mut m = crate::runner::failed_cell_metrics();
        m.failed = false;
        m.offered = 10;
        m.completed = 9;
        m.within_slo = 8;
        m.slo_attainment = 0.8;
        m.goodput_per_sec = 1.25;
        m.p99_ttft = 0.75;
        m.events = 1234;
        m
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flexpipe-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Every cache-semantics test runs against both backends: the cache
    /// layer must be backend-agnostic by construction.
    fn both_backends(tag: &str, f: impl Fn(&CellCache)) {
        for kind in [StoreKind::LocalDisk, StoreKind::Log] {
            let dir = tmp(&format!("{tag}-{}", kind.name()));
            let cache = CellCache::open_kind(&dir, Some(kind)).unwrap();
            assert_eq!(cache.backend().kind(), kind.name());
            f(&cache);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn canonicalization_sorts_maps_but_keeps_seq_order() {
        let a = serde_json::parse_value(r#"{"b": 1, "a": [2, 1], "c": {"y": 1, "x": 2}}"#).unwrap();
        let b = serde_json::parse_value(r#"{"c": {"x": 2, "y": 1}, "a": [2, 1], "b": 1}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(cell_key(&a), cell_key(&b));
        // Sequence order is semantic and must not collapse.
        let c = serde_json::parse_value(r#"{"a": [1, 2], "b": 1, "c": {"x": 2, "y": 1}}"#).unwrap();
        assert_ne!(cell_key(&a), cell_key(&c));
    }

    #[test]
    fn numeric_spelling_hashes_identically_after_typed_round_trip() {
        // Raw `120` vs `120.0` differ as Values, but keys are computed
        // from typed structs, whose f64 fields serialize uniformly.
        #[derive(Serialize, Deserialize)]
        struct S {
            x: f64,
        }
        let a: S = serde_json::from_str(r#"{"x": 120}"#).unwrap();
        let b: S = serde_json::from_str(r#"{"x": 120.0}"#).unwrap();
        assert_eq!(cell_key(&a.to_value()), cell_key(&b.to_value()));
    }

    #[test]
    fn keys_commit_to_the_salt() {
        let v = serde_json::parse_value(r#"{"a": 1}"#).unwrap();
        let key = cell_key(&v);
        assert_eq!(key.len(), 32);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(cache_salt().contains("engine-v"));
        assert!(cache_salt().contains(&format!("report-v{REPORT_VERSION}")));
    }

    #[test]
    fn key_shards_partition_and_cover() {
        let keys: Vec<String> = (0..64)
            .map(|i| cell_key(&serde_json::parse_value(&format!("{{\"i\": {i}}}")).unwrap()))
            .collect();
        for n in [1, 2, 3, 5] {
            let mut seen = vec![0usize; n];
            for k in &keys {
                let s = key_shard(k, n);
                assert!(s < n);
                seen[s] += 1;
            }
            // Every shard gets work (64 keys over ≤5 shards).
            assert!(
                seen.iter().all(|&c| c > 0),
                "empty shard at n={n}: {seen:?}"
            );
            assert_eq!(seen.iter().sum::<usize>(), keys.len());
        }
        // Deterministic: the partition is a pure function of the key.
        assert_eq!(key_shard(&keys[0], 3), key_shard(&keys[0], 3));
        assert_eq!(key_shard("zz", 4), 0); // non-hex prefix degrades safely
    }

    #[test]
    fn store_load_round_trips_and_refuses_incomplete_cells() {
        both_backends("roundtrip", |cache| {
            let m = tiny_metrics();
            assert!(cache.load("0123", u64::MAX).is_none());
            assert!(cache.store("0123", "sweep", "cell-a", &m).unwrap());
            assert_eq!(cache.load("0123", u64::MAX), Some(m.clone()));
            // A different key misses even if the shard exists.
            assert!(cache.load("0124", u64::MAX).is_none());
            // Truncated / failed results are never persisted.
            let mut t = m.clone();
            t.truncated = true;
            assert!(!cache.store("0999", "sweep", "cell-b", &t).unwrap());
            assert!(cache.load("0999", u64::MAX).is_none());
            let mut f = m.clone();
            f.failed = true;
            assert!(!cache.store("0998", "sweep", "cell-c", &f).unwrap());
            assert!(cache.load("0998", u64::MAX).is_none());
        });
    }

    #[test]
    fn entries_only_replay_under_budgets_they_fit() {
        both_backends("budget", |cache| {
            let m = tiny_metrics(); // events = 1234
            cache.store("b001", "sweep", "cell", &m).unwrap();
            // A budget the cached run demonstrably fits: hit.
            assert_eq!(cache.load("b001", 2000), Some(m.clone()));
            // A budget at or below the cached event count: the cell would
            // truncate (or is ambiguous) under the current spec — recompute.
            assert!(cache.load("b001", 1234).is_none());
            assert!(cache.load("b001", 1000).is_none());
        });
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = tmp("corrupt");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        cache.store("abcd", "sweep", "cell", &m).unwrap();
        let path = dir.join("ab").join("abcd.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.load("abcd", u64::MAX).is_none());
        // Key mismatch inside the entry (moved file) is a miss too.
        cache.store("abce", "sweep", "cell", &m).unwrap();
        std::fs::rename(dir.join("ab").join("abce.json"), &path).unwrap();
        assert!(cache.load("abcd", u64::MAX).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backend_autodetection_is_sticky() {
        let dir = tmp("detect");
        // First open as log; a later open with no (or a conflicting)
        // preference must keep finding the log.
        let cache = CellCache::open_kind(&dir, Some(StoreKind::Log)).unwrap();
        cache.store("aa11", "sweep", "s", &tiny_metrics()).unwrap();
        let re = CellCache::open(&dir).unwrap();
        assert_eq!(re.backend().kind(), "log");
        assert!(re.load("aa11", u64::MAX).is_some());
        let conflicted = CellCache::open_kind(&dir, Some(StoreKind::LocalDisk)).unwrap();
        assert_eq!(conflicted.backend().kind(), "log");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_gc_bound_the_cache() {
        let dir = tmp("gc");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        cache.store("aa11", "sweep", "s", &m).unwrap();
        cache.store("bb22", "bench", "b", &m).unwrap();
        std::fs::write(dir.join("aa").join("junk.txt"), "x").unwrap();
        let s = cache.stats().unwrap();
        assert_eq!(s.entries, 2);
        assert_eq!(s.sweep_cells, 1);
        assert_eq!(s.bench_cells, 1);
        assert_eq!(s.foreign, 1);
        assert_eq!(s.claims, 0);
        assert!(s.bytes > 0);
        // Nothing is older than a day: gc keeps everything.
        let kept = cache.gc(Duration::from_secs(86_400)).unwrap();
        assert_eq!(kept.removed, 0);
        assert_eq!(kept.kept, 3);
        // Age 0 removes everything and prunes shards.
        let swept = cache.gc(Duration::ZERO).unwrap();
        assert_eq!(swept.removed, 3);
        assert!(swept.bytes_freed > 0);
        assert_eq!(cache.stats().unwrap().entries, 0);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_count_claims_separately_and_gc_spares_them() {
        both_backends("claimstats", |cache| {
            let m = tiny_metrics();
            cache.store("aa11", "sweep", "s", &m).unwrap();
            cache.try_claim("bb22", "w1").unwrap();
            cache.try_claim("cc33", "w2").unwrap();
            let s = cache.stats().unwrap();
            assert_eq!(s.entries, 1, "claims must not count as entries");
            assert_eq!(s.claims, 2);
            assert_eq!(s.stale_claims, 0, "fresh claims are not stale");
            assert_eq!(s.foreign, 0, "claims must not count as foreign");
            // The most aggressive entry gc possible: every entry goes,
            // every live claim survives.
            let swept = cache.gc_bounded(Some(Duration::ZERO), Some(0)).unwrap();
            assert_eq!(swept.removed, 1);
            let s = cache.stats().unwrap();
            assert_eq!(s.entries, 0);
            assert_eq!(s.claims, 2, "gc must never reap live claims");
            // Zero-TTL stats read them as stale; zero-TTL reap clears.
            let s = cache.stats_with_ttl(Duration::ZERO).unwrap();
            assert_eq!(s.stale_claims, 2);
            assert_eq!(cache.reap_stale_claims(Duration::ZERO).unwrap(), 2);
            assert_eq!(cache.stats().unwrap().claims, 0);
        });
    }

    #[test]
    fn gc_max_bytes_evicts_oldest_first_and_newest_survive() {
        let dir = tmp("lru");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        let keys = ["aa01", "bb02", "cc03", "dd04"];
        for (i, key) in keys.iter().enumerate() {
            cache.store(key, "sweep", &format!("cell-{i}"), &m).unwrap();
            // Strictly increasing mtimes, robust to coarse clocks.
            let when = SystemTime::now() - Duration::from_secs(60 * (keys.len() - i) as u64);
            let f = std::fs::File::options()
                .write(true)
                .open(dir.join(&key[0..2]).join(format!("{key}.json")))
                .unwrap();
            f.set_modified(when).unwrap();
        }
        let entry_bytes = std::fs::metadata(dir.join("aa").join("aa01.json"))
            .unwrap()
            .len();
        // Cap to roughly two entries: the two oldest go, the two newest
        // stay readable.
        let out = cache.gc_max_bytes(2 * entry_bytes + 1).unwrap();
        assert_eq!(out.removed, 2);
        assert_eq!(out.kept, 2);
        assert_eq!(out.bytes_freed, 2 * entry_bytes);
        assert!(cache.load("aa01", u64::MAX).is_none());
        assert!(cache.load("bb02", u64::MAX).is_none());
        assert!(cache.load("cc03", u64::MAX).is_some());
        assert!(cache.load("dd04", u64::MAX).is_some());
        // A generous cap is a no-op.
        let out = cache.gc_max_bytes(u64::MAX).unwrap();
        assert_eq!(out.removed, 0);
        assert_eq!(out.kept, 2);
        // Combined pass: age bound and size cap together clear the rest.
        let out = cache.gc_bounded(Some(Duration::ZERO), Some(0)).unwrap();
        assert_eq!(out.removed, 2);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("0").unwrap(), Duration::ZERO);
        assert_eq!(parse_duration("90s").unwrap(), Duration::from_secs(90));
        assert_eq!(parse_duration("15m").unwrap(), Duration::from_secs(900));
        assert_eq!(parse_duration("2h").unwrap(), Duration::from_secs(7200));
        assert_eq!(parse_duration("7d").unwrap(), Duration::from_secs(604_800));
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("week").is_err());
    }
}
