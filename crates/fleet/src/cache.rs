//! The content-addressed per-cell artifact cache behind `fleet campaign`.
//!
//! Every campaign cell persists its [`CellMetrics`] under a key derived
//! from three things:
//!
//! 1. the **canonicalized semantic content** of the cell — the spec fields
//!    and cell coordinates that can change the cell's metrics, and nothing
//!    that cannot ([`SweepSpec::cell_semantics`] /
//!    [`BenchSpec::cell_semantics`]). Canonicalization sorts map keys
//!    recursively and serializes through the typed spec structs, so JSON
//!    key order, TOML-lite formatting, comments and numeric spelling
//!    (`120` vs `120.0`) all hash identically while any semantically
//!    meaningful edit re-keys exactly the dirty cells;
//! 2. the **cell id**, folded in via the semantics' seed/coordinates (two
//!    cells with identical semantics *are* the same experiment — sharing
//!    the entry is correct, not a collision);
//! 3. the **engine fingerprint salt** ([`cache_salt`]):
//!    `flexpipe_serving::engine_fingerprint()` plus the fleet's report and
//!    cache format versions, so engine-semantics bumps, metric-definition
//!    changes and cache-layout changes each invalidate the whole cache.
//!
//! Layout: `<dir>/<key[0..2]>/<key>.json`, one JSON [`CacheEntry`] per
//! cell. Entries are written atomically (temp file + rename), so a killed
//! run never leaves a torn entry and a resumed run either sees a complete
//! result or recomputes. Truncated and panicked cells are **never**
//! cached — an interrupted (step-budget-truncated) cell must be
//! recomputed, which is what makes kill-and-resume byte-identical to an
//! uninterrupted run.
//!
//! Nothing wall-clock enters entry *contents*; `stats` / `gc` age entries
//! by file mtime, which stays outside every byte-compared artifact.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use serde::{Deserialize, Serialize, Value};

use crate::report::{CellMetrics, REPORT_VERSION};

/// Cache on-disk format version; bump on entry-layout changes.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The salt folded into every cell key: engine semantics fingerprint +
/// the fleet's metric (report) and cache format versions.
pub fn cache_salt() -> String {
    format!(
        "{}|report-v{REPORT_VERSION}|cache-v{CACHE_FORMAT_VERSION}",
        flexpipe_serving::engine_fingerprint()
    )
}

/// Recursively sorts map keys, leaving sequence order (which is
/// semantic: axis order defines cell order) untouched.
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Map(m) => {
            let mut entries: Vec<(String, Value)> = m
                .iter()
                .map(|(k, x)| (k.clone(), canonicalize(x)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Map(entries)
        }
        Value::Seq(xs) => Value::Seq(xs.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// The canonical compact JSON of a value (sorted keys, deterministic
/// float formatting) — the byte string cell keys hash.
pub fn canonical_json(v: &Value) -> String {
    serde_json::to_string(&canonicalize(v)).expect("canonical serialization")
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv64(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit content key (32 hex chars) of `semantics` under [`cache_salt`]:
/// two independent FNV-1a streams over `salt \0 canonical-json`.
pub fn cell_key(semantics: &Value) -> String {
    let mut bytes = cache_salt().into_bytes();
    bytes.push(0);
    bytes.extend_from_slice(canonical_json(semantics).as_bytes());
    let h1 = fnv64(0xCBF2_9CE4_8422_2325, &bytes);
    let h2 = fnv64(0x6C62_272E_07BB_0142, &bytes);
    format!("{h1:016x}{h2:016x}")
}

/// One persisted cell result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// On-disk format version ([`CACHE_FORMAT_VERSION`]).
    pub version: u32,
    /// The full content key (also the file stem; verified on load).
    pub key: String,
    /// The salt the key was derived under (diagnostic; the key already
    /// commits to it).
    pub salt: String,
    /// Experiment kind: `sweep` or `bench`.
    pub kind: String,
    /// Human-readable cell id of the first producer (diagnostic only —
    /// identical semantics under different ids legitimately share).
    pub id: String,
    /// The cached deterministic metrics.
    pub metrics: CellMetrics,
}

/// Aggregate cache statistics (`fleet cache stats`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheStats {
    /// Readable, well-formed entries.
    pub entries: usize,
    /// Of those, sweep cells.
    pub sweep_cells: usize,
    /// Of those, bench cells.
    pub bench_cells: usize,
    /// Entries whose salt differs from this build's (stale: unreachable
    /// until `gc` removes them).
    pub stale_salt: usize,
    /// Files that failed to parse as entries.
    pub foreign: usize,
    /// Total bytes across all files considered.
    pub bytes: u64,
    /// Age of the oldest entry, seconds (0 when empty).
    pub oldest_secs: u64,
    /// Age of the newest entry, seconds (0 when empty).
    pub newest_secs: u64,
}

/// Result of a `gc` pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GcOutcome {
    /// Entries removed.
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
    /// Bytes freed.
    pub bytes_freed: u64,
}

/// Tie-breaker for concurrent same-key writers' temp file names.
static STORE_NONCE: AtomicU64 = AtomicU64::new(0);

/// A content-addressed cell cache rooted at a directory.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Opens (creating if needed) a cache at `dir`.
    pub fn open(dir: &Path) -> io::Result<CellCache> {
        std::fs::create_dir_all(dir)?;
        Ok(CellCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &str) -> PathBuf {
        let shard = key.get(0..2).unwrap_or("xx");
        self.dir.join(shard).join(format!("{key}.json"))
    }

    /// Loads the metrics cached under `key`, if a complete, matching
    /// entry exists that is replayable under the caller's current step
    /// budget. Any mismatch (version, key, truncated/failed payload,
    /// parse error) reads as a miss — the cache is purely an accelerator
    /// and must never change results.
    ///
    /// The budget check is what keeps `max_events`' exclusion from cell
    /// keys sound in *both* directions: a cached cell replays only when
    /// it demonstrably fits the current budget (`events < max_events`),
    /// so lowering a spec's budget below what a cell needed recomputes
    /// the cell (which now truncates) instead of replaying a result the
    /// engine could no longer produce. Strict `<` is deliberate: a run
    /// that consumed exactly the budget is indistinguishable from a
    /// truncated one without re-running.
    pub fn load(&self, key: &str, max_events: u64) -> Option<CellMetrics> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        if entry.version != CACHE_FORMAT_VERSION
            || entry.key != key
            || entry.metrics.truncated
            || entry.metrics.failed
            || entry.metrics.events >= max_events
        {
            return None;
        }
        Some(entry.metrics)
    }

    /// Persists `metrics` under `key`, atomically. Truncated and failed
    /// cells are refused (returns `false`): an incomplete result must be
    /// recomputed on resume, never replayed.
    pub fn store(
        &self,
        key: &str,
        kind: &str,
        id: &str,
        metrics: &CellMetrics,
    ) -> io::Result<bool> {
        if metrics.truncated || metrics.failed {
            return Ok(false);
        }
        let entry = CacheEntry {
            version: CACHE_FORMAT_VERSION,
            key: key.to_string(),
            salt: cache_salt(),
            kind: kind.to_string(),
            id: id.to_string(),
            metrics: metrics.clone(),
        };
        let mut json = serde_json::to_string_pretty(&entry).expect("entry serializes");
        json.push('\n');
        let path = self.path_of(key);
        let shard = path.parent().expect("sharded path");
        std::fs::create_dir_all(shard)?;
        let tmp = shard.join(format!(
            ".tmp-{key}-{}-{}",
            std::process::id(),
            STORE_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &json)?;
        // Rename is atomic within a filesystem: concurrent same-key
        // writers race benignly (identical bytes), and a kill mid-write
        // leaves only a temp file that the next gc sweeps up.
        std::fs::rename(&tmp, &path)?;
        Ok(true)
    }

    /// Every entry file currently in the cache (sorted for determinism).
    fn entry_files(&self) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for shard in std::fs::read_dir(&self.dir)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(&shard)? {
                files.push(f?.path());
            }
        }
        files.sort();
        Ok(files)
    }

    /// Walks the cache and aggregates [`CacheStats`].
    pub fn stats(&self) -> io::Result<CacheStats> {
        let now = SystemTime::now();
        let salt = cache_salt();
        let mut s = CacheStats::default();
        let mut oldest: Option<u64> = None;
        let mut newest: Option<u64> = None;
        for path in self.entry_files()? {
            let meta = std::fs::metadata(&path)?;
            s.bytes += meta.len();
            let parsed = std::fs::read_to_string(&path)
                .ok()
                .and_then(|t| serde_json::from_str::<CacheEntry>(&t).ok());
            let Some(entry) = parsed else {
                s.foreign += 1;
                continue;
            };
            s.entries += 1;
            match entry.kind.as_str() {
                "sweep" => s.sweep_cells += 1,
                "bench" => s.bench_cells += 1,
                _ => {}
            }
            if entry.salt != salt {
                s.stale_salt += 1;
            }
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .map(|d| d.as_secs())
                .unwrap_or(0);
            oldest = Some(oldest.map_or(age, |o| o.max(age)));
            newest = Some(newest.map_or(age, |n| n.min(age)));
        }
        s.oldest_secs = oldest.unwrap_or(0);
        s.newest_secs = newest.unwrap_or(0);
        Ok(s)
    }

    /// Removes every file older than `max_age` (by mtime), including
    /// foreign files and orphaned temp files, then prunes empty shards.
    pub fn gc(&self, max_age: Duration) -> io::Result<GcOutcome> {
        self.gc_bounded(Some(max_age), None)
    }

    /// LRU size cap: evicts oldest-mtime files first until the cache's
    /// total size fits under `max_bytes`, then prunes empty shards. The
    /// newest entries always survive (unless a single entry alone exceeds
    /// the cap).
    pub fn gc_max_bytes(&self, max_bytes: u64) -> io::Result<GcOutcome> {
        self.gc_bounded(None, Some(max_bytes))
    }

    /// Combined gc pass: the age bound (if any) applies first, then the
    /// size cap (if any) evicts oldest-first among the survivors. Ties on
    /// mtime break by path, so the pass is deterministic.
    pub fn gc_bounded(
        &self,
        max_age: Option<Duration>,
        max_bytes: Option<u64>,
    ) -> io::Result<GcOutcome> {
        let now = SystemTime::now();
        let mut out = GcOutcome::default();
        // (age, path, size) of every file, oldest first.
        let mut files: Vec<(Duration, PathBuf, u64)> = Vec::new();
        for path in self.entry_files()? {
            let meta = std::fs::metadata(&path)?;
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .unwrap_or(Duration::ZERO);
            files.push((age, path, meta.len()));
        }
        files.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut total: u64 = files.iter().map(|f| f.2).sum();
        for (age, path, size) in files {
            let too_old = max_age.is_some_and(|cap| age >= cap);
            let too_big = max_bytes.is_some_and(|cap| total > cap);
            if too_old || too_big {
                std::fs::remove_file(&path)?;
                out.removed += 1;
                out.bytes_freed += size;
                total -= size;
            } else {
                out.kept += 1;
            }
        }
        for shard in std::fs::read_dir(&self.dir)? {
            let shard = shard?.path();
            if shard.is_dir() && std::fs::read_dir(&shard)?.next().is_none() {
                std::fs::remove_dir(&shard)?;
            }
        }
        Ok(out)
    }
}

/// Parses a human duration: bare seconds or `s`/`m`/`h`/`d` suffixed
/// (`0`, `90s`, `15m`, `12h`, `7d`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, mult) = match s.as_bytes().last() {
        Some(b's') => (&s[..s.len() - 1], 1.0),
        Some(b'm') => (&s[..s.len() - 1], 60.0),
        Some(b'h') => (&s[..s.len() - 1], 3600.0),
        Some(b'd') => (&s[..s.len() - 1], 86_400.0),
        _ => (s, 1.0),
    };
    let x: f64 = num
        .parse()
        .map_err(|_| format!("bad duration `{s}` (expected e.g. 90s, 15m, 12h, 7d)"))?;
    if !(x.is_finite() && x >= 0.0) {
        return Err(format!("bad duration `{s}` (must be non-negative)"));
    }
    // try_: an astronomically large value must stay an Err, not a panic.
    Duration::try_from_secs_f64(x * mult).map_err(|_| format!("bad duration `{s}` (out of range)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_metrics() -> CellMetrics {
        let mut m = crate::runner::failed_cell_metrics();
        m.failed = false;
        m.offered = 10;
        m.completed = 9;
        m.within_slo = 8;
        m.slo_attainment = 0.8;
        m.goodput_per_sec = 1.25;
        m.p99_ttft = 0.75;
        m.events = 1234;
        m
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flexpipe-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn canonicalization_sorts_maps_but_keeps_seq_order() {
        let a = serde_json::parse_value(r#"{"b": 1, "a": [2, 1], "c": {"y": 1, "x": 2}}"#).unwrap();
        let b = serde_json::parse_value(r#"{"c": {"x": 2, "y": 1}, "a": [2, 1], "b": 1}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(cell_key(&a), cell_key(&b));
        // Sequence order is semantic and must not collapse.
        let c = serde_json::parse_value(r#"{"a": [1, 2], "b": 1, "c": {"x": 2, "y": 1}}"#).unwrap();
        assert_ne!(cell_key(&a), cell_key(&c));
    }

    #[test]
    fn numeric_spelling_hashes_identically_after_typed_round_trip() {
        // Raw `120` vs `120.0` differ as Values, but keys are computed
        // from typed structs, whose f64 fields serialize uniformly.
        #[derive(Serialize, Deserialize)]
        struct S {
            x: f64,
        }
        let a: S = serde_json::from_str(r#"{"x": 120}"#).unwrap();
        let b: S = serde_json::from_str(r#"{"x": 120.0}"#).unwrap();
        assert_eq!(cell_key(&a.to_value()), cell_key(&b.to_value()));
    }

    #[test]
    fn keys_commit_to_the_salt() {
        let v = serde_json::parse_value(r#"{"a": 1}"#).unwrap();
        let key = cell_key(&v);
        assert_eq!(key.len(), 32);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(cache_salt().contains("engine-v"));
        assert!(cache_salt().contains(&format!("report-v{REPORT_VERSION}")));
    }

    #[test]
    fn store_load_round_trips_and_refuses_incomplete_cells() {
        let dir = tmp("roundtrip");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        assert!(cache.load("0123", u64::MAX).is_none());
        assert!(cache.store("0123", "sweep", "cell-a", &m).unwrap());
        assert_eq!(cache.load("0123", u64::MAX), Some(m.clone()));
        // A different key misses even if the shard exists.
        assert!(cache.load("0124", u64::MAX).is_none());
        // Truncated / failed results are never persisted.
        let mut t = m.clone();
        t.truncated = true;
        assert!(!cache.store("0999", "sweep", "cell-b", &t).unwrap());
        assert!(cache.load("0999", u64::MAX).is_none());
        let mut f = m;
        f.failed = true;
        assert!(!cache.store("0998", "sweep", "cell-c", &f).unwrap());
        assert!(cache.load("0998", u64::MAX).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_only_replay_under_budgets_they_fit() {
        let dir = tmp("budget");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics(); // events = 1234
        cache.store("b001", "sweep", "cell", &m).unwrap();
        // A budget the cached run demonstrably fits: hit.
        assert_eq!(cache.load("b001", 2000), Some(m));
        // A budget at or below the cached event count: the cell would
        // truncate (or is ambiguous) under the current spec — recompute.
        assert!(cache.load("b001", 1234).is_none());
        assert!(cache.load("b001", 1000).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = tmp("corrupt");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        cache.store("abcd", "sweep", "cell", &m).unwrap();
        let path = dir.join("ab").join("abcd.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.load("abcd", u64::MAX).is_none());
        // Key mismatch inside the entry (moved file) is a miss too.
        cache.store("abce", "sweep", "cell", &m).unwrap();
        std::fs::rename(dir.join("ab").join("abce.json"), &path).unwrap();
        assert!(cache.load("abcd", u64::MAX).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_gc_bound_the_cache() {
        let dir = tmp("gc");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        cache.store("aa11", "sweep", "s", &m).unwrap();
        cache.store("bb22", "bench", "b", &m).unwrap();
        std::fs::write(dir.join("aa").join("junk.txt"), "x").unwrap();
        let s = cache.stats().unwrap();
        assert_eq!(s.entries, 2);
        assert_eq!(s.sweep_cells, 1);
        assert_eq!(s.bench_cells, 1);
        assert_eq!(s.foreign, 1);
        assert!(s.bytes > 0);
        // Nothing is older than a day: gc keeps everything.
        let kept = cache.gc(Duration::from_secs(86_400)).unwrap();
        assert_eq!(kept.removed, 0);
        assert_eq!(kept.kept, 3);
        // Age 0 removes everything and prunes shards.
        let swept = cache.gc(Duration::ZERO).unwrap();
        assert_eq!(swept.removed, 3);
        assert!(swept.bytes_freed > 0);
        assert_eq!(cache.stats().unwrap().entries, 0);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_max_bytes_evicts_oldest_first_and_newest_survive() {
        let dir = tmp("lru");
        let cache = CellCache::open(&dir).unwrap();
        let m = tiny_metrics();
        let keys = ["aa01", "bb02", "cc03", "dd04"];
        for (i, key) in keys.iter().enumerate() {
            cache.store(key, "sweep", &format!("cell-{i}"), &m).unwrap();
            // Strictly increasing mtimes, robust to coarse clocks.
            let when = SystemTime::now() - Duration::from_secs(60 * (keys.len() - i) as u64);
            let f = std::fs::File::options()
                .write(true)
                .open(dir.join(&key[0..2]).join(format!("{key}.json")))
                .unwrap();
            f.set_modified(when).unwrap();
        }
        let entry_bytes = std::fs::metadata(dir.join("aa").join("aa01.json"))
            .unwrap()
            .len();
        // Cap to roughly two entries: the two oldest go, the two newest
        // stay readable.
        let out = cache.gc_max_bytes(2 * entry_bytes + 1).unwrap();
        assert_eq!(out.removed, 2);
        assert_eq!(out.kept, 2);
        assert_eq!(out.bytes_freed, 2 * entry_bytes);
        assert!(cache.load("aa01", u64::MAX).is_none());
        assert!(cache.load("bb02", u64::MAX).is_none());
        assert!(cache.load("cc03", u64::MAX).is_some());
        assert!(cache.load("dd04", u64::MAX).is_some());
        // A generous cap is a no-op.
        let out = cache.gc_max_bytes(u64::MAX).unwrap();
        assert_eq!(out.removed, 0);
        assert_eq!(out.kept, 2);
        // Combined pass: age bound and size cap together clear the rest.
        let out = cache.gc_bounded(Some(Duration::ZERO), Some(0)).unwrap();
        assert_eq!(out.removed, 2);
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("0").unwrap(), Duration::ZERO);
        assert_eq!(parse_duration("90s").unwrap(), Duration::from_secs(90));
        assert_eq!(parse_duration("15m").unwrap(), Duration::from_secs(900));
        assert_eq!(parse_duration("2h").unwrap(), Duration::from_secs(7200));
        assert_eq!(parse_duration("7d").unwrap(), Duration::from_secs(604_800));
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("week").is_err());
    }
}
