//! The parallel fleet runner: executes an expanded scenario grid on a
//! worker thread pool over the serving engine.
//!
//! Each worker pulls the next unclaimed cell from a shared atomic cursor,
//! constructs the cell's workload / scenario / policy from the spec
//! (generation is seeded per cell, so construction order across threads
//! cannot perturb results), runs the engine, and writes its metrics into
//! the cell's pre-allocated result slot. Model artefacts (graph +
//! granularity lattice) are built once and shared via `Arc` — lattice
//! construction costs more than a short cell run.
//!
//! Robustness: every cell body runs under `catch_unwind`, so one
//! pathological cell reports as failed instead of tearing down the grid,
//! and the engine's step budget (`SweepSpec::max_events`) bounds runaway
//! cells, which surface with `truncated = true`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use flexpipe_bench::PaperSetup;
use flexpipe_chaos::{virtual_horizon, warp_arrivals, DisruptionScript};
use flexpipe_serving::{AdmissionMode, Engine, EngineConfig, ObservedRun, Scenario, TraceMode};
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, WorkloadSpec};

use crate::report::{summarize_cell, CellMetrics, CellResult, FleetReport};
use crate::spec::{Cell, DisruptionShape, SweepSpec};

/// Runner configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Worker threads; 0 means one per available core (capped by the cell
    /// count).
    pub threads: usize,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
    /// Gateway admission strategy for every engine run. Both modes
    /// produce byte-identical reports (the index is a pure optimization);
    /// [`AdmissionMode::NaiveScan`] exists for equivalence checks and
    /// A/B timing.
    pub admission: AdmissionMode,
    /// Structured per-cell progress on stderr: one `start` line and one
    /// `finish` line (wall ms, truncation flag) per cell. Wall-clock
    /// detail stays on stderr only — it never enters any artifact.
    pub verbose: bool,
}

/// A failed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetError(pub String);

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FleetError {}

/// Realizes a cell's disruption trace. Scripts pass through verbatim;
/// stochastic generators draw from a stream derived from the cell seed —
/// which excludes the policy axis — so every policy in the cell group
/// faces the identical trace.
pub fn realize_disruptions(spec: &SweepSpec, cell: &Cell) -> DisruptionScript {
    match &cell.disruption {
        DisruptionShape::None => DisruptionScript::default(),
        DisruptionShape::Script(s) => s.clone(),
        DisruptionShape::Random(gen) => {
            let cluster = cell.cluster.cluster();
            gen.realize(
                &SimRng::seed(cell.seed).stream_named("chaos"),
                spec.warmup_secs + spec.horizon_secs,
                cluster.total_gpus(),
                cluster.servers.len() as u32,
            )
        }
    }
}

/// Executes one cell to its metrics with the default (indexed) admission
/// path. Deterministic given (spec, cell).
pub fn run_cell(spec: &SweepSpec, cell: &Cell, setup: &PaperSetup) -> CellMetrics {
    run_cell_in_mode(spec, cell, setup, AdmissionMode::default())
}

/// Executes one cell under an explicit admission mode. The mode never
/// changes the metrics — only wall-clock — which the equivalence tests
/// assert report-byte for report-byte.
pub fn run_cell_in_mode(
    spec: &SweepSpec,
    cell: &Cell,
    setup: &PaperSetup,
    admission: AdmissionMode,
) -> CellMetrics {
    let (engine, offered) = build_cell_engine(spec, cell, setup, admission);
    let report = engine.run();
    summarize_cell(&report, spec.warmup_secs, spec.horizon_secs, offered)
}

/// Executes one cell with observability armed: the engine records a
/// structured trace under `trace` and (optionally) profiles its own event
/// dispatch. Returns the same deterministic metrics as [`run_cell_in_mode`]
/// — tracing is observation-only — plus the full [`ObservedRun`].
pub fn run_cell_observed(
    spec: &SweepSpec,
    cell: &Cell,
    setup: &PaperSetup,
    admission: AdmissionMode,
    trace: TraceMode,
    profile: bool,
) -> (CellMetrics, ObservedRun) {
    let (mut engine, offered) = build_cell_engine(spec, cell, setup, admission);
    engine.set_trace(trace);
    engine.set_profiler(profile);
    let observed = engine.run_observed();
    let metrics = summarize_cell(
        &observed.report,
        spec.warmup_secs,
        spec.horizon_secs,
        offered,
    );
    (metrics, observed)
}

/// Builds a cell's fully-configured engine plus its offered-load count
/// (post-warmup arrivals). Shared by the plain and the observed cell
/// runners so both execute the identical scenario.
fn build_cell_engine(
    spec: &SweepSpec,
    cell: &Cell,
    setup: &PaperSetup,
    admission: AdmissionMode,
) -> (Engine, usize) {
    let warmup = spec.warmup_secs;
    let span = warmup + spec.horizon_secs;
    let script = realize_disruptions(spec, cell);
    // Rate surges densify arrivals via the chaos time-warp: generate over
    // the stretched virtual horizon, then map back onto the real axis.
    // Without surges both steps are identity.
    let mut workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal {
            rate: cell.rate,
            cv: cell.cv,
        },
        lengths: spec.lengths,
        slo: SimDuration::from_secs_f64(spec.slo_secs),
        slo_per_output_token: SimDuration::from_secs_f64(spec.slo_per_output_token_ms / 1e3),
        horizon_secs: virtual_horizon(span, &script),
    }
    .generate(&mut SimRng::seed(cell.seed));
    warp_arrivals(&mut workload, &script, span);

    let cut = SimTime::from_secs_f64(warmup);
    let offered = workload
        .requests
        .iter()
        .filter(|r| r.arrival >= cut)
        .count();

    let scenario = Scenario {
        config: EngineConfig {
            max_events: spec.max_events,
            admission,
            ..EngineConfig::default()
        },
        cluster: cell.cluster.cluster(),
        background: spec.background.profile(),
        tier: Default::default(),
        cost: setup.cost,
        workload,
        disruptions: script,
        // Grace window past the horizon so in-flight requests drain.
        horizon: SimTime::from_secs_f64(span + 30.0),
        seed: cell.seed,
    };
    let policy = cell.policy.build(cell.rate);
    let engine = Engine::new(scenario, setup.graph.clone(), setup.lattice.clone(), policy);
    (engine, offered)
}

/// Metrics recorded for a cell whose engine run panicked: all-zero, with
/// `failed` set so tables, rollups and gates flag it distinctly from
/// step-budget truncation.
pub(crate) fn failed_cell_metrics() -> CellMetrics {
    CellMetrics {
        offered: 0,
        completed: 0,
        within_slo: 0,
        slo_attainment: 0.0,
        goodput_per_sec: 0.0,
        p50_ttft: 0.0,
        p99_ttft: 0.0,
        p50_tpot: 0.0,
        p99_tpot: 0.0,
        p50_latency: 0.0,
        p99_latency: 0.0,
        refactors: 0,
        refactor_pause_secs: 0.0,
        mean_gpus_held: 0.0,
        spawns: 0,
        revocations: 0,
        requests_replayed: 0,
        tokens_lost: 0,
        mean_ttr_secs: 0.0,
        max_ttr_secs: 0.0,
        disrupted_completed: 0,
        disrupted_within_slo: 0,
        events: 0,
        truncated: false,
        failed: true,
    }
}

/// Runs `n` index-addressed jobs on a pool of `threads` workers and
/// returns the results in index order. The shared backbone of
/// [`run_sweep`], [`crate::bench::run_bench`] and
/// [`crate::campaign::run_campaign`]: workers pull the next unclaimed
/// index from an atomic cursor and write into pre-assigned slots, so
/// thread interleaving can never reorder (or drop) results. `f` is
/// responsible for its own panic containment.
pub(crate) fn parallel_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every job executed")
        })
        .collect()
}

/// Runs the full sweep, in parallel, and assembles the report.
pub fn run_sweep(spec: &SweepSpec, opts: &RunOptions) -> Result<FleetReport, FleetError> {
    spec.validate().map_err(FleetError)?;
    let cells = spec.expand();
    let n = cells.len();
    let started = Instant::now();
    if !opts.quiet {
        eprintln!(
            "fleet `{}`: {} cells ({} cvs x {} rates x {} clusters x {} disruptions x {} replicas x {} policies), model {}",
            spec.name,
            n,
            spec.cvs.len(),
            spec.rates.len(),
            spec.clusters.len(),
            spec.disruptions.len(),
            spec.replicas.max(1),
            spec.policies.len(),
            spec.model.name(),
        );
    }

    // Shared model artefacts (graph + lattice): built once, read-only.
    let setup = PaperSetup::for_model(spec.model);
    if !opts.quiet {
        eprintln!(
            "fleet `{}`: lattice ready ({} levels) in {:.1}s",
            spec.name,
            setup.levels.len(),
            started.elapsed().as_secs_f64()
        );
    }

    let threads = effective_threads(opts.threads, n);
    let finished = AtomicUsize::new(0);
    let metrics = parallel_indexed(n, threads, |i| {
        let cell = &cells[i];
        if opts.verbose && !opts.quiet {
            eprintln!("fleet cell={} event=start", cell.id());
        }
        let cell_started = Instant::now();
        let metrics = match catch_unwind(AssertUnwindSafe(|| {
            run_cell_in_mode(spec, cell, &setup, opts.admission)
        })) {
            Ok(m) => m,
            Err(_) => {
                eprintln!("fleet cell {} PANICKED; recorded as failed", cell.id());
                failed_cell_metrics()
            }
        };
        if opts.verbose && !opts.quiet {
            eprintln!(
                "fleet cell={} event=finish wall_ms={:.1} truncated={} failed={}",
                cell.id(),
                cell_started.elapsed().as_secs_f64() * 1e3,
                metrics.truncated,
                metrics.failed,
            );
        }
        let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
        if !opts.quiet {
            eprintln!(
                "fleet [{done}/{n}] {} done in {:.1}s (SLO att. {:.1}%{})",
                cell.id(),
                cell_started.elapsed().as_secs_f64(),
                metrics.slo_attainment * 100.0,
                if metrics.truncated { ", TRUNCATED" } else { "" },
            );
        }
        metrics
    });

    let results: Vec<CellResult> = cells
        .into_iter()
        .zip(metrics)
        .map(|(cell, metrics)| CellResult { cell, metrics })
        .collect();
    if !opts.quiet {
        eprintln!(
            "fleet `{}`: {} cells on {} threads in {:.1}s",
            spec.name,
            n,
            threads,
            started.elapsed().as_secs_f64()
        );
    }
    Ok(FleetReport::assemble(spec.clone(), results))
}

/// Resolves the worker count: explicit, else one per core, always within
/// `[1, cells]`.
pub fn effective_threads(requested: usize, cells: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let t = if requested == 0 { auto } else { requested };
    t.clamp(1, cells.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackgroundShape, ClusterShape, PolicySpec};
    use flexpipe_bench::SystemId;
    use flexpipe_model::ModelId;
    use flexpipe_workload::LengthProfile;

    /// A tiny, fast sweep for unit tests: small model, short horizon.
    pub(crate) fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            model: ModelId::Llama2_7B,
            seed: 7,
            horizon_secs: 20.0,
            warmup_secs: 5.0,
            slo_secs: 2.0,
            slo_per_output_token_ms: 100.0,
            background: BackgroundShape::Idle,
            lengths: LengthProfile::fixed(128, 8),
            max_events: 20_000_000,
            cvs: vec![1.0, 4.0],
            rates: vec![4.0],
            clusters: vec![ClusterShape::Custom {
                nodes: 8,
                total_gpus: 12,
                servers_per_rack: 4,
            }],
            policies: vec![
                PolicySpec::Paper(SystemId::FlexPipe),
                PolicySpec::Static {
                    stages: 2,
                    replicas: 1,
                },
            ],
            disruptions: vec![crate::spec::DisruptionShape::None],
            replicas: 1,
        }
    }

    #[test]
    fn parallel_indexed_preserves_order_at_any_thread_count() {
        let want: Vec<usize> = (0..100).map(|i| i * 2).collect();
        for threads in [1, 4, 64] {
            assert_eq!(parallel_indexed(100, threads, |i| i * 2), want);
        }
        assert!(parallel_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn thread_resolution_is_clamped() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(16, 4), 4);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 0), 1);
    }

    #[test]
    fn single_cell_runs_and_serves_traffic() {
        let spec = tiny_spec();
        let setup = PaperSetup::for_model(spec.model);
        let cells = spec.expand();
        let m = run_cell(&spec, &cells[0], &setup);
        assert!(m.offered > 0, "no offered load");
        assert!(m.completed > 0, "nothing completed");
        assert!(!m.truncated);
    }

    #[test]
    fn sweep_runs_all_cells_in_parallel() {
        let spec = tiny_spec();
        let report = run_sweep(
            &spec,
            &RunOptions {
                threads: 4,
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.policies.len(), 2);
        assert!(report.cells.iter().all(|c| c.metrics.completed > 0));
    }

    #[test]
    fn tight_step_budget_truncates_instead_of_aborting() {
        let mut spec = tiny_spec();
        spec.max_events = 500; // far below what 20 s of traffic needs
        let setup = PaperSetup::for_model(spec.model);
        let cells = spec.expand();
        let m = run_cell(&spec, &cells[0], &setup);
        assert!(m.truncated, "watchdog should have fired");
    }
}
