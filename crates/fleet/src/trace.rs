//! `fleet trace`: structured engine traces as a first-class fleet
//! artifact — record a cell's trace, summarize a trace file, diff two
//! traces structurally, and profile the engine's own dispatch self-time.
//!
//! Traces are virtual-time-stamped JSONL (see [`flexpipe_obs`]): byte
//! stable for a given (spec, cell) at any thread count, which makes
//! `fleet trace diff` a meaningful equivalence check — the seed of the
//! future trace-equivalence checker subsystem. Profiling is the one
//! deliberately wall-clock piece and stays outside every artifact,
//! like bench timings.

use flexpipe_bench::PaperSetup;
use flexpipe_model::ModelId;
use flexpipe_serving::{AdmissionMode, ObservedRun, TraceMode};
use flexpipe_workload::LengthProfile;

use crate::report::CellMetrics;
use crate::runner::run_cell_observed;
use crate::spec::{BackgroundShape, Cell, ClusterShape, DisruptionShape, PolicySpec, SweepSpec};

/// Finds the cell of `spec` with the given [`Cell::id`], if any.
pub fn find_cell(spec: &SweepSpec, id: &str) -> Option<Cell> {
    spec.expand().into_iter().find(|c| c.id() == id)
}

/// Runs one cell with the trace recorder armed in `mode`. Metrics are
/// identical to the untraced run — recording is observation-only.
pub fn record_cell_trace(
    spec: &SweepSpec,
    cell: &Cell,
    admission: AdmissionMode,
    mode: TraceMode,
) -> (CellMetrics, ObservedRun) {
    let setup = PaperSetup::for_model(spec.model);
    run_cell_observed(spec, cell, &setup, admission, mode, false)
}

/// The dispatch-profile scenario: `instances` single-stage Llama2-7B
/// replicas (the model's lattice has a 1-stage level, so one GPU each)
/// on a cluster sized with headroom, under light traffic so control
/// ticks and admission dominate the event mix. This is the fleet-scale
/// configuration the `policy.on_tick` self-time numbers are quoted at.
pub fn profile_spec(instances: u32) -> SweepSpec {
    let total_gpus = instances + 64;
    SweepSpec {
        name: format!("ontick-profile-{instances}"),
        model: ModelId::Llama2_7B,
        seed: 7,
        horizon_secs: 10.0,
        warmup_secs: 2.0,
        slo_secs: 2.0,
        slo_per_output_token_ms: 100.0,
        background: BackgroundShape::Idle,
        lengths: LengthProfile::fixed(64, 4),
        max_events: 200_000_000,
        cvs: vec![2.0],
        rates: vec![20.0],
        clusters: vec![ClusterShape::Custom {
            nodes: total_gpus.div_ceil(8),
            total_gpus,
            servers_per_rack: 8,
        }],
        policies: vec![PolicySpec::Static {
            stages: 1,
            replicas: instances,
        }],
        disruptions: vec![DisruptionShape::None],
        replicas: 1,
    }
}

/// Runs the dispatch-profile scenario with the self-time profiler
/// enabled (trace recorder off: this measures, it doesn't record).
pub fn profile_on_tick(instances: u32) -> (CellMetrics, ObservedRun) {
    let spec = profile_spec(instances);
    let cell = spec.expand().remove(0);
    let setup = PaperSetup::for_model(spec.model);
    run_cell_observed(
        &spec,
        &cell,
        &setup,
        AdmissionMode::default(),
        TraceMode::Off,
        true,
    )
}

/// The control-plane profile scenario: FlexPipe's real Algorithm-1 loop
/// pinned at a standing fleet of `instances` replicas (see
/// [`PolicySpec::FlexPipeFleet`]) under light traffic, so `on_tick`'s
/// own fleet walk dominates its self-time. Cluster sized for 4-stage
/// replicas plus headroom.
pub fn profile_spec_flexpipe(instances: u32) -> SweepSpec {
    let total_gpus = instances * 4 + 64;
    SweepSpec {
        name: format!("flexpipe-ontick-profile-{instances}"),
        policies: vec![PolicySpec::FlexPipeFleet {
            replicas: instances,
        }],
        clusters: vec![ClusterShape::Custom {
            nodes: total_gpus.div_ceil(8),
            total_gpus,
            servers_per_rack: 8,
        }],
        // Long horizon: the measurement is steady-state tick cost, so the
        // one unavoidable O(fleet) tick right after the initial deployment
        // must amortize away.
        horizon_secs: 120.0,
        ..profile_spec(instances)
    }
}

/// Profiles FlexPipe's `on_tick` at fleet scale under an explicit
/// admission mode — the measurement behind the incremental-solver claim:
/// `Indexed` applies the engine's dirty-set deltas to a warm mirror,
/// `NaiveScan` re-snapshots the whole fleet every tick.
pub fn profile_on_tick_flexpipe(
    instances: u32,
    admission: AdmissionMode,
) -> (CellMetrics, ObservedRun) {
    let spec = profile_spec_flexpipe(instances);
    let cell = spec.expand().remove(0);
    let setup = PaperSetup::for_model(spec.model);
    run_cell_observed(&spec, &cell, &setup, admission, TraceMode::Off, true)
}

/// The calm-tick plan-cache profile scenario
/// ([`PolicySpec::FlexPipeCalm`]): `instances` replicas deployed 8-stage
/// deep while near-zero traffic keeps the Eq. (4) target at the coarse
/// end, so the entire fleet is off-target on every calm tick and the
/// refactor pass walks it end to end without ever acting. Under
/// `NaiveScan` that walk is paid every tick; under `Indexed` the plan
/// cache re-proves it a no-op in O(#levels) — the speedup this scenario
/// exists to measure.
pub fn profile_spec_calm(instances: u32) -> SweepSpec {
    let total_gpus = instances * 8 + 64;
    SweepSpec {
        name: format!("flexpipe-calm-profile-{instances}"),
        policies: vec![PolicySpec::FlexPipeCalm {
            replicas: instances,
            stages: 8,
        }],
        clusters: vec![ClusterShape::Custom {
            nodes: total_gpus.div_ceil(8),
            total_gpus,
            servers_per_rack: 8,
        }],
        horizon_secs: 120.0,
        // Near-zero (validation requires positive): the ~1 expected
        // arrival leaves all but a couple of ticks delta-free.
        rates: vec![0.01],
        ..profile_spec(instances)
    }
}

/// Profiles the calm-tick refactor pass at fleet scale under an explicit
/// admission mode — the measurement behind the plan-cache claim.
pub fn profile_on_tick_calm(
    instances: u32,
    admission: AdmissionMode,
) -> (CellMetrics, ObservedRun) {
    let spec = profile_spec_calm(instances);
    let cell = spec.expand().remove(0);
    let setup = PaperSetup::for_model(spec.model);
    run_cell_observed(&spec, &cell, &setup, admission, TraceMode::Off, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_spec_validates_and_has_one_cell() {
        let spec = profile_spec(8);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn find_cell_matches_ids_exactly() {
        let spec = profile_spec(8);
        let cells = spec.expand();
        let id = cells[0].id();
        assert_eq!(find_cell(&spec, &id), Some(cells[0].clone()));
        assert_eq!(find_cell(&spec, "no-such-cell"), None);
    }

    #[test]
    fn flexpipe_profile_pins_the_fleet_and_profiles_on_tick() {
        let spec = profile_spec_flexpipe(6);
        assert!(spec.validate().is_ok());
        for mode in [AdmissionMode::Indexed, AdmissionMode::NaiveScan] {
            let (metrics, observed) = profile_on_tick_flexpipe(6, mode);
            assert!(!metrics.truncated);
            // The FlexPipeFleet policy holds the standing fleet at exactly
            // the pinned replica count: nothing retires, nothing re-spawns.
            assert_eq!(metrics.spawns, 6, "fleet must pin at 6 replicas");
            assert!(metrics.completed > 0, "profile scenario must serve");
            assert!(observed.profiler.calls("policy.on_tick") > 0);
        }
    }

    #[test]
    fn calm_profile_pins_an_off_target_fleet_that_never_acts() {
        let spec = profile_spec_calm(4);
        assert!(spec.validate().is_ok());
        let mut per_mode = Vec::new();
        for mode in [AdmissionMode::Indexed, AdmissionMode::NaiveScan] {
            let (metrics, observed) = profile_on_tick_calm(4, mode);
            assert!(!metrics.truncated);
            assert_eq!(metrics.spawns, 4, "fleet must pin at 4 replicas");
            assert_eq!(
                metrics.refactors, 0,
                "unwinnable hysteresis must keep the walk action-free"
            );
            assert!(observed.profiler.calls("policy.on_tick") > 0);
            per_mode.push(metrics);
        }
        // The plan cache is a pure optimization: skipping the walk must
        // leave every metric identical to the naive reference's.
        assert_eq!(per_mode[0], per_mode[1]);
    }

    #[test]
    fn small_profile_run_reports_on_tick_self_time() {
        let (metrics, observed) = profile_on_tick(4);
        assert!(!metrics.truncated);
        assert!(metrics.completed > 0, "profile scenario must serve traffic");
        assert!(
            observed.profiler.calls("policy.on_tick") > 0,
            "every control tick must hit the profiled policy scope"
        );
        assert!(observed.profiler.calls("control_tick") > 0);
        // The recorder stayed off: measurement, not recording.
        assert!(observed.trace.is_empty());
    }
}
