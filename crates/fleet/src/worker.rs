//! `fleet worker`: drain one campaign's cell list from N independent
//! processes — or machines — against a shared cache directory.
//!
//! A worker loads the same campaign file as `fleet campaign`, derives
//! the same [`CampaignPlan`] (same cells, same content keys, same salt),
//! and then computes cells *into the cache* without assembling any
//! artifacts. Assembly is a separate, cache-only step
//! ([`crate::campaign::assemble_campaign`], `fleet campaign assemble`)
//! run once the fleet has drained. Two coordination modes:
//!
//! - **Shard mode** (`--shard i/n`): the deterministic partitioner.
//!   Every worker computes [`key_shard`]`(key, n)` from the campaign
//!   file alone and takes exactly the cells whose keys land in its
//!   shard — stateless, coordination-free, no shared-filesystem
//!   semantics required beyond the atomic cache writes themselves.
//!   The cost: a dead worker's shard simply doesn't get done until a
//!   replacement with the same `i/n` is started.
//! - **Claim mode** (default): workers race over the full cell list,
//!   coordinating through atomic claim markers in the cache
//!   ([`crate::store::CacheStore::try_claim`]). A claim holds the
//!   worker id and is heartbeated (mtime refresh) while the cell
//!   computes; claims whose heartbeat is older than `--claim-ttl` are
//!   presumed dead and reaped by any live worker. Workers visit pending
//!   cells in a per-worker shuffled order to keep contention low.
//!
//! Claims are an **optimization, not a lock**: if two workers ever
//! compute the same cell (a reaped-but-alive worker, claim races on
//! non-POSIX filesystems), both produce byte-identical entries and the
//! atomic last-writer-wins put keeps the cache consistent. Correctness
//! never depends on mutual exclusion — only efficiency does.
//!
//! Mixed-version fleets are rejected by construction: the cell keys are
//! salted with the engine fingerprint, so a worker built from different
//! engine semantics addresses disjoint keys and can neither poison nor
//! satisfy this campaign's cells.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::{key_shard, CellCache};
use crate::campaign::{CampaignPlan, CampaignSpec};
use crate::runner::{effective_threads, parallel_indexed, FleetError};
use crate::store::{ClaimOutcome, DEFAULT_CLAIM_TTL};
use crate::RunOptions;

/// Configuration of one `fleet worker` process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker pool / progress / admission options (shared with sweeps).
    pub run: RunOptions,
    /// This worker's identity, recorded in every claim it takes.
    /// Defaults to `w<pid>`; give each machine a stable, unique id when
    /// running over a shared filesystem.
    pub worker_id: String,
    /// `Some((i, n))` selects shard mode: take exactly the cells whose
    /// [`key_shard`] under `n` equals `i`. `None` selects claim mode.
    pub shard: Option<(usize, usize)>,
    /// Claim-mode heartbeat TTL: claims not refreshed within this window
    /// are presumed abandoned and reaped.
    pub claim_ttl: Duration,
    /// Stop after computing this many cells (chunked draining; also how
    /// tests simulate a worker killed mid-campaign). `None` drains.
    pub max_cells: Option<usize>,
    /// Storage backend preference for a fresh cache directory; an
    /// initialized directory keeps its detected backend.
    pub store: Option<crate::store::StoreKind>,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            run: RunOptions::default(),
            worker_id: format!("w{}", std::process::id()),
            shard: None,
            claim_ttl: DEFAULT_CLAIM_TTL,
            max_cells: None,
            store: None,
        }
    }
}

/// What one worker process did. Purely informational (stderr summary):
/// the cache is the only artifact a worker produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerOutcome {
    /// Cells in this worker's scope (its shard, or the whole campaign).
    pub assigned: usize,
    /// Cells this worker computed and stored.
    pub computed: usize,
    /// Cells already in the cache (here before us, or raced to us).
    pub hits: usize,
    /// Cells that computed truncated/failed and therefore could not be
    /// cached — `assemble` will report these as missing.
    pub uncacheable: usize,
    /// Stale claims this worker reaped from presumed-dead peers.
    pub reaped: usize,
    /// Cells left for other workers when `max_cells` stopped us early.
    pub abandoned: usize,
}

impl WorkerOutcome {
    /// The one-line stderr summary.
    pub fn render(&self, worker_id: &str) -> String {
        format!(
            "worker {worker_id}: {} assigned, {} computed, {} cache hits, {} uncacheable, \
             {} stale claims reaped, {} left to peers",
            self.assigned, self.computed, self.hits, self.uncacheable, self.reaped, self.abandoned
        )
    }
}

/// Runs one worker process over `spec`'s cell list against the cache at
/// `cache_dir`, in shard or claim mode (see the module docs). Returns
/// when every assigned cell is resolved — cached (by anyone), computed,
/// or proven uncacheable — or when `max_cells` stops it early.
pub fn run_worker(
    spec: &CampaignSpec,
    base_dir: &Path,
    cache_dir: &Path,
    opts: &WorkerOptions,
) -> Result<WorkerOutcome, FleetError> {
    if let Some((i, n)) = opts.shard {
        if n == 0 || i >= n {
            return Err(FleetError(format!(
                "bad shard {i}/{n}: expected 0 <= i < n"
            )));
        }
    }
    let plan = CampaignPlan::load(spec, base_dir)?;
    let cache = CellCache::open_kind(cache_dir, opts.store)
        .map_err(|e| FleetError(format!("cannot open cache {}: {e}", cache_dir.display())))?;
    let setups = plan.setups();

    // This worker's scope within the flat job list.
    let assigned: Vec<usize> = match opts.shard {
        Some((i, n)) => (0..plan.total_cells())
            .filter(|&j| key_shard(plan.job(j).key, n) == i)
            .collect(),
        None => (0..plan.total_cells()).collect(),
    };
    if !opts.run.quiet {
        eprintln!(
            "worker {} on campaign `{}`: {} of {} cells in scope ({}), cache at {}",
            opts.worker_id,
            spec.name,
            assigned.len(),
            plan.total_cells(),
            match opts.shard {
                Some((i, n)) => format!("shard {i}/{n}"),
                None => format!("claim mode, ttl {:?}", opts.claim_ttl),
            },
            cache.dir().display(),
        );
    }

    let outcome = match opts.shard {
        Some(_) => run_sharded(&plan, &cache, &setups, &assigned, opts),
        None => run_claiming(&plan, &cache, &setups, &assigned, opts),
    };
    if !opts.run.quiet {
        if let Ok(o) = &outcome {
            eprintln!("{}", o.render(&opts.worker_id));
        }
    }
    outcome
}

/// Shard mode: compute every assigned cell not already cached. No
/// claims, no waiting on peers — the partition is the coordination.
fn run_sharded(
    plan: &CampaignPlan,
    cache: &CellCache,
    setups: &[(flexpipe_model::ModelId, flexpipe_bench::PaperSetup)],
    assigned: &[usize],
    opts: &WorkerOptions,
) -> Result<WorkerOutcome, FleetError> {
    let n = assigned.len();
    let threads = effective_threads(opts.run.threads, n);
    let computed_cap = opts.max_cells.unwrap_or(usize::MAX);
    let computed_count = AtomicUsize::new(0);
    // 0 = hit, 1 = computed, 2 = uncacheable, 3 = abandoned (over cap).
    let results: Vec<u8> = parallel_indexed(n, threads, |slot| {
        let i = assigned[slot];
        let job = plan.job(i);
        if cache.load(job.key, job.budget).is_some() {
            progress(opts, job.entry_name, &job.id, "HIT");
            return 0;
        }
        if computed_count.fetch_add(1, Ordering::Relaxed) >= computed_cap {
            return 3;
        }
        let metrics = plan.compute(i, setups, opts.run.admission);
        let stored = store_logged(cache, &job, &metrics);
        progress(
            opts,
            job.entry_name,
            &job.id,
            if stored { "computed" } else { "UNCACHEABLE" },
        );
        if stored {
            1
        } else {
            2
        }
    });
    Ok(WorkerOutcome {
        assigned: n,
        computed: results.iter().filter(|&&r| r == 1).count(),
        hits: results.iter().filter(|&&r| r == 0).count(),
        uncacheable: results.iter().filter(|&&r| r == 2).count(),
        reaped: 0,
        abandoned: results.iter().filter(|&&r| r == 3).count(),
    })
}

/// Claim mode: repeated passes over the pending set in a per-worker
/// shuffled order, claiming before computing, heartbeating held claims,
/// reaping stale ones between passes.
fn run_claiming(
    plan: &CampaignPlan,
    cache: &CellCache,
    setups: &[(flexpipe_model::ModelId, flexpipe_bench::PaperSetup)],
    assigned: &[usize],
    opts: &WorkerOptions,
) -> Result<WorkerOutcome, FleetError> {
    let mut outcome = WorkerOutcome {
        assigned: assigned.len(),
        ..Default::default()
    };
    let mut pending: Vec<usize> = assigned.to_vec();
    let computed_cap = opts.max_cells.unwrap_or(usize::MAX);

    // Heartbeat thread: refresh every claim this worker currently holds,
    // well inside the TTL, so long cells are never reaped from under us.
    let held: Arc<Mutex<BTreeSet<String>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let beat = heartbeat_interval(opts.claim_ttl);
    let heartbeat = {
        let held = Arc::clone(&held);
        let stop = Arc::clone(&stop);
        let cache = cache.clone();
        let worker = opts.worker_id.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(beat);
                let keys: Vec<String> = held.lock().unwrap().iter().cloned().collect();
                for key in keys {
                    // A failed refresh (claim reaped by a peer) is not
                    // fatal: the cell's put is still atomic and
                    // byte-identical either way.
                    let _ = cache.refresh_claim(&key, &worker);
                }
            }
        })
    };

    let mut pass = 0u64;
    while !pending.is_empty() && outcome.computed < computed_cap {
        pass += 1;
        let order = shuffled(&pending, &opts.worker_id, pass);
        let n = order.len();
        let threads = effective_threads(opts.run.threads, n);
        let computed_before = outcome.computed;
        let computed_count = AtomicUsize::new(computed_before);
        // Per-item outcome: 0 hit, 1 computed, 2 uncacheable, 3 pending
        // (held elsewhere or over the compute cap).
        let results: Vec<u8> = parallel_indexed(n, threads, |slot| {
            let i = order[slot];
            let job = plan.job(i);
            if cache.load(job.key, job.budget).is_some() {
                progress(opts, job.entry_name, &job.id, "HIT");
                return 0;
            }
            if computed_count.load(Ordering::Relaxed) >= computed_cap {
                return 3;
            }
            match cache.try_claim(job.key, &opts.worker_id) {
                Ok(ClaimOutcome::Acquired) => {}
                Ok(ClaimOutcome::Held { worker, .. }) => {
                    progress(opts, job.entry_name, &job.id, &format!("held by {worker}"));
                    return 3;
                }
                Err(e) => {
                    // Claiming is best-effort; an unreadable claim file
                    // just defers the cell to a later pass.
                    eprintln!("worker {}: claim {} failed: {e}", opts.worker_id, job.key);
                    return 3;
                }
            }
            // Between our cache probe and the claim, a peer may have
            // finished this cell and released: re-check before burning
            // compute.
            if cache.load(job.key, job.budget).is_some() {
                let _ = cache.release_claim(job.key, &opts.worker_id);
                progress(opts, job.entry_name, &job.id, "HIT");
                return 0;
            }
            if computed_count.fetch_add(1, Ordering::Relaxed) >= computed_cap {
                let _ = cache.release_claim(job.key, &opts.worker_id);
                return 3;
            }
            held.lock().unwrap().insert(job.key.to_string());
            let metrics = plan.compute(i, setups, opts.run.admission);
            let stored = store_logged(cache, &job, &metrics);
            held.lock().unwrap().remove(job.key);
            let _ = cache.release_claim(job.key, &opts.worker_id);
            progress(
                opts,
                job.entry_name,
                &job.id,
                if stored { "computed" } else { "UNCACHEABLE" },
            );
            if stored {
                1
            } else {
                2
            }
        });

        let mut still_pending = Vec::new();
        for (slot, &r) in results.iter().enumerate() {
            match r {
                0 => outcome.hits += 1,
                1 => outcome.computed += 1,
                2 => outcome.uncacheable += 1,
                _ => still_pending.push(order[slot]),
            }
        }
        still_pending.sort_unstable();
        let progressed = still_pending.len() < pending.len();
        pending = still_pending;

        if !pending.is_empty() && outcome.computed < computed_cap {
            // Peers hold everything that's left. Reap the dead, then
            // wait briefly for the living before re-checking.
            match cache.reap_stale_claims(opts.claim_ttl) {
                Ok(reaped) => {
                    outcome.reaped += reaped;
                    if reaped == 0 && !progressed {
                        std::thread::sleep(beat);
                    }
                }
                Err(e) => {
                    eprintln!("worker {}: reap failed: {e}", opts.worker_id);
                    std::thread::sleep(beat);
                }
            }
        }
    }
    outcome.abandoned = pending.len();

    stop.store(true, Ordering::Relaxed);
    let _ = heartbeat.join();
    Ok(outcome)
}

/// How often held claims are heartbeated: well inside the TTL, but never
/// busier than 4 Hz even under second-scale test TTLs.
fn heartbeat_interval(ttl: Duration) -> Duration {
    (ttl / 4).max(Duration::from_millis(250))
}

fn store_logged(
    cache: &CellCache,
    job: &crate::campaign::CellJob<'_>,
    metrics: &crate::report::CellMetrics,
) -> bool {
    cache
        .store(job.key, job.kind, &job.id, metrics)
        .unwrap_or_else(|e| {
            eprintln!("worker cache store failed for {}: {e}", job.id);
            false
        })
}

fn progress(opts: &WorkerOptions, entry: &str, id: &str, what: &str) {
    if !opts.run.quiet {
        eprintln!("worker {} {entry}:{id} {what}", opts.worker_id);
    }
}

/// A deterministic per-(worker, pass) shuffle of the pending list:
/// different workers visit cells in different orders, so claim
/// collisions stay rare without any shared state. Plain FNV-seeded
/// Fisher–Yates — statistical quality is irrelevant here, divergence
/// between workers is the point.
fn shuffled(items: &[usize], worker_id: &str, pass: u64) -> Vec<usize> {
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in worker_id.as_bytes() {
        seed = (seed ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    seed ^= pass.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        // xorshift64* step per draw.
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        let j = (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffles_are_deterministic_permutations_that_differ_by_worker() {
        let items: Vec<usize> = (0..32).collect();
        let a1 = shuffled(&items, "w1", 1);
        let a2 = shuffled(&items, "w1", 1);
        assert_eq!(a1, a2, "same worker+pass → same order");
        let b = shuffled(&items, "w2", 1);
        let c = shuffled(&items, "w1", 2);
        assert_ne!(a1, b, "distinct workers diverge");
        assert_ne!(a1, c, "distinct passes diverge");
        for perm in [&a1, &b, &c] {
            let mut sorted = (*perm).clone();
            sorted.sort_unstable();
            assert_eq!(sorted, items, "a permutation, nothing lost");
        }
    }

    #[test]
    fn heartbeat_stays_inside_the_ttl_but_bounded() {
        assert_eq!(
            heartbeat_interval(Duration::from_secs(60)),
            Duration::from_secs(15)
        );
        assert_eq!(
            heartbeat_interval(Duration::from_millis(100)),
            Duration::from_millis(250)
        );
    }

    #[test]
    fn bad_shards_error() {
        let spec = CampaignSpec::template();
        let opts = WorkerOptions {
            shard: Some((3, 3)),
            ..Default::default()
        };
        let err = run_worker(&spec, Path::new("."), Path::new("/tmp/x"), &opts).unwrap_err();
        assert!(err.to_string().contains("bad shard"), "{err}");
        let opts = WorkerOptions {
            shard: Some((0, 0)),
            ..Default::default()
        };
        assert!(run_worker(&spec, Path::new("."), Path::new("/tmp/x"), &opts).is_err());
    }
}
