//! Pluggable cache storage engines behind the [`CacheStore`] trait.
//!
//! [`crate::cache::CellCache`] owns the *semantics* of the campaign cache
//! — content keys, budget-aware replay, the refusal to persist truncated
//! cells. This module owns the *bytes*: how entries and worker claims
//! actually land on storage. Two backends prove the seam:
//!
//! - [`LocalDiskStore`] (default) — one file per entry at
//!   `<dir>/<key[0..2]>/<key>.json`, written atomically via temp file +
//!   rename. Claims are sibling `<key>.claim` files acquired with a
//!   hard-link publish (write temp, `link(2)` into place), the classic
//!   NFS-safe mutual-exclusion primitive: `rename` silently replaces but
//!   `link` fails with `EEXIST`, so exactly one worker wins. Claim
//!   freshness is the file's mtime, refreshed by the owner's heartbeat.
//!   This layout is safe for N workers sharing the directory over NFS
//!   or syncing it with rsync.
//! - [`LogStore`] — a single-file, sqlite-flavoured append log at
//!   `<dir>/cells.log`: every `put`, `claim` and `release` appends one
//!   JSON record; reading replays the log (last put per key wins, first
//!   unreleased claim per key wins). Claim acquisition is
//!   append-then-re-read: racing workers all append, then agree on the
//!   earliest record, so at most one proceeds. `gc` compacts the log in
//!   place (temp + rename), keeping live claims and surviving entries.
//!   Single `O_APPEND` writes keep records intact under same-machine
//!   concurrency; unlike the localdisk layout this backend is **not**
//!   NFS-safe and is meant for single-host fleets or as the seam proof.
//!
//! Both backends satisfy one conformance suite (`store_conformance`
//! integration tests); everything above the trait — campaigns, workers,
//! `assemble`, `stats`, `gc` — is backend-agnostic.
//!
//! # Claims are an optimization, not a lock
//!
//! The worker protocol stays correct even if mutual exclusion fails
//! (e.g. a reaped-then-resurrected claim): cells are deterministic and
//! entry writes are atomic last-writer-wins with byte-identical payloads,
//! so duplicated computation wastes time but can never corrupt results.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use serde::{Deserialize, Serialize};

/// Claims older than this read as stale in `cache stats` and in worker
/// default configuration (override per command with `--claim-ttl`).
pub const DEFAULT_CLAIM_TTL: Duration = Duration::from_secs(60);

/// Storage engine selector for a cache directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// One file per entry under two-hex-char shard directories (default).
    LocalDisk,
    /// A single-file append log (`cells.log`).
    Log,
}

impl StoreKind {
    /// CLI name (`localdisk` / `log`).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::LocalDisk => "localdisk",
            StoreKind::Log => "log",
        }
    }

    /// Parses a CLI backend name.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "localdisk" => Some(StoreKind::LocalDisk),
            "log" => Some(StoreKind::Log),
            _ => None,
        }
    }
}

/// One stored object as seen by `stats` / `gc`: its key (file stem for
/// the localdisk layout), payload (when readable), size and mtime age.
#[derive(Debug, Clone)]
pub struct StoredObject {
    /// The key the object is stored under. For foreign files in a
    /// localdisk cache directory this is the file name.
    pub key: String,
    /// The stored payload; `None` when unreadable (counted as foreign).
    pub payload: Option<String>,
    /// Object size in bytes.
    pub bytes: u64,
    /// Age since last write.
    pub age: Duration,
}

/// Result of a claim attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimOutcome {
    /// This worker now holds the claim.
    Acquired,
    /// Another worker holds it.
    Held {
        /// The holder's worker id.
        worker: String,
        /// Time since the holder's last heartbeat.
        age: Duration,
    },
}

/// One live claim, as listed by `stats` and the reaper.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimInfo {
    /// Claimed cell key.
    pub key: String,
    /// Holding worker id.
    pub worker: String,
    /// Time since the holder's last heartbeat.
    pub age: Duration,
}

/// Result of a `gc` pass (entries only; live claims are never touched).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GcOutcome {
    /// Entries removed.
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
    /// Bytes freed.
    pub bytes_freed: u64,
}

/// A pluggable storage engine for the campaign cell cache.
///
/// Implementations must be safe for concurrent use from multiple threads
/// *and* multiple processes sharing the same root: `put` is atomic
/// last-writer-wins (concurrent same-key writers may interleave but a
/// reader never observes a torn payload), and `try_claim` grants each key
/// to at most one worker at a time among racers.
///
/// Claim freshness is wall-clock based (file mtime or logged
/// timestamps): holders heartbeat via [`CacheStore::refresh_claim`] and
/// anyone may reap claims older than a TTL via
/// [`CacheStore::reap_stale_claims`]. Wall clocks never enter entry
/// payloads — only claim bookkeeping — so cached *results* stay
/// byte-deterministic.
pub trait CacheStore: Send + Sync + std::fmt::Debug {
    /// Backend name (`localdisk` / `log`).
    fn kind(&self) -> &'static str;

    /// The root directory this store lives in.
    fn root(&self) -> &Path;

    /// Fetches the payload stored under `key`, if any. Unreadable or
    /// torn objects read as absent — the cache layer treats any miss as
    /// "recompute".
    fn get(&self, key: &str) -> io::Result<Option<String>>;

    /// Persists `payload` under `key` atomically (last writer wins).
    fn put(&self, key: &str, payload: &str) -> io::Result<()>;

    /// Every stored object, sorted by key. Includes foreign files for
    /// backends whose root can hold them; never includes claims.
    fn list(&self) -> io::Result<Vec<StoredObject>>;

    /// Removes the object stored under `key`; returns whether it existed.
    fn remove(&self, key: &str) -> io::Result<bool>;

    /// Attempts to claim `key` for `worker`. At most one concurrent
    /// caller per key acquires; re-claiming a key this worker already
    /// holds refreshes the heartbeat and acquires.
    fn try_claim(&self, key: &str, worker: &str) -> io::Result<ClaimOutcome>;

    /// Heartbeats a held claim. Returns `false` when the claim is no
    /// longer this worker's (reaped, or lost to a raced reacquisition) —
    /// the holder should treat its work as potentially duplicated but
    /// may still publish (puts are idempotent for deterministic cells).
    fn refresh_claim(&self, key: &str, worker: &str) -> io::Result<bool>;

    /// Releases `worker`'s claim on `key`; other workers' claims are
    /// untouched. Returns whether a claim by this worker was present.
    fn release_claim(&self, key: &str, worker: &str) -> io::Result<bool>;

    /// Every live claim.
    fn list_claims(&self) -> io::Result<Vec<ClaimInfo>>;

    /// Releases every claim whose heartbeat is older than `ttl`,
    /// returning how many were reaped. Fresh claims are never touched.
    fn reap_stale_claims(&self, ttl: Duration) -> io::Result<usize>;

    /// Entry garbage collection: drops entries older than `max_age`
    /// and/or LRU-evicts (oldest first) down to `max_bytes` total.
    /// **Never** removes live claims — stale-claim reaping is only ever
    /// explicit, via [`CacheStore::reap_stale_claims`].
    fn gc(&self, max_age: Option<Duration>, max_bytes: Option<u64>) -> io::Result<GcOutcome>;
}

/// Opens a storage engine at `dir`, creating the directory if needed.
///
/// Backend resolution: an existing `cells.log` marks the directory as a
/// [`LogStore`] regardless of `kind` (mixing engines in one directory
/// would split the cache invisibly); otherwise `kind` decides, defaulting
/// to [`LocalDiskStore`].
pub fn open_store(dir: &Path, kind: Option<StoreKind>) -> io::Result<Arc<dyn CacheStore>> {
    std::fs::create_dir_all(dir)?;
    let detected = if dir.join(LOG_FILE).is_file() {
        Some(StoreKind::Log)
    } else {
        None
    };
    match detected.or(kind).unwrap_or(StoreKind::LocalDisk) {
        StoreKind::LocalDisk => Ok(Arc::new(LocalDiskStore::open(dir)?)),
        StoreKind::Log => Ok(Arc::new(LogStore::open(dir)?)),
    }
}

fn age_of(meta: &std::fs::Metadata) -> Duration {
    meta.modified()
        .ok()
        .and_then(|m| SystemTime::now().duration_since(m).ok())
        .unwrap_or(Duration::ZERO)
}

/// Tie-breaker for concurrent same-key writers' temp file names.
static STORE_NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_name(tag: &str) -> String {
    format!(
        ".tmp-{tag}-{}-{}",
        std::process::id(),
        STORE_NONCE.fetch_add(1, Ordering::Relaxed)
    )
}

// ---------------------------------------------------------------------
// Localdisk
// ---------------------------------------------------------------------

/// The default storage engine: one `<key[0..2]>/<key>.json` file per
/// entry, `<key>.claim` sibling files for the worker protocol. See the
/// module docs for the concurrency story.
#[derive(Debug)]
pub struct LocalDiskStore {
    dir: PathBuf,
}

impl LocalDiskStore {
    /// Opens (creating if needed) a localdisk store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<LocalDiskStore> {
        std::fs::create_dir_all(dir)?;
        Ok(LocalDiskStore {
            dir: dir.to_path_buf(),
        })
    }

    fn shard_of(&self, key: &str) -> PathBuf {
        self.dir.join(key.get(0..2).unwrap_or("xx"))
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.shard_of(key).join(format!("{key}.json"))
    }

    fn claim_path(&self, key: &str) -> PathBuf {
        self.shard_of(key).join(format!("{key}.claim"))
    }

    /// Every file under the shard directories, sorted; claims excluded
    /// when `claims` is false, everything else (entries, foreign junk,
    /// orphaned temp files) included so `stats`/`gc` can account for it.
    fn files(&self, claims: bool) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for shard in std::fs::read_dir(&self.dir)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(&shard)? {
                let path = f?.path();
                let is_claim = path.extension().is_some_and(|e| e == "claim");
                if is_claim == claims {
                    files.push(path);
                }
            }
        }
        files.sort();
        Ok(files)
    }

    fn prune_empty_shards(&self) -> io::Result<()> {
        for shard in std::fs::read_dir(&self.dir)? {
            let shard = shard?.path();
            if shard.is_dir() && std::fs::read_dir(&shard)?.next().is_none() {
                std::fs::remove_dir(&shard)?;
            }
        }
        Ok(())
    }
}

impl CacheStore for LocalDiskStore {
    fn kind(&self) -> &'static str {
        "localdisk"
    }

    fn root(&self) -> &Path {
        &self.dir
    }

    fn get(&self, key: &str) -> io::Result<Option<String>> {
        match std::fs::read_to_string(self.entry_path(key)) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn put(&self, key: &str, payload: &str) -> io::Result<()> {
        let path = self.entry_path(key);
        let shard = path.parent().expect("sharded path");
        std::fs::create_dir_all(shard)?;
        let tmp = shard.join(temp_name(key));
        std::fs::write(&tmp, payload)?;
        // Rename is atomic within a filesystem: concurrent same-key
        // writers race benignly (identical bytes), and a kill mid-write
        // leaves only a temp file that the next gc sweeps up.
        std::fs::rename(&tmp, &path)
    }

    fn list(&self) -> io::Result<Vec<StoredObject>> {
        let mut out = Vec::new();
        for path in self.files(false)? {
            let meta = std::fs::metadata(&path)?;
            let key = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push(StoredObject {
                key,
                payload: std::fs::read_to_string(&path).ok(),
                bytes: meta.len(),
                age: age_of(&meta),
            });
        }
        Ok(out)
    }

    fn remove(&self, key: &str) -> io::Result<bool> {
        match std::fs::remove_file(self.entry_path(key)) {
            Ok(()) => {
                let _ = self.prune_empty_shards();
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn try_claim(&self, key: &str, worker: &str) -> io::Result<ClaimOutcome> {
        let claim = self.claim_path(key);
        let shard = claim.parent().expect("sharded path");
        std::fs::create_dir_all(shard)?;
        // Publish via hard link: write the worker id to a temp file, then
        // link it to the claim name. Unlike rename, link fails with
        // EEXIST when the target exists — atomic mutual exclusion that
        // also holds over NFS.
        let tmp = shard.join(temp_name(&format!("{key}-claim")));
        std::fs::write(&tmp, format!("{worker}\n"))?;
        let linked = std::fs::hard_link(&tmp, &claim);
        let _ = std::fs::remove_file(&tmp);
        match linked {
            Ok(()) => Ok(ClaimOutcome::Acquired),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&claim)
                    .map(|s| s.trim().to_string())
                    .unwrap_or_default();
                if holder == worker {
                    // Our own claim (a previous pass, or a crashed
                    // incarnation under the same id): refresh and keep it.
                    self.refresh_claim(key, worker)?;
                    return Ok(ClaimOutcome::Acquired);
                }
                let age = std::fs::metadata(&claim).map(|m| age_of(&m)).unwrap_or(
                    // Claim vanished between link failure and stat: the
                    // holder released. Report it as freshly held; the
                    // next pass will acquire.
                    Duration::ZERO,
                );
                Ok(ClaimOutcome::Held {
                    worker: holder,
                    age,
                })
            }
            Err(e) => Err(e),
        }
    }

    fn refresh_claim(&self, key: &str, worker: &str) -> io::Result<bool> {
        let claim = self.claim_path(key);
        match std::fs::read_to_string(&claim) {
            Ok(holder) if holder.trim() == worker => {
                if let Ok(f) = std::fs::File::options().write(true).open(&claim) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Ok(true)
            }
            Ok(_) => Ok(false),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn release_claim(&self, key: &str, worker: &str) -> io::Result<bool> {
        let claim = self.claim_path(key);
        match std::fs::read_to_string(&claim) {
            Ok(holder) if holder.trim() == worker => {
                let _ = std::fs::remove_file(&claim);
                Ok(true)
            }
            Ok(_) => Ok(false),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn list_claims(&self) -> io::Result<Vec<ClaimInfo>> {
        let mut out = Vec::new();
        for path in self.files(true)? {
            let Ok(meta) = std::fs::metadata(&path) else {
                continue; // released while listing
            };
            out.push(ClaimInfo {
                key: path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default(),
                worker: std::fs::read_to_string(&path)
                    .map(|s| s.trim().to_string())
                    .unwrap_or_default(),
                age: age_of(&meta),
            });
        }
        Ok(out)
    }

    fn reap_stale_claims(&self, ttl: Duration) -> io::Result<usize> {
        let mut reaped = 0;
        for c in self.list_claims()? {
            if c.age >= ttl && std::fs::remove_file(self.claim_path(&c.key)).is_ok() {
                reaped += 1;
            }
        }
        let _ = self.prune_empty_shards();
        Ok(reaped)
    }

    fn gc(&self, max_age: Option<Duration>, max_bytes: Option<u64>) -> io::Result<GcOutcome> {
        let mut out = GcOutcome::default();
        // (age, path, size) of every non-claim file, oldest first. Claim
        // files are invisible here by construction: a live claim must
        // survive any entry gc, however aggressive.
        let mut files: Vec<(Duration, PathBuf, u64)> = Vec::new();
        for path in self.files(false)? {
            let meta = std::fs::metadata(&path)?;
            files.push((age_of(&meta), path, meta.len()));
        }
        files.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut total: u64 = files.iter().map(|f| f.2).sum();
        for (age, path, size) in files {
            let too_old = max_age.is_some_and(|cap| age >= cap);
            let too_big = max_bytes.is_some_and(|cap| total > cap);
            if too_old || too_big {
                std::fs::remove_file(&path)?;
                out.removed += 1;
                out.bytes_freed += size;
                total -= size;
            } else {
                out.kept += 1;
            }
        }
        self.prune_empty_shards()?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Append log
// ---------------------------------------------------------------------

const LOG_FILE: &str = "cells.log";

/// One log record. `at_ms` is wall-clock bookkeeping (entry age for gc,
/// claim freshness) and never leaks into payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LogRecord {
    /// `put`, `claim` or `release`.
    op: String,
    /// Cell key.
    key: String,
    /// Entry payload (`put` only).
    payload: Option<String>,
    /// Worker id (`claim` / `release` only).
    worker: Option<String>,
    /// Milliseconds since the Unix epoch at append time.
    at_ms: u64,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn ms_age(at_ms: u64) -> Duration {
    Duration::from_millis(now_ms().saturating_sub(at_ms))
}

/// Replayed log state: last put per key, live claims per key in append
/// order (first one wins).
#[derive(Debug, Default)]
struct LogState {
    /// key → (payload, at_ms).
    entries: std::collections::BTreeMap<String, (String, u64)>,
    /// key → ordered live claims (worker, at_ms of latest heartbeat).
    claims: std::collections::BTreeMap<String, Vec<(String, u64)>>,
}

impl LogState {
    fn replay(text: &str) -> LogState {
        let mut st = LogState::default();
        for line in text.lines() {
            // A torn trailing line (killed mid-append) parses as garbage
            // and is skipped; every complete record before it stands.
            let Ok(rec) = serde_json::from_str::<LogRecord>(line) else {
                continue;
            };
            match rec.op.as_str() {
                "put" => {
                    if let Some(p) = rec.payload {
                        st.entries.insert(rec.key, (p, rec.at_ms));
                    }
                }
                "claim" => {
                    if let Some(w) = rec.worker {
                        let held = st.claims.entry(rec.key).or_default();
                        match held.iter_mut().find(|(worker, _)| *worker == w) {
                            // A re-claim is a heartbeat: freshen, keep rank.
                            Some(slot) => slot.1 = rec.at_ms,
                            None => held.push((w, rec.at_ms)),
                        }
                    }
                }
                "release" => {
                    if let Some(w) = rec.worker {
                        if let Some(held) = st.claims.get_mut(&rec.key) {
                            held.retain(|(worker, _)| *worker != w);
                            if held.is_empty() {
                                st.claims.remove(&rec.key);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        st
    }

    /// The winning (first live) claim on `key`, if any.
    fn holder(&self, key: &str) -> Option<&(String, u64)> {
        self.claims.get(key).and_then(|held| held.first())
    }
}

/// The single-file append-log storage engine. See the module docs for
/// the format and its (single-host) concurrency contract.
#[derive(Debug)]
pub struct LogStore {
    dir: PathBuf,
    log: PathBuf,
}

impl LogStore {
    /// Opens (creating if needed) a log store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<LogStore> {
        std::fs::create_dir_all(dir)?;
        let log = dir.join(LOG_FILE);
        if !log.is_file() {
            // Touch the marker so `open_store` autodetection is stable
            // from the first open, not the first write.
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&log)?;
        }
        Ok(LogStore {
            dir: dir.to_path_buf(),
            log,
        })
    }

    fn state(&self) -> io::Result<LogState> {
        Ok(LogState::replay(&std::fs::read_to_string(&self.log)?))
    }

    fn append(&self, rec: &LogRecord) -> io::Result<()> {
        use std::io::Write;
        let mut line = serde_json::to_string(rec).expect("log record serializes");
        line.push('\n');
        // One O_APPEND write per record keeps lines intact under
        // same-machine concurrent appenders.
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.log)?;
        f.write_all(line.as_bytes())
    }

    /// Atomically rewrites the log from `state` (gc compaction).
    fn rewrite(&self, st: &LogState) -> io::Result<()> {
        let mut text = String::new();
        for (key, (payload, at_ms)) in &st.entries {
            let rec = LogRecord {
                op: "put".into(),
                key: key.clone(),
                payload: Some(payload.clone()),
                worker: None,
                at_ms: *at_ms,
            };
            text.push_str(&serde_json::to_string(&rec).expect("log record serializes"));
            text.push('\n');
        }
        for (key, held) in &st.claims {
            for (worker, at_ms) in held {
                let rec = LogRecord {
                    op: "claim".into(),
                    key: key.clone(),
                    payload: None,
                    worker: Some(worker.clone()),
                    at_ms: *at_ms,
                };
                text.push_str(&serde_json::to_string(&rec).expect("log record serializes"));
                text.push('\n');
            }
        }
        let tmp = self.dir.join(temp_name("log"));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.log)
    }
}

impl CacheStore for LogStore {
    fn kind(&self) -> &'static str {
        "log"
    }

    fn root(&self) -> &Path {
        &self.dir
    }

    fn get(&self, key: &str) -> io::Result<Option<String>> {
        Ok(self.state()?.entries.get(key).map(|(p, _)| p.clone()))
    }

    fn put(&self, key: &str, payload: &str) -> io::Result<()> {
        self.append(&LogRecord {
            op: "put".into(),
            key: key.to_string(),
            payload: Some(payload.to_string()),
            worker: None,
            at_ms: now_ms(),
        })
    }

    fn list(&self) -> io::Result<Vec<StoredObject>> {
        Ok(self
            .state()?
            .entries
            .iter()
            .map(|(key, (payload, at_ms))| StoredObject {
                key: key.clone(),
                bytes: payload.len() as u64,
                payload: Some(payload.clone()),
                age: ms_age(*at_ms),
            })
            .collect())
    }

    fn remove(&self, key: &str) -> io::Result<bool> {
        let mut st = self.state()?;
        if st.entries.remove(key).is_none() {
            return Ok(false);
        }
        self.rewrite(&st)?;
        Ok(true)
    }

    fn try_claim(&self, key: &str, worker: &str) -> io::Result<ClaimOutcome> {
        // Append-then-re-read: every racer appends its claim record, then
        // all replay the log and agree on the earliest live claim. At
        // most one worker sees itself as the winner.
        self.append(&LogRecord {
            op: "claim".into(),
            key: key.to_string(),
            payload: None,
            worker: Some(worker.to_string()),
            at_ms: now_ms(),
        })?;
        let st = self.state()?;
        match st.holder(key) {
            Some((w, _)) if w == worker => Ok(ClaimOutcome::Acquired),
            Some((w, at_ms)) => {
                // Lost the race: retract our queued claim so the winner's
                // release leaves the key free, not queued to us.
                self.release_claim(key, worker)?;
                Ok(ClaimOutcome::Held {
                    worker: w.clone(),
                    age: ms_age(*at_ms),
                })
            }
            None => Ok(ClaimOutcome::Acquired), // cannot happen: we just appended
        }
    }

    fn refresh_claim(&self, key: &str, worker: &str) -> io::Result<bool> {
        let st = self.state()?;
        match st.holder(key) {
            Some((w, _)) if w == worker => {
                self.append(&LogRecord {
                    op: "claim".into(),
                    key: key.to_string(),
                    payload: None,
                    worker: Some(worker.to_string()),
                    at_ms: now_ms(),
                })?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn release_claim(&self, key: &str, worker: &str) -> io::Result<bool> {
        let held = self
            .state()?
            .claims
            .get(key)
            .is_some_and(|held| held.iter().any(|(w, _)| w == worker));
        self.append(&LogRecord {
            op: "release".into(),
            key: key.to_string(),
            payload: None,
            worker: Some(worker.to_string()),
            at_ms: now_ms(),
        })?;
        Ok(held)
    }

    fn list_claims(&self) -> io::Result<Vec<ClaimInfo>> {
        Ok(self
            .state()?
            .claims
            .iter()
            .flat_map(|(key, held)| {
                held.iter().map(|(worker, at_ms)| ClaimInfo {
                    key: key.clone(),
                    worker: worker.clone(),
                    age: ms_age(*at_ms),
                })
            })
            .collect())
    }

    fn reap_stale_claims(&self, ttl: Duration) -> io::Result<usize> {
        let mut reaped = 0;
        for c in self.list_claims()? {
            if c.age >= ttl {
                self.release_claim(&c.key, &c.worker)?;
                reaped += 1;
            }
        }
        Ok(reaped)
    }

    fn gc(&self, max_age: Option<Duration>, max_bytes: Option<u64>) -> io::Result<GcOutcome> {
        let mut st = self.state()?;
        let mut out = GcOutcome::default();
        // (age, key, size), oldest first — same eviction order as the
        // localdisk backend so `gc` semantics are backend-independent.
        let mut rows: Vec<(Duration, String, u64)> = st
            .entries
            .iter()
            .map(|(k, (p, at_ms))| (ms_age(*at_ms), k.clone(), p.len() as u64))
            .collect();
        rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut total: u64 = rows.iter().map(|r| r.2).sum();
        for (age, key, size) in rows {
            let too_old = max_age.is_some_and(|cap| age >= cap);
            let too_big = max_bytes.is_some_and(|cap| total > cap);
            if too_old || too_big {
                st.entries.remove(&key);
                out.removed += 1;
                out.bytes_freed += size;
                total -= size;
            } else {
                out.kept += 1;
            }
        }
        self.rewrite(&st)?;
        Ok(out)
    }
}
