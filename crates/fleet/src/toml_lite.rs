//! A small TOML-subset reader for sweep specifications.
//!
//! The offline build environment has no `toml` crate, so the fleet accepts
//! specs in either JSON (full support via the vendored `serde_json`) or
//! this TOML subset, which covers everything a [`crate::SweepSpec`]
//! needs:
//!
//! - top-level and dotted `[table]` headers;
//! - `key = value` pairs with strings, integers, floats, booleans;
//! - inline arrays (nestable, heterogeneous) and inline tables;
//! - `#` comments and blank lines.
//!
//! Not supported (and not needed here): arrays-of-tables `[[x]]`,
//! multi-line strings, datetimes, escape sequences beyond `\" \\ \n \t`.
//! The parser produces a [`serde::Value`] tree, so anything expressible in
//! the subset deserializes through the same path as JSON.

use serde::Value;

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TOML line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML-subset document into a value tree.
pub fn parse(text: &str) -> Result<Value, TomlError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Dotted path of the currently open [table].
    let mut current_path: Vec<String> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated table header"))?;
            if header.starts_with('[') {
                return Err(err(lineno, "arrays of tables ([[x]]) are not supported"));
            }
            current_path = header
                .split('.')
                .map(|s| s.trim().trim_matches('"').to_string())
                .collect();
            ensure_table(&mut root, &current_path, lineno)?;
            continue;
        }
        let eq = find_top_level_eq(line).ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = line[..eq].trim().trim_matches('"').to_string();
        if key.is_empty() {
            return Err(err(lineno, "empty key"));
        }
        let mut chars = line[eq + 1..].trim().char_indices().peekable();
        let rest: String = line[eq + 1..].trim().to_string();
        let (value, consumed) = parse_value(&rest, &mut chars, lineno)?;
        if rest[consumed..].trim() != "" {
            return Err(err(lineno, "trailing characters after value"));
        }
        let table = navigate(&mut root, &current_path, lineno)?;
        if table.iter().any(|(k, _)| k == &key) {
            return Err(err(lineno, &format!("duplicate key `{key}`")));
        }
        table.push((key, value));
    }
    Ok(Value::Map(root))
}

fn err(line: usize, msg: &str) -> TomlError {
    TomlError {
        line,
        msg: msg.to_string(),
    }
}

/// Strips a `#` comment, respecting string literals (including the
/// escapes [`parse_string`] accepts, so `"a \" # b"` stays intact).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the `=` separating key and value (outside any string,
/// escape-aware like [`strip_comment`]).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Creates (or reuses) the nested table at `path`.
fn ensure_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    lineno: usize,
) -> Result<(), TomlError> {
    navigate(root, path, lineno).map(|_| ())
}

/// Walks to the table at `path`, creating intermediate tables.
fn navigate<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Vec<(String, Value)>, TomlError> {
    let mut table = root;
    for seg in path {
        if !table.iter().any(|(k, _)| k == seg) {
            table.push((seg.clone(), Value::Map(Vec::new())));
        }
        let idx = table
            .iter()
            .position(|(k, _)| k == seg)
            .expect("just ensured");
        table = match &mut table[idx].1 {
            Value::Map(m) => m,
            _ => return Err(err(lineno, &format!("`{seg}` is both a value and a table"))),
        };
    }
    Ok(table)
}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut CharIter<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

/// Parses one value starting at the iterator; returns the value and the
/// byte offset one past its end.
fn parse_value(
    src: &str,
    chars: &mut CharIter<'_>,
    lineno: usize,
) -> Result<(Value, usize), TomlError> {
    skip_ws(chars);
    let Some(&(start, c)) = chars.peek() else {
        return Err(err(lineno, "missing value"));
    };
    match c {
        '"' => parse_string(src, chars, lineno),
        '[' => parse_array(src, chars, lineno),
        '{' => parse_inline_table(src, chars, lineno),
        _ => {
            // Bare scalar: consume to the next delimiter.
            let mut end = src.len();
            while let Some(&(i, c)) = chars.peek() {
                if matches!(c, ',' | ']' | '}') {
                    end = i;
                    break;
                }
                chars.next();
                end = i + c.len_utf8();
            }
            let word = src[start..end].trim();
            let v = match word {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                w => {
                    if let Ok(u) = w.parse::<u64>() {
                        Value::UInt(u)
                    } else if let Ok(i) = w.parse::<i64>() {
                        Value::Int(i)
                    } else if let Ok(f) = w.parse::<f64>() {
                        Value::Float(f)
                    } else {
                        return Err(err(lineno, &format!("cannot parse value `{w}`")));
                    }
                }
            };
            Ok((v, end))
        }
    }
}

fn parse_string(
    src: &str,
    chars: &mut CharIter<'_>,
    lineno: usize,
) -> Result<(Value, usize), TomlError> {
    chars.next(); // opening quote
    let mut s = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(s), i + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => s.push('"'),
                Some((_, '\\')) => s.push('\\'),
                Some((_, 'n')) => s.push('\n'),
                Some((_, 't')) => s.push('\t'),
                other => {
                    return Err(err(
                        lineno,
                        &format!("unsupported escape {:?}", other.map(|(_, c)| c)),
                    ))
                }
            },
            c => s.push(c),
        }
    }
    let _ = src;
    Err(err(lineno, "unterminated string"))
}

fn parse_array(
    src: &str,
    chars: &mut CharIter<'_>,
    lineno: usize,
) -> Result<(Value, usize), TomlError> {
    chars.next(); // `[`
    let mut items = Vec::new();
    loop {
        skip_ws(chars);
        match chars.peek() {
            Some(&(i, ']')) => {
                chars.next();
                return Ok((Value::Seq(items), i + 1));
            }
            Some(_) => {
                let (v, _) = parse_value(src, chars, lineno)?;
                items.push(v);
                skip_ws(chars);
                match chars.peek() {
                    Some((_, ',')) => {
                        chars.next();
                    }
                    Some((i, ']')) => {
                        let end = i + 1;
                        chars.next();
                        return Ok((Value::Seq(items), end));
                    }
                    _ => return Err(err(lineno, "expected `,` or `]` in array")),
                }
            }
            None => return Err(err(lineno, "unterminated array")),
        }
    }
}

fn parse_inline_table(
    src: &str,
    chars: &mut CharIter<'_>,
    lineno: usize,
) -> Result<(Value, usize), TomlError> {
    chars.next(); // `{`
    let mut entries: Vec<(String, Value)> = Vec::new();
    loop {
        skip_ws(chars);
        match chars.peek() {
            Some(&(i, '}')) => {
                chars.next();
                return Ok((Value::Map(entries), i + 1));
            }
            Some(&(start, _)) => {
                // key
                let mut key_end = start;
                while let Some(&(i, c)) = chars.peek() {
                    if c == '=' || c.is_whitespace() {
                        key_end = i;
                        break;
                    }
                    chars.next();
                    key_end = i + c.len_utf8();
                }
                let key = src[start..key_end].trim().trim_matches('"').to_string();
                skip_ws(chars);
                match chars.next() {
                    Some((_, '=')) => {}
                    _ => return Err(err(lineno, "expected `=` in inline table")),
                }
                let (v, _) = parse_value(src, chars, lineno)?;
                entries.push((key, v));
                skip_ws(chars);
                match chars.peek() {
                    Some((_, ',')) => {
                        chars.next();
                    }
                    Some((i, '}')) => {
                        let end = i + 1;
                        chars.next();
                        return Ok((Value::Map(entries), end));
                    }
                    _ => return Err(err(lineno, "expected `,` or `}` in inline table")),
                }
            }
            None => return Err(err(lineno, "unterminated inline table")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_tables_and_arrays() {
        let doc = r#"
            # a sweep
            name = "demo"
            seed = 42
            horizon_secs = 120.5
            flag = true
            cvs = [0.5, 2.0, 4.0]

            [nested.inner]
            x = 1
        "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "demo");
        assert_eq!(v.get("seed").unwrap(), &Value::UInt(42));
        assert_eq!(v.get("horizon_secs").unwrap(), &Value::Float(120.5));
        assert_eq!(v.get("flag").unwrap(), &Value::Bool(true));
        assert_eq!(
            v.get("cvs").unwrap(),
            &Value::Seq(vec![
                Value::Float(0.5),
                Value::Float(2.0),
                Value::Float(4.0)
            ])
        );
        assert_eq!(
            v.get("nested")
                .unwrap()
                .get("inner")
                .unwrap()
                .get("x")
                .unwrap(),
            &Value::UInt(1)
        );
    }

    #[test]
    fn inline_tables_nest_in_arrays() {
        let doc =
            r#"policies = [{ Paper = "FlexPipe" }, { Static = { stages = 4, replicas = 1 } }]"#;
        let v = parse(doc).unwrap();
        let seq = v.get("policies").unwrap().as_seq().unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].get("Paper").unwrap().as_str().unwrap(), "FlexPipe");
        assert_eq!(
            seq[1].get("Static").unwrap().get("stages").unwrap(),
            &Value::UInt(4)
        );
    }

    #[test]
    fn comments_and_strings_interact_safely() {
        let doc = "s = \"a # not comment\" # real comment";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a # not comment");
        // Escaped quotes do not end the string for comment/`=` scanning.
        let doc = r#"s = "a \" # b""#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a \" # b");
        let doc = r#"s = "x \" = y""#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x \" = y");
    }

    #[test]
    fn errors_name_lines() {
        let e = parse("x =").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("ok = 1\n[[bad]]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("x = 1\nx = 2").is_err());
        assert!(parse("x = [1, 2").is_err());
    }

    #[test]
    fn negative_numbers_parse() {
        let v = parse("x = -3\ny = -1.5").unwrap();
        assert_eq!(v.get("x").unwrap(), &Value::Int(-3));
        assert_eq!(v.get("y").unwrap(), &Value::Float(-1.5));
    }
}
