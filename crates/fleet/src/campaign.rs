//! `fleet campaign`: resumable multi-spec campaigns over the
//! content-addressed per-cell cache.
//!
//! A [`CampaignSpec`] (JSON or TOML-lite, like [`SweepSpec`]) lists sweep
//! and bench spec files plus a shared cache directory. Running it expands
//! every listed spec into its cell grid, flattens all grids into one job
//! list on a single worker pool, and consults the [`crate::cache`] before
//! each cell: a hit replays the persisted deterministic metrics, a miss
//! runs the engine and persists the result. Because the engine is
//! deterministic and incomplete (truncated / panicked) cells are never
//! cached, the assembled artifacts are **byte-identical whether every
//! cell was computed, every cell was cached, or a killed run resumed
//! half-way — at any thread count**. That is the property CI's cold/warm
//! `cmp` steps and the resume integration tests pin down.
//!
//! Each entry's artifact is exactly what `fleet run` / `fleet bench`
//! would have produced for that spec (same bytes), so `fleet gate` and
//! `fleet compare` keep working on campaign outputs unchanged. The
//! campaign additionally writes a `campaign.json` manifest recording
//! every cell's content key under the engine-fingerprint salt.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use flexpipe_bench::PaperSetup;
use flexpipe_model::ModelId;
use serde::{Deserialize, Serialize};

use crate::bench::{run_bench_cell, BenchCell, BenchCellResult, BenchReport, BENCH_REPORT_VERSION};
use crate::cache::{cache_salt, cell_key, CellCache};
use crate::report::{CellMetrics, CellResult, FleetReport};
use crate::runner::{
    effective_threads, failed_cell_metrics, parallel_indexed, run_cell_in_mode, FleetError,
    RunOptions,
};
use crate::spec::{Cell, SweepSpec};
use crate::store::StoreKind;
use crate::BenchSpec;

/// Campaign manifest format version.
pub const CAMPAIGN_FORMAT_VERSION: u32 = 1;

/// What kind of experiment a campaign entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryKind {
    /// A [`SweepSpec`] file (policy grids, including chaos sweeps).
    Sweep,
    /// A [`BenchSpec`] file (engine-tunable grids).
    Bench,
}

impl EntryKind {
    /// Lowercase label used in cache entries and progress lines.
    pub fn label(self) -> &'static str {
        match self {
            EntryKind::Sweep => "sweep",
            EntryKind::Bench => "bench",
        }
    }
}

/// One spec file listed by a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignEntry {
    /// Experiment kind (selects the spec parser).
    pub kind: EntryKind,
    /// Spec file path, resolved relative to the campaign file.
    pub path: String,
}

/// A declarative multi-spec campaign: named spec files sharing one
/// per-cell artifact cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (manifest header, default output directory).
    pub name: String,
    /// Shared cell-cache directory, resolved relative to the campaign
    /// file (override with `--cache`, disable with `--no-cache`).
    pub cache_dir: String,
    /// The specs to run, in order.
    pub entries: Vec<CampaignEntry>,
}

impl CampaignSpec {
    /// Structural sanity checks (spec files are validated after loading).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("campaign name must be non-empty".into());
        }
        if self.cache_dir.is_empty() {
            return Err("cache_dir must be non-empty".into());
        }
        if self.entries.is_empty() {
            return Err("a campaign needs at least one entry".into());
        }
        let mut paths = std::collections::BTreeSet::new();
        for e in &self.entries {
            if !paths.insert(&e.path) {
                return Err(format!("duplicate campaign entry `{}`", e.path));
            }
        }
        Ok(())
    }

    /// The committed CI campaign (`fleet campaign init`): the three
    /// standing spec files sharing one cache.
    pub fn template() -> CampaignSpec {
        CampaignSpec {
            name: "campaign-ci".into(),
            cache_dir: ".fleet-cache".into(),
            entries: vec![
                CampaignEntry {
                    kind: EntryKind::Sweep,
                    path: "cv-rate-sensitivity.json".into(),
                },
                CampaignEntry {
                    kind: EntryKind::Sweep,
                    path: "disruption-recovery.json".into(),
                },
                CampaignEntry {
                    kind: EntryKind::Bench,
                    path: "engine-bench.json".into(),
                },
            ],
        }
    }
}

/// A parsed, validated campaign entry.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadedSpec {
    /// A sweep (or chaos sweep) with its expanded grid.
    Sweep(SweepSpec, Vec<Cell>),
    /// A bench with its expanded grid.
    Bench(BenchSpec, Vec<BenchCell>),
}

impl LoadedSpec {
    /// The spec's own name (artifact file stem).
    pub fn name(&self) -> &str {
        match self {
            LoadedSpec::Sweep(s, _) => &s.name,
            LoadedSpec::Bench(s, _) => &s.name,
        }
    }

    /// Cell count.
    pub fn cells(&self) -> usize {
        match self {
            LoadedSpec::Sweep(_, cells) => cells.len(),
            LoadedSpec::Bench(_, cells) => cells.len(),
        }
    }

    fn model(&self) -> ModelId {
        match self {
            LoadedSpec::Sweep(s, _) => s.model,
            LoadedSpec::Bench(s, _) => s.model,
        }
    }
}

/// Loads, validates and expands every entry of `spec`, resolving paths
/// against `base_dir` (the campaign file's directory).
pub fn load_entries(spec: &CampaignSpec, base_dir: &Path) -> Result<Vec<LoadedSpec>, FleetError> {
    spec.validate().map_err(FleetError)?;
    let mut loaded = Vec::new();
    let mut names = std::collections::BTreeSet::new();
    for e in &spec.entries {
        let path = base_dir.join(&e.path);
        let text = std::fs::read_to_string(&path)
            .map_err(|err| FleetError(format!("cannot read {}: {err}", path.display())))?;
        let path_str = path.to_string_lossy().to_string();
        let entry = match e.kind {
            EntryKind::Sweep => {
                let s = crate::parse_spec(&path_str, &text)?;
                s.validate()
                    .map_err(|err| FleetError(format!("{}: {err}", e.path)))?;
                let cells = s.expand();
                LoadedSpec::Sweep(s, cells)
            }
            EntryKind::Bench => {
                let s = crate::parse_bench(&path_str, &text)?;
                s.validate()
                    .map_err(|err| FleetError(format!("{}: {err}", e.path)))?;
                let cells = s.expand();
                LoadedSpec::Bench(s, cells)
            }
        };
        if !names.insert(entry.name().to_string()) {
            return Err(FleetError(format!(
                "two campaign entries share the spec name `{}` (their artifacts would collide)",
                entry.name()
            )));
        }
        loaded.push(entry);
    }
    Ok(loaded)
}

/// The expanded execution plan of a campaign: every entry loaded and
/// validated, every cell content-keyed, and the flat job list. This is
/// the shared substrate of `fleet campaign` (one process), `fleet
/// worker` (N processes against a shared cache), and `fleet campaign
/// assemble` (cache-only artifact assembly): all three derive the same
/// plan from the same campaign file, which is what lets them cooperate
/// with no coordination channel beyond the cache itself.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Loaded, validated, expanded entries, in campaign order.
    pub entries: Vec<LoadedSpec>,
    /// Content keys under the current salt, parallel to each entry's
    /// cell grid.
    pub keys: Vec<Vec<String>>,
    /// The flat job list: `(entry index, cell index)` across every grid.
    pub jobs: Vec<(usize, usize)>,
}

/// A borrowed view of one planned cell job.
#[derive(Debug, Clone)]
pub struct CellJob<'a> {
    /// Owning spec's name.
    pub entry_name: &'a str,
    /// Cache entry kind label (`sweep` / `bench`).
    pub kind: &'static str,
    /// Human-readable cell id.
    pub id: String,
    /// The owning spec's step budget (`max_events`).
    pub budget: u64,
    /// The cell's content key.
    pub key: &'a str,
}

impl CampaignPlan {
    /// Loads and expands `spec` into its full plan. Keys are computed
    /// unconditionally — the manifest records them even when the cache
    /// is disabled.
    pub fn load(spec: &CampaignSpec, base_dir: &Path) -> Result<CampaignPlan, FleetError> {
        let entries = load_entries(spec, base_dir)?;
        let keys: Vec<Vec<String>> = entries
            .iter()
            .map(|e| match e {
                LoadedSpec::Sweep(s, cells) => cells
                    .iter()
                    .map(|c| cell_key(&s.cell_semantics(c)))
                    .collect(),
                LoadedSpec::Bench(s, cells) => cells
                    .iter()
                    .map(|c| cell_key(&s.cell_semantics(c)))
                    .collect(),
            })
            .collect();
        let jobs: Vec<(usize, usize)> = entries
            .iter()
            .enumerate()
            .flat_map(|(ei, e)| (0..e.cells()).map(move |ci| (ei, ci)))
            .collect();
        Ok(CampaignPlan {
            entries,
            keys,
            jobs,
        })
    }

    /// Total cell count across all entries.
    pub fn total_cells(&self) -> usize {
        self.jobs.len()
    }

    /// The metadata of flat job `i`.
    pub fn job(&self, i: usize) -> CellJob<'_> {
        let (ei, ci) = self.jobs[i];
        let entry = &self.entries[ei];
        let (kind, id, budget) = match entry {
            LoadedSpec::Sweep(s, cells) => ("sweep", cells[ci].id(), s.max_events),
            LoadedSpec::Bench(s, cells) => ("bench", cells[ci].id(), s.max_events),
        };
        CellJob {
            entry_name: entry.name(),
            kind,
            id,
            budget,
            key: &self.keys[ei][ci],
        }
    }

    /// Builds the shared model artefacts, one per distinct model across
    /// all entries.
    pub fn setups(&self) -> Vec<(ModelId, PaperSetup)> {
        let mut setups: Vec<(ModelId, PaperSetup)> = Vec::new();
        for e in &self.entries {
            if !setups.iter().any(|(m, _)| *m == e.model()) {
                setups.push((e.model(), PaperSetup::for_model(e.model())));
            }
        }
        setups
    }

    /// Executes flat job `i` with panic containment: a panicking cell
    /// becomes a failed-cell metrics record (never cached, visible in
    /// the artifact) instead of taking down the worker.
    pub fn compute(
        &self,
        i: usize,
        setups: &[(ModelId, PaperSetup)],
        admission: flexpipe_serving::AdmissionMode,
    ) -> CellMetrics {
        let (ei, ci) = self.jobs[i];
        let entry = &self.entries[ei];
        let setup = setups
            .iter()
            .find(|(m, _)| *m == entry.model())
            .map(|(_, s)| s)
            .expect("setup prebuilt for every model in the plan");
        match catch_unwind(AssertUnwindSafe(|| match entry {
            LoadedSpec::Sweep(s, cells) => run_cell_in_mode(s, &cells[ci], setup, admission),
            LoadedSpec::Bench(s, cells) => run_bench_cell(s, &cells[ci], setup).0,
        })) {
            Ok(m) => m,
            Err(_) => {
                eprintln!(
                    "campaign cell {}:{} PANICKED; recorded as failed",
                    entry.name(),
                    self.job(i).id
                );
                failed_cell_metrics()
            }
        }
    }
}

/// Campaign runner configuration.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker pool / progress / admission options (shared with sweeps).
    pub run: RunOptions,
    /// Cache directory; `None` disables both lookups and stores
    /// (`--no-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Storage backend preference for a fresh cache directory
    /// (`--store`); an initialized directory keeps its detected backend.
    pub store: Option<StoreKind>,
}

/// Cache interaction counters of one campaign run. Deliberately **not**
/// part of any byte-compared artifact — a warm run must produce the same
/// bytes as a cold one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignStats {
    /// Cells executed or replayed.
    pub cells: usize,
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells computed this run.
    pub misses: usize,
    /// Of the misses, results persisted (complete, non-truncated).
    pub stored: usize,
}

impl CampaignStats {
    /// Hit rate in percent (100.0 when there were no cells).
    pub fn hit_rate_pct(&self) -> f64 {
        if self.cells == 0 {
            100.0
        } else {
            self.hits as f64 * 100.0 / self.cells as f64
        }
    }

    /// The one-line summary the CLI prints (and CI asserts on).
    pub fn render(&self, cache_enabled: bool) -> String {
        if cache_enabled {
            format!(
                "campaign cache: {} hits, {} misses over {} cells ({:.1}% hit rate, {} stored)",
                self.hits,
                self.misses,
                self.cells,
                self.hit_rate_pct(),
                self.stored
            )
        } else {
            format!("campaign cache: disabled ({} cells computed)", self.cells)
        }
    }
}

/// Wall-clock + cache-status record for one campaign cell. Lives in the
/// `campaign.timing.json` sidecar next to the manifest — deliberately
/// **outside** every content-keyed / byte-compared artifact, mirroring how
/// bench wall-clock timings ride beside (never inside) bench reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Owning spec's name.
    pub entry: String,
    /// Human-readable cell id.
    pub id: String,
    /// Whether the cell was served from the cache.
    pub cache_hit: bool,
    /// Wall time for the cell job (lookup + compute + store), in ms.
    pub wall_ms: f64,
    /// Whether the cell hit its step budget.
    pub truncated: bool,
}

/// The non-deterministic timing sidecar of a campaign run
/// (`campaign.timing.json`): per-cell wall time and cache status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// Per-cell rows, in flat job order.
    pub cells: Vec<CellTiming>,
    /// Whole-campaign wall time in ms.
    pub total_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl CampaignTiming {
    /// The sidecar JSON. Not byte-stable across runs (wall clock) — never
    /// `cmp` this file.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("timing serializes");
        s.push('\n');
        s
    }
}

/// One assembled per-entry artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecReport {
    /// A full fleet report, byte-identical to `fleet run` on the spec.
    Sweep(FleetReport),
    /// A bench report, byte-identical to `fleet bench` on the spec
    /// (wall-clock timings never enter bench artifacts).
    Bench(BenchReport),
}

impl SpecReport {
    /// The artifact JSON.
    pub fn to_json(&self) -> String {
        match self {
            SpecReport::Sweep(r) => r.to_json(),
            SpecReport::Bench(r) => r.to_json(),
        }
    }
}

/// One cell row of the campaign manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestCell {
    /// Human-readable cell id.
    pub id: String,
    /// Content-address under the engine-fingerprint salt.
    pub key: String,
}

/// One entry row of the campaign manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The spec path as listed in the campaign file.
    pub path: String,
    /// Experiment kind.
    pub kind: EntryKind,
    /// The spec's own name.
    pub name: String,
    /// Artifact file name within the output directory.
    pub report: String,
    /// Every cell with its content key, in expansion order.
    pub cells: Vec<ManifestCell>,
}

/// The deterministic campaign manifest (`campaign.json`): what ran, under
/// which salt, addressed by which keys. Cache hit counts stay out — see
/// [`CampaignStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Manifest format version.
    pub version: u32,
    /// Campaign name.
    pub name: String,
    /// The full cache salt (engine fingerprint + format versions).
    pub salt: String,
    /// Per-entry rows, in campaign order.
    pub entries: Vec<ManifestEntry>,
}

impl CampaignManifest {
    /// The byte-stable JSON artifact.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("manifest serializes");
        s.push('\n');
        s
    }

    /// Parses a manifest, rejecting version mismatches explicitly.
    pub fn from_json(s: &str) -> Result<CampaignManifest, serde_json::Error> {
        let m: CampaignManifest = serde_json::from_str(s)?;
        if m.version != CAMPAIGN_FORMAT_VERSION {
            return Err(serde_json::Error(format!(
                "campaign manifest is format version {}, this build expects \
                 {CAMPAIGN_FORMAT_VERSION} — regenerate the artifact",
                m.version
            )));
        }
        Ok(m)
    }
}

/// Everything a campaign run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The deterministic manifest.
    pub manifest: CampaignManifest,
    /// Per-entry artifacts, parallel to `manifest.entries`.
    pub reports: Vec<SpecReport>,
    /// Cache counters (never byte-compared).
    pub stats: CampaignStats,
    /// Per-cell wall-clock sidecar (never byte-compared).
    pub timing: CampaignTiming,
}

impl CampaignResult {
    /// Writes every artifact into `dir` (`<spec-name>.report.json` per
    /// entry, `campaign.json`, and the `campaign.timing.json` wall-clock
    /// sidecar), returning the written paths. Only the timing sidecar is
    /// run-dependent; everything else is byte-stable.
    pub fn write(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (entry, report) in self.manifest.entries.iter().zip(&self.reports) {
            let path = dir.join(&entry.report);
            std::fs::write(&path, report.to_json())?;
            written.push(path);
        }
        let path = dir.join("campaign.json");
        std::fs::write(&path, self.manifest.to_json())?;
        written.push(path);
        let path = dir.join("campaign.timing.json");
        std::fs::write(&path, self.timing.to_json())?;
        written.push(path);
        Ok(written)
    }
}

/// Runs a campaign: loads and expands every entry, executes the flat
/// cell list on one worker pool with cache lookups, and assembles the
/// per-entry artifacts plus the manifest. Deterministic output at any
/// thread count, any cache state, any interruption history.
pub fn run_campaign(
    spec: &CampaignSpec,
    base_dir: &Path,
    opts: &CampaignOptions,
) -> Result<CampaignResult, FleetError> {
    let started = Instant::now();
    let plan = CampaignPlan::load(spec, base_dir)?;
    let cache = match &opts.cache_dir {
        Some(dir) => Some(
            CellCache::open_kind(dir, opts.store)
                .map_err(|e| FleetError(format!("cannot open cache {}: {e}", dir.display())))?,
        ),
        None => None,
    };

    let setups = plan.setups();
    let n = plan.total_cells();
    if !opts.run.quiet {
        eprintln!(
            "campaign `{}`: {} cells across {} specs{}",
            spec.name,
            n,
            plan.entries.len(),
            match &cache {
                Some(c) => format!(", cache at {}", c.dir().display()),
                None => ", cache disabled".into(),
            }
        );
    }

    let threads = effective_threads(opts.run.threads, n);
    let finished = AtomicUsize::new(0);
    let outcomes: Vec<(CellMetrics, bool, bool, f64)> = parallel_indexed(n, threads, |i| {
        let job = plan.job(i);
        let (name, id, key) = (job.entry_name, &job.id, job.key);
        let job_started = Instant::now();
        if opts.run.verbose && !opts.run.quiet {
            eprintln!("campaign cell={name}:{id} event=start");
        }
        // Budget-aware hit: only replay entries that demonstrably fit
        // the current step budget (see [`CellCache::load`]).
        if let Some(metrics) = cache.as_ref().and_then(|c| c.load(key, job.budget)) {
            let wall_ms = job_started.elapsed().as_secs_f64() * 1e3;
            let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
            if !opts.run.quiet {
                if opts.run.verbose {
                    eprintln!(
                        "campaign cell={name}:{id} event=finish cache=hit wall_ms={wall_ms:.1} \
                         truncated={}",
                        metrics.truncated,
                    );
                }
                eprintln!("campaign [{done}/{n}] {name}:{id} HIT {key}");
            }
            return (metrics, true, false, wall_ms);
        }
        let metrics = plan.compute(i, &setups, opts.run.admission);
        let stored = match &cache {
            Some(c) => c.store(key, job.kind, id, &metrics).unwrap_or_else(|e| {
                eprintln!("campaign cache store failed for {id}: {e} (continuing uncached)");
                false
            }),
            None => false,
        };
        let wall_ms = job_started.elapsed().as_secs_f64() * 1e3;
        let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
        if !opts.run.quiet {
            if opts.run.verbose {
                eprintln!(
                    "campaign cell={name}:{id} event=finish cache=miss wall_ms={wall_ms:.1} \
                     truncated={}",
                    metrics.truncated,
                );
            }
            eprintln!(
                "campaign [{done}/{n}] {name}:{id} done in {:.1}s{}",
                job_started.elapsed().as_secs_f64(),
                if metrics.truncated {
                    ", TRUNCATED (not cached)"
                } else {
                    ""
                },
            );
        }
        (metrics, false, stored, wall_ms)
    });

    let stats = CampaignStats {
        cells: n,
        hits: outcomes.iter().filter(|(_, hit, _, _)| *hit).count(),
        misses: outcomes.iter().filter(|(_, hit, _, _)| !*hit).count(),
        stored: outcomes.iter().filter(|(_, _, s, _)| *s).count(),
    };

    // The wall-clock sidecar rows, in flat job order.
    let timing_cells: Vec<CellTiming> = (0..n)
        .zip(&outcomes)
        .map(|(i, (m, hit, _, wall_ms))| {
            let job = plan.job(i);
            CellTiming {
                entry: job.entry_name.to_string(),
                id: job.id,
                cache_hit: *hit,
                wall_ms: *wall_ms,
                truncated: m.truncated,
            }
        })
        .collect();

    // Split the flat results back into per-entry artifacts.
    let mut metrics_by_entry: Vec<Vec<CellMetrics>> = plan
        .entries
        .iter()
        .map(|e| Vec::with_capacity(e.cells()))
        .collect();
    for (&(ei, _), (m, _, _, _)) in plan.jobs.iter().zip(outcomes) {
        metrics_by_entry[ei].push(m);
    }

    let (manifest, reports) = assemble_reports(spec, plan, metrics_by_entry);

    if !opts.run.quiet {
        eprintln!(
            "campaign `{}`: {} cells on {} threads in {:.1}s ({})",
            spec.name,
            n,
            threads,
            started.elapsed().as_secs_f64(),
            stats.render(opts.cache_dir.is_some()),
        );
    }
    Ok(CampaignResult {
        manifest,
        reports,
        stats,
        timing: CampaignTiming {
            cells: timing_cells,
            total_ms: started.elapsed().as_secs_f64() * 1e3,
            threads,
        },
    })
}

/// Folds per-entry metrics into the final artifacts: one [`SpecReport`]
/// per entry (byte-identical to what `fleet run` / `fleet bench` would
/// produce) plus the [`CampaignManifest`]. Shared by [`run_campaign`]
/// and [`assemble_campaign`] so the two paths cannot drift.
fn assemble_reports(
    spec: &CampaignSpec,
    plan: CampaignPlan,
    metrics_by_entry: Vec<Vec<CellMetrics>>,
) -> (CampaignManifest, Vec<SpecReport>) {
    let mut reports = Vec::new();
    let mut manifest_entries = Vec::new();
    for (((entry, listed), keys), metrics) in plan
        .entries
        .into_iter()
        .zip(&spec.entries)
        .zip(plan.keys)
        .zip(metrics_by_entry)
    {
        let name = entry.name().to_string();
        let (report, ids): (SpecReport, Vec<String>) = match entry {
            LoadedSpec::Sweep(s, cells) => {
                let ids = cells.iter().map(Cell::id).collect();
                let results: Vec<CellResult> = cells
                    .into_iter()
                    .zip(metrics)
                    .map(|(cell, metrics)| CellResult { cell, metrics })
                    .collect();
                (SpecReport::Sweep(FleetReport::assemble(s, results)), ids)
            }
            LoadedSpec::Bench(s, cells) => {
                let ids = cells.iter().map(BenchCell::id).collect();
                let results: Vec<BenchCellResult> = cells
                    .into_iter()
                    .zip(metrics)
                    .map(|(cell, metrics)| BenchCellResult { cell, metrics })
                    .collect();
                (
                    SpecReport::Bench(BenchReport {
                        version: BENCH_REPORT_VERSION,
                        spec: s,
                        cells: results,
                    }),
                    ids,
                )
            }
        };
        manifest_entries.push(ManifestEntry {
            path: listed.path.clone(),
            kind: listed.kind,
            name: name.clone(),
            report: format!("{name}.report.json"),
            cells: ids
                .into_iter()
                .zip(keys)
                .map(|(id, key)| ManifestCell { id, key })
                .collect(),
        });
        reports.push(report);
    }
    (
        CampaignManifest {
            version: CAMPAIGN_FORMAT_VERSION,
            name: spec.name.clone(),
            salt: cache_salt(),
            entries: manifest_entries,
        },
        reports,
    )
}

/// A cell `fleet campaign assemble` could not serve from the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct MissingCell {
    /// Owning spec's name.
    pub entry: String,
    /// Human-readable cell id.
    pub id: String,
    /// The content key the cache was asked for.
    pub key: String,
}

/// What [`assemble_campaign`] found in the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum AssembleOutcome {
    /// Every cell was present and budget-fit: the full artifact set,
    /// byte-identical to a `fleet campaign` run of the same spec.
    Complete(Box<CampaignResult>),
    /// At least one cell is absent (never computed, evicted, truncated,
    /// stored under a different salt, or over the current budget). The
    /// CLI turns this into exit code 2, naming every key.
    Incomplete {
        /// Every absent cell, in plan order.
        missing: Vec<MissingCell>,
    },
}

/// Assembles a campaign's artifacts **from the cache alone** — the
/// push-button "did the fleet finish?" check after `fleet worker`
/// processes drained the cell list. No cell is ever computed here: either
/// every key resolves (under the same budget-aware rule as
/// [`run_campaign`]) and the complete artifact set comes back, or the
/// full list of missing cells does.
pub fn assemble_campaign(
    spec: &CampaignSpec,
    base_dir: &Path,
    cache_dir: &Path,
) -> Result<AssembleOutcome, FleetError> {
    let started = Instant::now();
    let plan = CampaignPlan::load(spec, base_dir)?;
    let cache = CellCache::open(cache_dir)
        .map_err(|e| FleetError(format!("cannot open cache {}: {e}", cache_dir.display())))?;

    let n = plan.total_cells();
    let mut metrics_by_entry: Vec<Vec<CellMetrics>> = plan
        .entries
        .iter()
        .map(|e| Vec::with_capacity(e.cells()))
        .collect();
    let mut missing = Vec::new();
    for i in 0..n {
        let job = plan.job(i);
        match cache.load(job.key, job.budget) {
            Some(m) => metrics_by_entry[plan.jobs[i].0].push(m),
            None => missing.push(MissingCell {
                entry: job.entry_name.to_string(),
                id: job.id,
                key: job.key.to_string(),
            }),
        }
    }
    if !missing.is_empty() {
        return Ok(AssembleOutcome::Incomplete { missing });
    }

    // Assembly is pure bookkeeping: every cell is a hit, no wall-clock
    // enters any byte-compared artifact (the timing sidecar is already
    // excluded from every cmp).
    let timing_cells: Vec<CellTiming> = (0..n)
        .map(|i| {
            let job = plan.job(i);
            let (ei, ci) = plan.jobs[i];
            CellTiming {
                entry: job.entry_name.to_string(),
                id: job.id,
                cache_hit: true,
                wall_ms: 0.0,
                truncated: metrics_by_entry[ei][ci].truncated,
            }
        })
        .collect();
    let stats = CampaignStats {
        cells: n,
        hits: n,
        misses: 0,
        stored: 0,
    };
    let (manifest, reports) = assemble_reports(spec, plan, metrics_by_entry);
    Ok(AssembleOutcome::Complete(Box::new(CampaignResult {
        manifest,
        reports,
        stats,
        timing: CampaignTiming {
            cells: timing_cells,
            total_ms: started.elapsed().as_secs_f64() * 1e3,
            threads: 0,
        },
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexpipe-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn tiny_sweep_json() -> String {
        r#"{
  "name": "tiny-sweep",
  "model": "Llama2_7B",
  "seed": 11,
  "horizon_secs": 8.0,
  "warmup_secs": 2.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {
    "prompt_median": 128.0, "prompt_sigma": 0.0, "prompt_range": [128, 128],
    "output_mean": 8.0, "output_range": [8, 8]
  },
  "max_events": 20000000,
  "cvs": [1.0],
  "rates": [3.0],
  "clusters": [{"Custom": {"nodes": 6, "total_gpus": 8, "servers_per_rack": 3}}],
  "policies": [{"Paper": "FlexPipe"}, {"Static": {"stages": 2, "replicas": 1}}]
}
"#
        .to_string()
    }

    fn tiny_bench_json() -> String {
        r#"{
  "name": "tiny-bench",
  "model": "Llama2_7B",
  "seed": 7,
  "horizon_secs": 6.0,
  "warmup_secs": 2.0,
  "slo_secs": 2.0,
  "slo_per_output_token_ms": 100.0,
  "background": "Idle",
  "lengths": {
    "prompt_median": 64.0, "prompt_sigma": 0.0, "prompt_range": [64, 64],
    "output_mean": 4.0, "output_range": [4, 4]
  },
  "max_events": 20000000,
  "cv": 1.0,
  "cluster": {"Custom": {"nodes": 4, "total_gpus": 6, "servers_per_rack": 4}},
  "policy": {"Static": {"stages": 2, "replicas": 1}},
  "rates": [3.0],
  "ubatch_sizes": [32],
  "prefill_token_caps": [256],
  "admission_batches": [8],
  "admission": ["Indexed"]
}
"#
        .to_string()
    }

    fn write_campaign(dir: &Path) -> CampaignSpec {
        std::fs::write(dir.join("sweep.json"), tiny_sweep_json()).unwrap();
        std::fs::write(dir.join("bench.json"), tiny_bench_json()).unwrap();
        CampaignSpec {
            name: "tiny-campaign".into(),
            cache_dir: "cells".into(),
            entries: vec![
                CampaignEntry {
                    kind: EntryKind::Sweep,
                    path: "sweep.json".into(),
                },
                CampaignEntry {
                    kind: EntryKind::Bench,
                    path: "bench.json".into(),
                },
            ],
        }
    }

    fn opts(dir: &Path, threads: usize) -> CampaignOptions {
        CampaignOptions {
            run: RunOptions {
                threads,
                quiet: true,
                ..Default::default()
            },
            cache_dir: Some(dir.join("cells")),
            store: None,
        }
    }

    #[test]
    fn template_validates_and_round_trips() {
        let spec = CampaignSpec::template();
        assert!(spec.validate().is_ok());
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn validation_catches_structural_problems() {
        let mut spec = CampaignSpec::template();
        spec.entries.clear();
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::template();
        spec.entries.push(spec.entries[0].clone());
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::template();
        spec.cache_dir.clear();
        assert!(spec.validate().is_err());
        // A missing spec file errors cleanly at load time.
        let dir = tmp("missing");
        let spec = CampaignSpec {
            name: "x".into(),
            cache_dir: "cells".into(),
            entries: vec![CampaignEntry {
                kind: EntryKind::Sweep,
                path: "nope.json".into(),
            }],
        };
        assert!(load_entries(&spec, &dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_warm_and_uncached_runs_are_byte_identical() {
        let dir = tmp("coldwarm");
        let spec = write_campaign(&dir);

        let cold = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(cold.stats.hits, 0);
        assert_eq!(cold.stats.misses, 3);
        assert_eq!(cold.stats.stored, 3);

        // Warm run (single-threaded to also cross thread counts): every
        // cell hits, artifacts match byte-for-byte.
        let warm = run_campaign(&spec, &dir, &opts(&dir, 1)).unwrap();
        assert_eq!(warm.stats.hits, 3);
        assert_eq!(warm.stats.misses, 0);
        assert!((warm.stats.hit_rate_pct() - 100.0).abs() < 1e-9);
        assert_eq!(warm.manifest.to_json(), cold.manifest.to_json());
        for (a, b) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(a.to_json(), b.to_json());
        }

        // Cache disabled: same bytes, nothing consulted or stored.
        let uncached = run_campaign(
            &spec,
            &dir,
            &CampaignOptions {
                run: RunOptions {
                    threads: 2,
                    quiet: true,
                    ..Default::default()
                },
                cache_dir: None,
                store: None,
            },
        )
        .unwrap();
        assert_eq!(uncached.stats.hits, 0);
        assert_eq!(uncached.stats.stored, 0);
        assert_eq!(uncached.manifest.to_json(), cold.manifest.to_json());
        for (a, b) in cold.reports.iter().zip(&uncached.reports) {
            assert_eq!(a.to_json(), b.to_json());
        }

        // The sweep artifact matches what `fleet run` produces directly.
        let sweep = crate::parse_spec("sweep.json", &tiny_sweep_json()).unwrap();
        let direct = crate::run_sweep(
            &sweep,
            &RunOptions {
                threads: 1,
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(cold.reports[0].to_json(), direct.to_json());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn editing_a_spec_only_recomputes_dirty_cells() {
        let dir = tmp("dirty");
        let spec = write_campaign(&dir);
        let cold = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(cold.stats.misses, 3);

        // Append an arrival-CV value: the original coordinate's cells
        // stay warm, only the new coordinate computes.
        let edited = tiny_sweep_json().replace("\"cvs\": [1.0]", "\"cvs\": [1.0, 4.0]");
        std::fs::write(dir.join("sweep.json"), edited).unwrap();
        let warm = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(warm.stats.cells, 5);
        assert_eq!(warm.stats.hits, 3, "clean cells must stay cached");
        assert_eq!(warm.stats.misses, 2, "exactly the new coordinate reruns");

        // Cosmetic edits (spec rename) keep every cell warm.
        let renamed = tiny_sweep_json().replace("tiny-sweep", "renamed-sweep");
        std::fs::write(dir.join("sweep.json"), renamed).unwrap();
        let cosmetic = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(cosmetic.stats.hits, 3);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lowering_the_budget_recomputes_instead_of_replaying() {
        let dir = tmp("budget");
        std::fs::write(dir.join("sweep.json"), tiny_sweep_json()).unwrap();
        let spec = CampaignSpec {
            name: "budget-campaign".into(),
            cache_dir: "cells".into(),
            entries: vec![CampaignEntry {
                kind: EntryKind::Sweep,
                path: "sweep.json".into(),
            }],
        };
        let cold = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(cold.stats.stored, 2);
        let SpecReport::Sweep(report) = &cold.reports[0] else {
            panic!()
        };
        let min_events = report.cells.iter().map(|c| c.metrics.events).min().unwrap();

        // Lower the budget below every cached cell's event count: the
        // cells' keys are unchanged (budgets don't re-key), but the
        // entries no longer fit — every cell recomputes (and truncates,
        // so nothing stale is stored either).
        let tight = tiny_sweep_json().replace(
            "\"max_events\": 20000000",
            &format!("\"max_events\": {min_events}"),
        );
        std::fs::write(dir.join("sweep.json"), tight).unwrap();
        let tightened = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(
            tightened.stats.hits, 0,
            "a cached result must not replay under a budget it exceeds"
        );
        assert_eq!(tightened.stats.stored, 0);
        let SpecReport::Sweep(report) = &tightened.reports[0] else {
            panic!()
        };
        assert!(report.cells.iter().all(|c| c.metrics.truncated));

        // Restoring the budget finds the original complete entries warm.
        std::fs::write(dir.join("sweep.json"), tiny_sweep_json()).unwrap();
        let restored = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        assert_eq!(restored.stats.hits, 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_lays_out_reports_and_manifest() {
        let dir = tmp("write");
        let spec = write_campaign(&dir);
        let result = run_campaign(&spec, &dir, &opts(&dir, 2)).unwrap();
        let out = dir.join("out");
        let written = result.write(&out).unwrap();
        assert_eq!(written.len(), 4);
        assert!(out.join("tiny-sweep.report.json").is_file());
        assert!(out.join("tiny-bench.report.json").is_file());
        // The wall-clock sidecar rides beside the manifest, one row per
        // cell, all misses on a cold run.
        let timing_text = std::fs::read_to_string(out.join("campaign.timing.json")).unwrap();
        let timing: CampaignTiming = serde_json::from_str(&timing_text).unwrap();
        assert_eq!(timing.cells.len(), 3);
        assert!(timing.cells.iter().all(|c| !c.cache_hit));
        assert!(timing.cells.iter().all(|c| c.wall_ms >= 0.0));
        let manifest_text = std::fs::read_to_string(out.join("campaign.json")).unwrap();
        let manifest = CampaignManifest::from_json(&manifest_text).unwrap();
        assert_eq!(manifest, result.manifest);
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entries[0].cells.len(), 2);
        assert!(manifest.entries[0].cells.iter().all(|c| c.key.len() == 32));
        // Version mismatches are named explicitly.
        let old = manifest_text.replacen("\"version\": 1", "\"version\": 0", 1);
        let err = CampaignManifest::from_json(&old).unwrap_err();
        assert!(err.to_string().contains("format version 0"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
